// irdl-fuzz regression case
// seed: 0xd11a
// oracle: translation-validation
// Planted-bug drill (tests/fold_equivalence.rs): with an off-by-one
// constant materializer, folding this multiply miscompiles 42 into 43
// and the translation-validation oracle reports the digest divergence.
// Stored after ddmin reduction; replays green against the real
// semantics, and the drill pins that reduction converges to this form.
"builtin.module"() ({
  %0 = "fuzz.const"() {value = 6 : i32} : () -> i32
  %1 = "fuzz.const"() {value = 7 : i32} : () -> i32
  %2 = "fuzz.muli"(%0, %1) : (i32, i32) -> i32
  "fuzz.sink"(%2) : (i32) -> ()
}) : () -> ()
