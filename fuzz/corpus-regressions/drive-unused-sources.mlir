// irdl-fuzz regression case
// seed: 0x1
// oracle: drive
// Hand-written smoke case: unused `fuzz.src` ops fire the DCE oracle
// pattern, so the drive and jobs oracles exercise real rewrites (erasure
// under Full and Incremental checking must agree byte-for-byte).
"builtin.module"() ({
  %0 = "fuzz.src"() : () -> i32
  %1 = "fuzz.src"() : () -> f32
  %2 = "fuzz.src"() : () -> i64
  %3 = "fuzz.use"(%0) : (i32) -> i1
  "fuzz.sink"(%3) : (i1) -> ()
}) : () -> ()
