// irdl-fuzz regression case
// seed: 0xd15ea5e
// oracle: fixpoint
// Found by the text mutator: a trailing comma in a result list made the
// parser hit an `unreachable!()` (it assumed every token after `,` is a
// value id). The parser must reject this input with a diagnostic, never
// panic; all oracles pass vacuously on rejected text.
"builtin.module"() ({
  %0, = "fuzz.src"() : () -> i32
}) : () -> ()
