// irdl-fuzz regression case
// seed: 0xc0ffee
// oracle: generate
// Minimized by ddmin from a 500-iteration run: the generator's catalog
// treated `Successors ()` ops (terminators with zero successors, like
// scf.yield) as freely placeable and emitted one mid-block. The catalog
// now excludes every terminator from the mid-block pool; this input is
// kept invalid on purpose — all oracles must stay green on IR the
// verifier rejects.
"builtin.module"() ({
  %0 = "fuzz.src"() : () -> i32
  %1 = "fuzz.src"() : () -> i32
  "scf.yield"(%1, %0) : (i32, i32) -> ()
  %2 = "fuzz.src"() : () -> index
}) : () -> ()
