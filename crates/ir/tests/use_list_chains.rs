//! Randomized cross-check of the intrusive use-chains against a naive
//! recomputation. The chains are per-operand-slot links threaded through
//! `OperationData` (see DESIGN.md "Op storage layout"); every mutation —
//! linking operands at creation, `set_operand`, `replace_all_uses`,
//! erasure — must keep each value's chain exactly equal to the multiset of
//! live operand slots referring to it.

use std::collections::HashMap;

use irdl_ir::{Context, OpRef, OperationState, Use, Value};

/// Minimal splitmix64, matching `irdl_fuzz_lib::SplitMix64`.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Recomputes every value's uses by walking all live ops' operand lists —
/// the definition the intrusive chains must agree with.
fn naive_uses(ctx: &Context, live: &[OpRef]) -> HashMap<Value, Vec<Use>> {
    let mut map: HashMap<Value, Vec<Use>> = HashMap::new();
    for &op in live {
        for i in 0..op.num_operands(ctx) {
            map.entry(op.operand(ctx, i))
                .or_default()
                .push(Use { op, operand_index: i as u32 });
        }
    }
    map
}

/// Asserts that every live value's intrusive chain matches the naive map:
/// same uses, no duplicates, no stale entries.
fn check_chains(ctx: &Context, live: &[OpRef]) {
    let naive = naive_uses(ctx, live);
    for &op in live {
        for i in 0..op.num_results(ctx) {
            let value = op.result(ctx, i);
            let mut chain: Vec<Use> = value.uses(ctx).collect();
            let mut expected = naive.get(&value).cloned().unwrap_or_default();
            // Chains iterate most-recently-linked first; compare as sets.
            chain.sort_by_key(|u| (u.op.index(), u.operand_index));
            expected.sort_by_key(|u| (u.op.index(), u.operand_index));
            assert_eq!(
                chain, expected,
                "use chain of {value:?} disagrees with operand-list recompute"
            );
            assert_eq!(value.is_unused(ctx), expected.is_empty());
        }
    }
}

/// Drives a random mutation sequence over a single block: op creation with
/// random operands, operand rewrites, bulk use replacement, and erasure of
/// dead ops — validating the chains after every step.
fn run_sequence(seed: u64, steps: usize) {
    let mut rng = Rng(seed);
    let mut ctx = Context::new();
    let f32t = ctx.f32_type();
    let name = ctx.op_name("t", "node");

    let module = ctx.create_module();
    let block = ctx.module_block(module);

    let mut live: Vec<OpRef> = Vec::new();
    // Seed values so the first created ops have operands to pick from.
    for _ in 0..2 {
        let op = ctx.create_op(OperationState::new(name).add_result_types([f32t]));
        ctx.append_op(block, op);
        live.push(op);
    }

    for _ in 0..steps {
        match rng.below(4) {
            // Create an op with 0-3 random operands and 0-2 results.
            0 => {
                let values: Vec<Value> = live
                    .iter()
                    .flat_map(|&op| (0..op.num_results(&ctx)).map(move |i| (op, i)))
                    .map(|(op, i)| op.result(&ctx, i))
                    .collect();
                let operands: Vec<Value> =
                    (0..rng.below(4)).map(|_| values[rng.below(values.len())]).collect();
                let results = rng.below(3);
                let op = ctx.create_op(
                    OperationState::new(name)
                        .add_operands(operands)
                        .add_result_types(vec![f32t; results]),
                );
                ctx.append_op(block, op);
                live.push(op);
            }
            // Redirect one operand slot to a random value.
            1 => {
                let candidates: Vec<OpRef> =
                    live.iter().copied().filter(|op| op.num_operands(&ctx) > 0).collect();
                if candidates.is_empty() {
                    continue;
                }
                let op = candidates[rng.below(candidates.len())];
                let slot = rng.below(op.num_operands(&ctx));
                let producers: Vec<Value> = live
                    .iter()
                    .filter(|&&p| p.num_results(&ctx) > 0)
                    .map(|&p| p.result(&ctx, rng.below(p.num_results(&ctx))))
                    .collect();
                let value = producers[rng.below(producers.len())];
                ctx.set_operand(op, slot, value);
            }
            // Forward every use of one value to another.
            2 => {
                let values: Vec<Value> = live
                    .iter()
                    .flat_map(|&op| (0..op.num_results(&ctx)).map(move |i| (op, i)))
                    .map(|(op, i)| op.result(&ctx, i))
                    .collect();
                let old = values[rng.below(values.len())];
                let new = values[rng.below(values.len())];
                ctx.replace_all_uses(old, new);
            }
            // Erase a dead op (all results unused), unlinking its operands.
            _ => {
                if live.len() <= 2 {
                    continue;
                }
                let Some(pos) = (0..live.len())
                    .find(|&i| live[i].results(&ctx).all(|r| r.is_unused(&ctx)))
                else {
                    continue;
                };
                let op = live.remove(pos);
                ctx.erase_op(op);
            }
        }
        check_chains(&ctx, &live);
    }
}

/// The intrusive use-chains stay consistent with a naive operand-list
/// recomputation across random create/set/replace/erase sequences.
#[test]
fn use_chains_match_naive_recompute() {
    for seed in 0..24 {
        run_sequence(0xC0FFEE ^ seed, 120);
    }
}
