//! Allocation-count regression gates for the compact op storage layer
//! (see DESIGN.md "Op storage layout"). A counting global allocator pins
//! the properties the layer exists for:
//!
//! - steady-state op create/erase cycles recycle every buffer: **zero**
//!   heap allocations once warm;
//! - the erase path no longer clones operand vectors: erasing a warmed
//!   subtree is allocation-free;
//! - text parse stays within the membench construction budget
//!   (≤ 3 allocs/op) and bytecode decode within ≤ 2 allocs/op.
//!
//! Everything runs inside one `#[test]` so no concurrent test thread can
//! perturb the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use irdl_ir::bytecode::{decode_module, encode_module};
use irdl_ir::parse::parse_module;
use irdl_ir::{Context, OperationState};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Counts the allocations `f` performs.
fn count(mut f: impl FnMut()) -> u64 {
    let before = allocs();
    f();
    allocs() - before
}

/// Steady-state create/append/erase cycles must not touch the heap: the
/// op's inline payloads avoid it on construction and the arena free list
/// plus spill pool recycle everything on erase.
fn check_steady_create_erase(ctx: &mut Context) {
    let f32t = ctx.f32_type();
    let name = ctx.op_name("t", "node");
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.create_op(OperationState::new(name).add_result_types([f32t]));
    ctx.append_op(block, src);
    let feed = src.result(ctx, 0);

    let cycle = |ctx: &mut Context| {
        let op = ctx.create_op(
            OperationState::new(name).add_operands([feed, feed]).add_result_types([f32t]),
        );
        ctx.append_op(block, op);
        ctx.erase_op(op);
    };
    for _ in 0..256 {
        cycle(ctx);
    }
    let used = count(|| {
        for _ in 0..10_000 {
            cycle(ctx);
        }
    });
    assert_eq!(used, 0, "steady-state create/erase must be allocation-free");
    ctx.erase_op(module);
}

/// Erasing a warmed multi-op subtree — ops with cross-uses, so the erase
/// path must unlink operands of surviving ops — is allocation-free: the
/// old operand-vector clone is gone and the subtree scratch (including the
/// generation-stamped mark vector) is recycled.
fn check_erase_subtree_no_alloc(ctx: &mut Context) {
    let f32t = ctx.f32_type();
    let name = ctx.op_name("t", "node");

    let build = |ctx: &mut Context| {
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let src = ctx.create_op(OperationState::new(name).add_result_types([f32t]));
        ctx.append_op(block, src);
        let mut value = src.result(ctx, 0);
        for _ in 0..8 {
            let op = ctx.create_op(
                OperationState::new(name)
                    .add_operands([value, value])
                    .add_result_types([f32t]),
            );
            ctx.append_op(block, op);
            value = op.result(ctx, 0);
        }
        module
    };
    for _ in 0..16 {
        let module = build(ctx);
        ctx.erase_op(module);
    }
    for _ in 0..8 {
        let module = build(ctx);
        let used = count(|| ctx.erase_op(module));
        assert_eq!(used, 0, "warmed subtree erase must be allocation-free");
    }
}

/// A straight-line module in the quoted generic form, paralleling the
/// membench corpus workload but self-contained (no registry needed).
fn chain_source(n: usize) -> String {
    let mut out = String::from("%v0 = \"t.src\"() : () -> f32\n");
    for i in 0..n {
        out.push_str(&format!("%v{} = \"t.mid\"(%v{i}) : (f32) -> f32\n", i + 1));
    }
    out
}

/// Text parse must stay within the membench construction budget.
fn check_parse_budget(ctx: &mut Context) {
    const OPS: usize = 65; // 64 chain ops + the source op
    let text = chain_source(64);
    for _ in 0..3 {
        let module = parse_module(ctx, &text).expect("chain parses");
        ctx.erase_op(module);
    }
    const PASSES: u64 = 16;
    let used = count(|| {
        for _ in 0..PASSES {
            let module = parse_module(ctx, &text).expect("chain parses");
            black_box(module);
            ctx.erase_op(module);
        }
    });
    let per_op = used as f64 / (PASSES * OPS as u64) as f64;
    assert!(per_op <= 3.0, "parse at {per_op:.2} allocs/op exceeds the 3.0 gate");
}

/// Bytecode decode must stay within the membench construction budget.
fn check_decode_budget(ctx: &mut Context) {
    const OPS: usize = 65;
    let text = chain_source(64);
    let module = parse_module(ctx, &text).expect("chain parses");
    let bytes = encode_module(ctx, module).expect("chain encodes");
    ctx.erase_op(module);
    for _ in 0..3 {
        let module = decode_module(ctx, &bytes).expect("chain decodes");
        ctx.erase_op(module);
    }
    const PASSES: u64 = 16;
    let used = count(|| {
        for _ in 0..PASSES {
            let module = decode_module(ctx, &bytes).expect("chain decodes");
            black_box(module);
            ctx.erase_op(module);
        }
    });
    let per_op = used as f64 / (PASSES * OPS as u64) as f64;
    assert!(per_op <= 2.0, "decode at {per_op:.2} allocs/op exceeds the 2.0 gate");
}

#[test]
fn compact_storage_alloc_gates() {
    let mut ctx = Context::new();
    check_steady_create_erase(&mut ctx);
    check_erase_subtree_no_alloc(&mut ctx);
    check_parse_budget(&mut ctx);
    check_decode_budget(&mut ctx);
}
