#![cfg(feature = "proptest")]
// Gated off by default: proptest cannot be fetched in offline builds.
// Restore the proptest dev-dependency and run with `--features proptest`.

//! Property-based tests for the IR substrate: dominance against a
//! ground-truth definition, and structural uniquing of types/attributes.

use std::collections::HashSet;

use proptest::prelude::*;

use irdl_ir::dominance::{successors, RegionDominance};
use irdl_ir::{BlockRef, Context, OperationState, RegionRef};

/// Builds a region with `n` blocks; block `i`'s terminator targets the
/// blocks listed in `edges[i]` (indices taken modulo `n`).
fn build_cfg(ctx: &mut Context, edges: &[Vec<usize>]) -> (RegionRef, Vec<BlockRef>) {
    let region = ctx.create_region();
    let blocks: Vec<BlockRef> = (0..edges.len()).map(|_| ctx.create_block([])).collect();
    for block in &blocks {
        ctx.append_block(region, *block);
    }
    let br = ctx.op_name("cf", "br");
    for (i, targets) in edges.iter().enumerate() {
        let succs: Vec<BlockRef> =
            targets.iter().map(|t| blocks[t % edges.len()]).collect();
        let op = ctx.create_op(OperationState::new(br).add_successors(succs));
        ctx.append_op(blocks[i], op);
    }
    (region, blocks)
}

/// Ground truth: `a` dominates `b` iff every path from the entry to `b`
/// passes through `a` — equivalently, `b` is unreachable from the entry
/// when `a` is removed from the graph.
fn dominates_ground_truth(
    ctx: &Context,
    blocks: &[BlockRef],
    a: BlockRef,
    b: BlockRef,
) -> bool {
    if a == b {
        return true;
    }
    let entry = blocks[0];
    // Unreachable blocks are dominated by everything (the analysis's
    // documented permissive convention, matching MLIR).
    if !reachable(ctx, entry, b, None) {
        return true;
    }
    if entry == a {
        return true;
    }
    !reachable(ctx, entry, b, Some(a))
}

fn reachable(ctx: &Context, from: BlockRef, to: BlockRef, removed: Option<BlockRef>) -> bool {
    if Some(from) == removed {
        return false;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(block) = stack.pop() {
        if block == to {
            return true;
        }
        for succ in successors(ctx, block) {
            if Some(succ) != removed && seen.insert(succ) {
                stack.push(succ);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The iterative dominator algorithm agrees with the path-based
    /// definition on random CFGs.
    #[test]
    fn dominance_matches_ground_truth(
        edges in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..3),
            1..8,
        )
    ) {
        let mut ctx = Context::new();
        let (region, blocks) = build_cfg(&mut ctx, &edges);
        let dom = RegionDominance::compute(&ctx, region);
        for &a in &blocks {
            for &b in &blocks {
                let expected = dominates_ground_truth(&ctx, &blocks, a, b);
                prop_assert_eq!(
                    dom.dominates(a, b),
                    expected,
                    "dominates({:?}, {:?}) with edges {:?}",
                    a,
                    b,
                    &edges
                );
            }
        }
    }

    /// Dominance is reflexive and transitive; the entry dominates every
    /// reachable block.
    #[test]
    fn dominance_laws(
        edges in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 0..3),
            1..7,
        )
    ) {
        let mut ctx = Context::new();
        let (region, blocks) = build_cfg(&mut ctx, &edges);
        let dom = RegionDominance::compute(&ctx, region);
        let entry = blocks[0];
        for &b in &blocks {
            prop_assert!(dom.dominates(b, b), "reflexivity");
            if dom.is_reachable(b) {
                prop_assert!(dom.dominates(entry, b), "entry dominates reachable");
            }
        }
        for &a in &blocks {
            for &b in &blocks {
                for &c in &blocks {
                    if dom.is_reachable(c)
                        && dom.is_reachable(b)
                        && dom.dominates(a, b)
                        && dom.dominates(b, c)
                    {
                        prop_assert!(dom.dominates(a, c), "transitivity");
                    }
                }
            }
        }
    }

    /// Structural uniquing: building the same type twice yields the same
    /// handle; different structures yield different handles.
    #[test]
    fn type_uniquing(widths in proptest::collection::vec(1u32..256, 1..40)) {
        let mut ctx = Context::new();
        let first: Vec<_> = widths.iter().map(|w| ctx.int_type(*w)).collect();
        let second: Vec<_> = widths.iter().map(|w| ctx.int_type(*w)).collect();
        prop_assert_eq!(&first, &second);
        for (i, a) in widths.iter().enumerate() {
            for (j, b) in widths.iter().enumerate() {
                prop_assert_eq!(first[i] == first[j], a == b);
            }
        }
    }

    /// Attribute uniquing over integer payloads.
    #[test]
    fn attr_uniquing(values in proptest::collection::vec(any::<i64>(), 1..40)) {
        let mut ctx = Context::new();
        let first: Vec<_> = values.iter().map(|v| ctx.i64_attr(*v)).collect();
        let second: Vec<_> = values.iter().map(|v| ctx.i64_attr(*v)).collect();
        prop_assert_eq!(&first, &second);
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                prop_assert_eq!(first[i] == first[j], a == b);
            }
        }
    }

    /// Use lists always reflect the actual operand edges, under a random
    /// sequence of set_operand mutations.
    #[test]
    fn use_lists_consistent_under_mutation(
        script in proptest::collection::vec((0usize..6, 0usize..6), 0..40)
    ) {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let f32 = ctx.f32_type();
        let src = ctx.op_name("t", "src");
        let defs: Vec<_> = (0..6)
            .map(|_| {
                let op = ctx.create_op(OperationState::new(src).add_result_types([f32]));
                ctx.append_op(block, op);
                op
            })
            .collect();
        let sink_name = ctx.op_name("t", "sink");
        let v0 = defs[0].result(&ctx, 0);
        let sink = ctx.create_op(
            OperationState::new(sink_name).add_operands([v0, v0, v0]),
        );
        ctx.append_op(block, sink);
        for (slot, def) in &script {
            let value = defs[*def].result(&ctx, 0);
            ctx.set_operand(sink, slot % 3, value);
        }
        // Check: each def's use count equals the number of sink operands
        // referring to it.
        for def in &defs {
            let v = def.result(&ctx, 0);
            let expected =
                sink.operands(&ctx).iter().filter(|o| **o == v).count();
            prop_assert_eq!(v.uses(&ctx).len(), expected);
        }
    }
}
