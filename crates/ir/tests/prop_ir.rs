//! Property-based tests for the IR substrate: dominance against a
//! ground-truth definition, structural uniquing of types/attributes, and
//! use-list consistency — driven by a seeded PRNG so they run in every
//! offline `cargo test`.
//!
//! The PRNG is a local splitmix64 copy (`irdl-ir` sits below the fuzzing
//! crate in the dependency graph, so it cannot borrow the shared one).

use std::collections::HashSet;

use irdl_ir::dominance::{successors, RegionDominance};
use irdl_ir::{BlockRef, Context, OperationState, RegionRef};

/// Minimal splitmix64, matching `irdl_fuzz_lib::SplitMix64`.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Random CFG edge lists: `n` blocks, each with up to two successors.
fn random_edges(rng: &mut Rng, max_blocks: u64) -> Vec<Vec<usize>> {
    let n = rng.below(max_blocks) + 1;
    (0..n)
        .map(|_| (0..rng.below(3)).map(|_| rng.below(8) as usize).collect())
        .collect()
}

/// Builds a region with `n` blocks; block `i`'s terminator targets the
/// blocks listed in `edges[i]` (indices taken modulo `n`).
fn build_cfg(ctx: &mut Context, edges: &[Vec<usize>]) -> (RegionRef, Vec<BlockRef>) {
    let region = ctx.create_region();
    let blocks: Vec<BlockRef> = (0..edges.len()).map(|_| ctx.create_block([])).collect();
    for block in &blocks {
        ctx.append_block(region, *block);
    }
    let br = ctx.op_name("cf", "br");
    for (i, targets) in edges.iter().enumerate() {
        let succs: Vec<BlockRef> =
            targets.iter().map(|t| blocks[t % edges.len()]).collect();
        let op = ctx.create_op(OperationState::new(br).add_successors(succs));
        ctx.append_op(blocks[i], op);
    }
    (region, blocks)
}

/// Ground truth: `a` dominates `b` iff every path from the entry to `b`
/// passes through `a` — equivalently, `b` is unreachable from the entry
/// when `a` is removed from the graph.
fn dominates_ground_truth(
    ctx: &Context,
    blocks: &[BlockRef],
    a: BlockRef,
    b: BlockRef,
) -> bool {
    if a == b {
        return true;
    }
    let entry = blocks[0];
    // Unreachable blocks are dominated by everything (the analysis's
    // documented permissive convention, matching MLIR).
    if !reachable(ctx, entry, b, None) {
        return true;
    }
    if entry == a {
        return true;
    }
    !reachable(ctx, entry, b, Some(a))
}

fn reachable(ctx: &Context, from: BlockRef, to: BlockRef, removed: Option<BlockRef>) -> bool {
    if Some(from) == removed {
        return false;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    seen.insert(from);
    while let Some(block) = stack.pop() {
        if block == to {
            return true;
        }
        for succ in successors(ctx, block) {
            if Some(succ) != removed && seen.insert(succ) {
                stack.push(succ);
            }
        }
    }
    false
}

fn check_dominance_matches(edges: &[Vec<usize>]) {
    let mut ctx = Context::new();
    let (region, blocks) = build_cfg(&mut ctx, edges);
    let dom = RegionDominance::compute(&ctx, region);
    for &a in &blocks {
        for &b in &blocks {
            let expected = dominates_ground_truth(&ctx, &blocks, a, b);
            assert_eq!(
                dom.dominates(a, b),
                expected,
                "dominates({a:?}, {b:?}) with edges {edges:?}"
            );
        }
    }
}

/// The iterative dominator algorithm agrees with the path-based
/// definition on random CFGs.
#[test]
fn dominance_matches_ground_truth() {
    let mut rng = Rng(0x1a_0001);
    for _ in 0..128 {
        let edges = random_edges(&mut rng, 7);
        check_dominance_matches(&edges);
    }
}

/// Regression (found by the original property-based run): a two-block
/// region where neither block branches anywhere — the second block is
/// unreachable and must be dominated by everything.
#[test]
fn dominance_unreachable_isolated_block() {
    check_dominance_matches(&[vec![], vec![]]);
}

/// Dominance is reflexive and transitive; the entry dominates every
/// reachable block.
#[test]
fn dominance_laws() {
    let mut rng = Rng(0x1a_0002);
    for _ in 0..128 {
        let edges = random_edges(&mut rng, 6);
        let mut ctx = Context::new();
        let (region, blocks) = build_cfg(&mut ctx, &edges);
        let dom = RegionDominance::compute(&ctx, region);
        let entry = blocks[0];
        for &b in &blocks {
            assert!(dom.dominates(b, b), "reflexivity");
            if dom.is_reachable(b) {
                assert!(dom.dominates(entry, b), "entry dominates reachable");
            }
        }
        for &a in &blocks {
            for &b in &blocks {
                for &c in &blocks {
                    if dom.is_reachable(c)
                        && dom.is_reachable(b)
                        && dom.dominates(a, b)
                        && dom.dominates(b, c)
                    {
                        assert!(dom.dominates(a, c), "transitivity");
                    }
                }
            }
        }
    }
}

/// Structural uniquing: building the same type twice yields the same
/// handle; different structures yield different handles.
#[test]
fn type_uniquing() {
    let mut rng = Rng(0x1a_0003);
    for _ in 0..64 {
        let widths: Vec<u32> =
            (0..rng.below(40) + 1).map(|_| rng.below(255) as u32 + 1).collect();
        let mut ctx = Context::new();
        let first: Vec<_> = widths.iter().map(|w| ctx.int_type(*w)).collect();
        let second: Vec<_> = widths.iter().map(|w| ctx.int_type(*w)).collect();
        assert_eq!(&first, &second);
        for (i, a) in widths.iter().enumerate() {
            for (j, b) in widths.iter().enumerate() {
                assert_eq!(first[i] == first[j], a == b);
            }
        }
    }
}

/// Attribute uniquing over integer payloads.
#[test]
fn attr_uniquing() {
    let mut rng = Rng(0x1a_0004);
    for _ in 0..64 {
        let values: Vec<i64> =
            (0..rng.below(40) + 1).map(|_| rng.next_u64() as i64).collect();
        let mut ctx = Context::new();
        let first: Vec<_> = values.iter().map(|v| ctx.i64_attr(*v)).collect();
        let second: Vec<_> = values.iter().map(|v| ctx.i64_attr(*v)).collect();
        assert_eq!(&first, &second);
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                assert_eq!(first[i] == first[j], a == b);
            }
        }
    }
}

/// Use lists always reflect the actual operand edges, under a random
/// sequence of set_operand mutations.
#[test]
fn use_lists_consistent_under_mutation() {
    let mut rng = Rng(0x1a_0005);
    for _ in 0..128 {
        let script: Vec<(usize, usize)> = (0..rng.below(40))
            .map(|_| (rng.below(6) as usize, rng.below(6) as usize))
            .collect();
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let f32 = ctx.f32_type();
        let src = ctx.op_name("t", "src");
        let defs: Vec<_> = (0..6)
            .map(|_| {
                let op = ctx.create_op(OperationState::new(src).add_result_types([f32]));
                ctx.append_op(block, op);
                op
            })
            .collect();
        let sink_name = ctx.op_name("t", "sink");
        let v0 = defs[0].result(&ctx, 0);
        let sink = ctx.create_op(OperationState::new(sink_name).add_operands([v0, v0, v0]));
        ctx.append_op(block, sink);
        for (slot, def) in &script {
            let value = defs[*def].result(&ctx, 0);
            ctx.set_operand(sink, slot % 3, value);
        }
        // Check: each def's use count equals the number of sink operands
        // referring to it.
        for def in &defs {
            let v = def.result(&ctx, 0);
            let expected = sink.operands(&ctx).iter().filter(|o| **o == v).count();
            assert_eq!(v.uses(&ctx).count(), expected);
        }
    }
}
