//! A cursor-style builder that creates operations at an insertion point.

use crate::block::BlockRef;
use crate::context::Context;
use crate::op::{OpRef, OperationState};

/// Where newly built operations are inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertPoint {
    /// Append at the end of a block.
    End(BlockRef),
    /// Insert before an existing operation.
    Before(OpRef),
}

/// Builds operations at a movable insertion point, mirroring MLIR's
/// `OpBuilder`.
///
/// ```
/// use irdl_ir::{Context, OpBuilder, OperationState};
///
/// let mut ctx = Context::new();
/// let module = ctx.create_module();
/// let block = ctx.module_block(module);
/// let f32 = ctx.f32_type();
/// let name = ctx.op_name("test", "zero");
/// let mut builder = OpBuilder::at_end(block);
/// let op = builder.insert(&mut ctx, OperationState::new(name).add_result_types([f32]));
/// assert_eq!(op.parent_block(&ctx), Some(block));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OpBuilder {
    point: InsertPoint,
}

impl OpBuilder {
    /// Builder appending at the end of `block`.
    pub fn at_end(block: BlockRef) -> Self {
        OpBuilder { point: InsertPoint::End(block) }
    }

    /// Builder inserting before `op`.
    pub fn before(op: OpRef) -> Self {
        OpBuilder { point: InsertPoint::Before(op) }
    }

    /// Moves the insertion point to the end of `block`.
    pub fn set_insertion_point_to_end(&mut self, block: BlockRef) {
        self.point = InsertPoint::End(block);
    }

    /// Moves the insertion point to just before `op`.
    pub fn set_insertion_point_before(&mut self, op: OpRef) {
        self.point = InsertPoint::Before(op);
    }

    /// The block new operations will be inserted into.
    pub fn insertion_block(&self, ctx: &Context) -> Option<BlockRef> {
        match self.point {
            InsertPoint::End(block) => Some(block),
            InsertPoint::Before(op) => op.parent_block(ctx),
        }
    }

    /// Creates an operation from `state` and inserts it at the insertion
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if the insertion point anchor has been detached or erased.
    pub fn insert(&mut self, ctx: &mut Context, state: OperationState) -> OpRef {
        let op = ctx.create_op(state);
        match self.point {
            InsertPoint::End(block) => ctx.append_op(block, op),
            InsertPoint::Before(anchor) => ctx.insert_op_before(anchor, op),
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperationState;

    #[test]
    fn builder_tracks_insertion_point() {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let mut b = OpBuilder::at_end(block);
        let n1 = ctx.op_name("test", "one");
        let n2 = ctx.op_name("test", "two");
        let n3 = ctx.op_name("test", "three");
        let one = b.insert(&mut ctx, OperationState::new(n1));
        let three = b.insert(&mut ctx, OperationState::new(n3));
        b.set_insertion_point_before(three);
        let _two = b.insert(&mut ctx, OperationState::new(n2));
        let names: Vec<String> =
            block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
        assert_eq!(names, ["test.one", "test.two", "test.three"]);
        assert_eq!(b.insertion_block(&ctx), Some(block));
        assert_eq!(one.parent_block(&ctx), Some(block));
    }
}
