//! The change journal: a record of what one rewrite touched.
//!
//! A [`ChangeJournal`] is filled in by mutation APIs (the rewrite crate's
//! `Rewriter`) and consumed by the
//! [`IncrementalVerifier`](crate::verify::IncrementalVerifier), which
//! re-verifies only the recorded dirty set, and by the greedy driver,
//! which re-enqueues exactly the created and modified operations. It
//! supersedes ad-hoc "added"/"touched" lists: one journal captures every
//! kind of mutation with enough precision to make checked rewriting
//! O(touched) instead of O(module).
//!
//! ## Recorded facts
//!
//! - **created**: operations built during the rewrite (verified as whole
//!   subtrees — their nested regions are new too).
//! - **modified**: operations whose operands were rewired, that were
//!   moved, or whose in-block position semantics changed (e.g. the op
//!   that used to be last in a block after an append). Verified
//!   individually.
//! - **dirty blocks**: blocks where ops were inserted or erased; they get
//!   the O(1) per-block structural checks (last-op-must-terminate,
//!   no-empty-block in multi-block regions).
//! - **cfg-dirty regions**: regions whose block graph changed — a block
//!   was inserted or removed, or an op with successors was created,
//!   moved, or erased. Edge changes can affect the dominance of
//!   operations *outside* the dirty set, so these regions are re-verified
//!   wholesale (still region-scoped, never module-scoped).
//! - **erased regions**: every region inside an erased subtree. Entity
//!   arenas reuse slots without generation counters, so cached dominator
//!   state keyed by `RegionRef` must be evicted for each of these before
//!   a reused slot can alias a different region.
//!
//! Erasure *removes* the erased ops and blocks from the earlier journal
//! entries (and compensates created-then-erased ops), so consumers never
//! see a dangling reference and `created`/`modified` stay directly usable
//! as a requeue list.

use crate::block::BlockRef;
use crate::context::Context;
use crate::op::OpRef;
use crate::region::RegionRef;

/// A journal of IR mutations since the last [`clear`](ChangeJournal::clear).
#[derive(Debug, Default, Clone)]
pub struct ChangeJournal {
    created: Vec<OpRef>,
    modified: Vec<OpRef>,
    blocks: Vec<BlockRef>,
    cfg_dirty_regions: Vec<RegionRef>,
    erased_regions: Vec<RegionRef>,
    erased_ops: usize,
    /// Reusable traversal buffers for [`note_erase_subtree`]
    /// (always left empty between calls, so `clear`/`is_empty` need not
    /// consider them); kept so steady-state erasure records allocate
    /// nothing.
    ///
    /// [`note_erase_subtree`]: ChangeJournal::note_erase_subtree
    scratch_ops: Vec<OpRef>,
    scratch_blocks: Vec<BlockRef>,
    scratch_stack: Vec<OpRef>,
}

impl ChangeJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets everything recorded so far (capacity is retained).
    pub fn clear(&mut self) {
        self.created.clear();
        self.modified.clear();
        self.blocks.clear();
        self.cfg_dirty_regions.clear();
        self.erased_regions.clear();
        self.erased_ops = 0;
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty()
            && self.modified.is_empty()
            && self.blocks.is_empty()
            && self.cfg_dirty_regions.is_empty()
            && self.erased_regions.is_empty()
            && self.erased_ops == 0
    }

    /// Operations created since the last clear (still live).
    pub fn created(&self) -> &[OpRef] {
        &self.created
    }

    /// Operations modified since the last clear (still live; may repeat).
    pub fn modified(&self) -> &[OpRef] {
        &self.modified
    }

    /// Blocks where ops were inserted or erased (still live; may repeat).
    pub fn dirty_blocks(&self) -> &[BlockRef] {
        &self.blocks
    }

    /// Regions whose CFG changed and need a full (region-scoped) re-check.
    pub fn cfg_dirty_regions(&self) -> &[RegionRef] {
        &self.cfg_dirty_regions
    }

    /// Regions erased since the last clear; cached per-region analyses
    /// keyed by these refs must be evicted.
    pub fn erased_regions(&self) -> &[RegionRef] {
        &self.erased_regions
    }

    /// Number of pre-existing operations erased since the last clear
    /// (created-then-erased ops cancel out).
    pub fn erased_ops(&self) -> usize {
        self.erased_ops
    }

    /// Records a newly created (and inserted) operation.
    ///
    /// If the op carries successors, its parent region's CFG gained edges,
    /// which can change dominance for ops outside the dirty set.
    pub fn note_created(&mut self, ctx: &Context, op: OpRef) {
        self.created.push(op);
        self.note_cfg_effects(ctx, op);
    }

    /// Records an operation whose operands, position, or block changed.
    pub fn note_modified(&mut self, op: OpRef) {
        self.modified.push(op);
    }

    /// Records an operation that moved between or within blocks: the op
    /// itself is re-checked, and any CFG edges it carries moved with it.
    pub fn note_moved(&mut self, ctx: &Context, op: OpRef) {
        self.modified.push(op);
        self.note_cfg_effects(ctx, op);
    }

    /// Records a block whose op list changed (insertion or erasure site).
    pub fn note_block(&mut self, block: BlockRef) {
        self.blocks.push(block);
    }

    /// Records a block inserted into (or detached from) `region`: the
    /// region's block structure changed, so the multi-block rules and the
    /// dominator analysis must be re-established region-wide.
    pub fn note_region_blocks_changed(&mut self, region: RegionRef) {
        self.cfg_dirty_regions.push(region);
    }

    /// Records the impending erasure of `op`'s whole subtree. Must be
    /// called *before* the actual `erase_op`, while the subtree is intact.
    ///
    /// Walks the subtree collecting every nested region (for cache
    /// eviction) and scrubs the subtree's ops and blocks out of the
    /// `created`/`modified`/`blocks` lists so no dangling (or reused)
    /// reference survives in the journal.
    pub fn note_erase_subtree(&mut self, ctx: &Context, root: OpRef) {
        if let Some(parent) = root.parent_block(ctx) {
            self.blocks.push(parent);
            if !root.successors(ctx).is_empty() {
                if let Some(region) = parent.parent_region(ctx) {
                    // Removing CFG edges invalidates cached dominator
                    // state (it may now under-approximate dominance and
                    // report spurious violations).
                    self.cfg_dirty_regions.push(region);
                }
            }
        }

        // Collect the subtree: ops and blocks to scrub, regions to evict.
        // The buffers are journal-owned scratch, reused across erasures so
        // steady-state rewriting records erasures without allocating.
        let mut doomed_ops = std::mem::take(&mut self.scratch_ops);
        let mut doomed_blocks = std::mem::take(&mut self.scratch_blocks);
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.push(root);
        while let Some(op) = stack.pop() {
            doomed_ops.push(op);
            for &region in op.regions(ctx) {
                self.erased_regions.push(region);
                for &block in region.blocks(ctx) {
                    doomed_blocks.push(block);
                    stack.extend(block.ops(ctx).iter().copied());
                }
            }
        }

        self.erased_ops += doomed_ops.len();
        // Created-then-erased ops were never observed live; they must not
        // inflate the erased count the driver uses for bookkeeping.
        // (Scrubbing below removes them from `created` either way.)
        let mut created_and_erased = 0;
        self.created.retain(|op| {
            let keep = !doomed_ops.contains(op);
            if !keep {
                created_and_erased += 1;
            }
            keep
        });
        self.erased_ops -= created_and_erased;
        self.modified.retain(|op| !doomed_ops.contains(op));
        self.blocks.retain(|block| !doomed_blocks.contains(block));
        let erased = &self.erased_regions;
        self.cfg_dirty_regions.retain(|region| !erased.contains(region));

        doomed_ops.clear();
        doomed_blocks.clear();
        self.scratch_ops = doomed_ops;
        self.scratch_blocks = doomed_blocks;
        self.scratch_stack = stack;
    }

    fn note_cfg_effects(&mut self, ctx: &Context, op: OpRef) {
        if !op.successors(ctx).is_empty() {
            if let Some(region) = op.parent_block(ctx).and_then(|b| b.parent_region(ctx)) {
                self.cfg_dirty_regions.push(region);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    #[test]
    fn erasure_scrubs_the_subtree_out_of_earlier_entries() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        // An op holding a region with one inner op.
        let (region, inner_block) = ctx.create_region_with_entry([]);
        let inner_name = ctx.op_name("t", "inner");
        let inner = ctx.create_op(OperationState::new(inner_name));
        ctx.append_op(inner_block, inner);
        let holder_name = ctx.op_name("t", "holder");
        let holder = ctx.create_op(OperationState::new(holder_name).add_regions([region]));
        ctx.append_op(block, holder);

        let mut journal = ChangeJournal::new();
        journal.note_created(&ctx, holder);
        journal.note_modified(inner);
        journal.note_block(inner_block);
        assert_eq!(journal.created(), &[holder]);

        journal.note_erase_subtree(&ctx, holder);
        ctx.erase_op(holder);

        assert!(journal.created().is_empty(), "created-then-erased op scrubbed");
        assert!(journal.modified().is_empty(), "erased inner op scrubbed");
        assert_eq!(journal.erased_regions(), &[region]);
        assert_eq!(
            journal.dirty_blocks(),
            &[block],
            "erasure site stays dirty, erased inner block scrubbed"
        );
        assert_eq!(journal.erased_ops(), 1, "inner op counted, created holder compensated");

        journal.clear();
        assert!(journal.is_empty());
    }
}
