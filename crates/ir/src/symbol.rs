//! Interned identifiers.
//!
//! A [`Symbol`] is a `Copy` handle to a string interned in a
//! [`Context`](crate::Context). Symbols are used for dialect names,
//! operation names, attribute keys, and enum variants; comparing two symbols
//! is an integer comparison.

use crate::entity::entity_handle;

entity_handle! {
    /// An interned string, resolvable via
    /// [`Context::symbol_str`](crate::Context::symbol_str).
    Symbol
}

#[cfg(test)]
mod tests {
    use crate::Context;

    #[test]
    fn symbols_are_uniqued() {
        let mut ctx = Context::new();
        let a = ctx.symbol("cmath");
        let b = ctx.symbol("arith");
        let a2 = ctx.symbol("cmath");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(ctx.symbol_str(a), "cmath");
        assert_eq!(ctx.symbol_str(b), "arith");
    }
}
