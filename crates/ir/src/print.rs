//! Printing IR to the generic textual format.
//!
//! The syntax is a close cousin of MLIR's generic form:
//!
//! ```text
//! %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
//! ```
//!
//! with attribute dictionaries (`{key = value}`), successor lists
//! (`[^bb1, ^bb2]`), and nested regions (`({ ... })`). Operations whose
//! dialect registers a custom syntax hook (an IRDL `Format` or a native
//! implementation) print in their custom form unless
//! [`Printer::set_generic`] forces the generic one.
//!
//! One divergence from MLIR: shaped-type dimension lists are spaced
//! (`vector<4 x f32>` instead of `vector<4xf32>`), which keeps the lexer
//! free of MLIR's dimension-list special case.

use std::collections::HashMap;

use crate::attrs::{AttrData, Attribute};
use crate::block::BlockRef;
use crate::context::Context;
use crate::op::OpRef;
use crate::region::RegionRef;
use crate::types::{Type, TypeData};
use crate::value::Value;

/// Prints IR entities, assigning stable SSA names as it goes.
///
/// Dialect syntax hooks receive a `&mut Printer` and append to the same
/// buffer via [`Printer::token`], [`Printer::print_value`], and friends.
#[derive(Debug, Default)]
pub struct Printer {
    out: String,
    indent: usize,
    value_names: HashMap<Value, String>,
    block_names: HashMap<BlockRef, String>,
    next_value: usize,
    next_block: usize,
    generic: bool,
}

impl Printer {
    /// Creates a printer with custom syntax enabled.
    pub fn new() -> Self {
        Printer::default()
    }

    /// Forces the generic form for all operations when `generic` is `true`.
    pub fn set_generic(&mut self, generic: bool) {
        self.generic = generic;
    }

    /// Consumes the printer, returning the rendered text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Appends raw text.
    pub fn token(&mut self, text: &str) {
        self.out.push_str(text);
    }

    /// Appends a newline followed by the current indentation.
    pub fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    /// Prints the SSA name of `value` (assigning one if needed).
    pub fn print_value(&mut self, ctx: &Context, value: Value) {
        let name = self.value_name(ctx, value);
        self.out.push_str(&name);
    }

    fn value_name(&mut self, ctx: &Context, value: Value) -> String {
        if let Some(name) = self.value_names.get(&value) {
            return name.clone();
        }
        // Name the whole result group of the defining op, or the block arg.
        let name = match value {
            Value::OpResult { op, index } => {
                let base = format!("%{}", self.next_value);
                self.next_value += 1;
                let group = op.num_results(ctx);
                for k in 0..group.max(index as usize + 1) {
                    let v = Value::OpResult { op, index: k as u32 };
                    let display =
                        if group > 1 { format!("{base}#{k}") } else { base.clone() };
                    self.value_names.insert(v, display);
                }
                return self.value_names[&value].clone();
            }
            Value::BlockArg { .. } => {
                let name = format!("%{}", self.next_value);
                self.next_value += 1;
                name
            }
        };
        self.value_names.insert(value, name.clone());
        name
    }

    /// Prints the label of `block` (assigning one if needed).
    pub fn print_block_name(&mut self, block: BlockRef) {
        let label = self
            .block_names
            .entry(block)
            .or_insert_with(|| {
                let label = format!("^bb{}", self.next_block);
                self.next_block += 1;
                label
            })
            .clone();
        self.out.push_str(&label);
    }

    /// Prints a type in textual syntax.
    pub fn print_type(&mut self, ctx: &Context, ty: Type) {
        match ctx.type_data(ty) {
            TypeData::Integer { width, signedness } => {
                self.out.push_str(&format!("{}i{}", signedness.prefix(), width));
            }
            TypeData::Float(kind) => self.out.push_str(kind.keyword()),
            TypeData::Index => self.out.push_str("index"),
            TypeData::Function { inputs, results } => {
                let (inputs, results) = (inputs.clone(), results.clone());
                self.out.push('(');
                for (i, input) in inputs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_type(ctx, *input);
                }
                self.out.push_str(") -> ");
                self.print_type_list_grouped(ctx, &results);
            }
            TypeData::Vector { dims, elem } => {
                let (dims, elem) = (dims.clone(), *elem);
                self.out.push_str("vector<");
                for d in &dims {
                    self.out.push_str(&format!("{d} x "));
                }
                self.print_type(ctx, elem);
                self.out.push('>');
            }
            TypeData::Tensor { dims, elem } => {
                let (dims, elem) = (dims.clone(), *elem);
                self.out.push_str("tensor<");
                self.print_signed_dims(ctx, &dims, elem);
            }
            TypeData::MemRef { dims, elem } => {
                let (dims, elem) = (dims.clone(), *elem);
                self.out.push_str("memref<");
                self.print_signed_dims(ctx, &dims, elem);
            }
            TypeData::Parametric { dialect, name, params } => {
                let (dialect, name, params) = (*dialect, *name, params.clone());
                self.out.push_str(&format!(
                    "!{}.{}",
                    ctx.symbol_str(dialect),
                    ctx.symbol_str(name)
                ));
                let custom = ctx
                    .registry()
                    .type_def(dialect, name)
                    .and_then(|info| info.syntax.clone());
                if let Some(syntax) = custom {
                    self.out.push('<');
                    syntax.print(ctx, &params, self);
                    self.out.push('>');
                } else if !params.is_empty() {
                    self.out.push('<');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.print_attribute(ctx, *p);
                    }
                    self.out.push('>');
                }
            }
        }
    }

    fn print_signed_dims(&mut self, ctx: &Context, dims: &[i64], elem: Type) {
        for d in dims {
            if *d < 0 {
                self.out.push_str("? x ");
            } else {
                self.out.push_str(&format!("{d} x "));
            }
        }
        self.print_type(ctx, elem);
        self.out.push('>');
    }

    /// Prints `types` as a single type or a parenthesized list.
    pub fn print_type_list_grouped(&mut self, ctx: &Context, types: &[Type]) {
        if types.len() == 1 {
            // A function result that is itself a function type needs parens.
            if matches!(ctx.type_data(types[0]), TypeData::Function { .. }) {
                self.out.push('(');
                self.print_type(ctx, types[0]);
                self.out.push(')');
            } else {
                self.print_type(ctx, types[0]);
            }
            return;
        }
        self.out.push('(');
        for (i, ty) in types.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.print_type(ctx, *ty);
        }
        self.out.push(')');
    }

    /// Prints an attribute-dictionary key, quoting it when it is not a
    /// bare identifier (e.g. `{"foo-bar" = ...}`).
    pub fn print_attr_key(&mut self, ctx: &Context, key: crate::Symbol) {
        let text = ctx.symbol_str(key);
        if is_bare_identifier(text) {
            self.out.push_str(text);
        } else {
            self.out.push_str(&format!("\"{}\"", escape_string(text)));
        }
    }

    /// Prints an attribute in textual syntax.
    pub fn print_attribute(&mut self, ctx: &Context, attr: Attribute) {
        match ctx.attr_data(attr) {
            AttrData::Unit => self.out.push_str("unit"),
            AttrData::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            AttrData::Integer { value, ty } => {
                let (value, ty) = (*value, *ty);
                self.out.push_str(&format!("{value} : "));
                self.print_type(ctx, ty);
            }
            AttrData::Float { bits, kind } => {
                let (bits, kind) = (*bits, *kind);
                let value = f64::from_bits(bits);
                if value.is_finite() {
                    self.out.push_str(&format!("{value:?} : {}", kind.keyword()));
                } else {
                    self.out.push_str(&format!("0x{bits:016X} : {}", kind.keyword()));
                }
            }
            AttrData::String(s) => {
                let escaped = escape_string(s);
                self.out.push_str(&format!("\"{escaped}\""));
            }
            AttrData::Array(items) => {
                let items = items.clone();
                self.out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_attribute(ctx, *item);
                }
                self.out.push(']');
            }
            AttrData::TypeAttr(ty) => {
                let ty = *ty;
                self.print_type(ctx, ty);
            }
            AttrData::SymbolRef(sym) => {
                self.out.push_str(&format!("@{}", ctx.symbol_str(*sym)));
            }
            AttrData::EnumValue { dialect, enum_name, variant } => {
                self.out.push_str(&format!(
                    "#{}.{}<{}>",
                    ctx.symbol_str(*dialect),
                    ctx.symbol_str(*enum_name),
                    ctx.symbol_str(*variant)
                ));
            }
            AttrData::Location { file, line, col } => {
                let escaped = escape_string(file);
                self.out.push_str(&format!("loc(\"{escaped}\":{line}:{col})"));
            }
            AttrData::TypeId(sym) => {
                self.out.push_str(&format!("typeid<\"{}\">", ctx.symbol_str(*sym)));
            }
            AttrData::Native { kind, text } => {
                let escaped = escape_string(text);
                self.out.push_str(&format!(
                    "#native<{} \"{escaped}\">",
                    ctx.symbol_str(*kind)
                ));
            }
            AttrData::Parametric { dialect, name, params } => {
                let (dialect, name, params) = (*dialect, *name, params.clone());
                self.out.push_str(&format!(
                    "#{}.{}",
                    ctx.symbol_str(dialect),
                    ctx.symbol_str(name)
                ));
                let custom = ctx
                    .registry()
                    .attr_def(dialect, name)
                    .and_then(|info| info.syntax.clone());
                if let Some(syntax) = custom {
                    self.out.push('<');
                    syntax.print(ctx, &params, self);
                    self.out.push('>');
                } else if !params.is_empty() {
                    self.out.push('<');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.print_attribute(ctx, *p);
                    }
                    self.out.push('>');
                }
            }
        }
    }

    /// Prints a full operation (results, name, body, nested regions).
    pub fn print_op(&mut self, ctx: &Context, op: OpRef) {
        if op.num_results(ctx) > 0 {
            let first = op.result(ctx, 0);
            let name = self.value_name(ctx, first);
            let base = name.split('#').next().unwrap_or(&name).to_string();
            if op.num_results(ctx) > 1 {
                self.out.push_str(&format!("{base}:{} = ", op.num_results(ctx)));
            } else {
                self.out.push_str(&format!("{base} = "));
            }
        }
        let info = ctx.op_info(op);
        let custom = info.and_then(|i| i.syntax.clone());
        match custom {
            Some(syntax) if !self.generic => {
                self.out.push_str(&op.name(ctx).display(ctx));
                syntax.print(ctx, op, self);
            }
            _ => self.print_op_generic_body(ctx, op),
        }
    }

    fn print_op_generic_body(&mut self, ctx: &Context, op: OpRef) {
        self.out.push_str(&format!("\"{}\"(", op.name(ctx).display(ctx)));
        let operands = op.operands(ctx).to_vec();
        for (i, operand) in operands.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.print_value(ctx, *operand);
        }
        self.out.push(')');
        let successors = op.successors(ctx).to_vec();
        if !successors.is_empty() {
            self.out.push('[');
            for (i, succ) in successors.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_block_name(*succ);
            }
            self.out.push(']');
        }
        let regions = op.regions(ctx).to_vec();
        if !regions.is_empty() {
            self.out.push_str(" (");
            for (i, region) in regions.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_region(ctx, *region);
            }
            self.out.push(')');
        }
        let attrs = op.attributes(ctx).to_vec();
        if !attrs.is_empty() {
            self.out.push_str(" {");
            for (i, (key, value)) in attrs.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_attr_key(ctx, *key);
                self.out.push_str(" = ");
                self.print_attribute(ctx, *value);
            }
            self.out.push('}');
        }
        self.out.push_str(" : (");
        let operand_types: Vec<Type> = operands.iter().map(|v| v.ty(ctx)).collect();
        for (i, ty) in operand_types.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.print_type(ctx, *ty);
        }
        self.out.push_str(") -> ");
        let result_types = op.result_types(ctx).to_vec();
        if result_types.is_empty() {
            self.out.push_str("()");
        } else {
            self.print_type_list_grouped(ctx, &result_types);
        }
    }

    /// Prints a region: `{ blocks }` with indented operations.
    pub fn print_region(&mut self, ctx: &Context, region: RegionRef) {
        self.out.push('{');
        self.indent += 1;
        let blocks = region.blocks(ctx).to_vec();
        // The entry-block header can only be omitted when nothing needs it:
        // the block must be the sole, non-empty, argument-free block, and no
        // operation in the region may name it as a successor.
        let entry_targeted = blocks.iter().any(|b| {
            b.ops(ctx).iter().any(|op| op.successors(ctx).contains(&blocks[0]))
        });
        let single_plain_entry = blocks.len() == 1
            && blocks[0].num_args(ctx) == 0
            && !blocks[0].ops(ctx).is_empty()
            && !entry_targeted;
        for (i, block) in blocks.iter().enumerate() {
            if !(single_plain_entry && i == 0) {
                self.indent -= 1;
                self.newline();
                self.indent += 1;
                self.print_block_header(ctx, *block);
            }
            let ops = block.ops(ctx).to_vec();
            for op in ops {
                self.newline();
                self.print_op(ctx, op);
            }
        }
        self.indent -= 1;
        self.newline();
        self.out.push('}');
    }

    fn print_block_header(&mut self, ctx: &Context, block: BlockRef) {
        self.print_block_name(block);
        if block.num_args(ctx) > 0 {
            self.out.push('(');
            for i in 0..block.num_args(ctx) {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let arg = block.arg(ctx, i);
                self.print_value(ctx, arg);
                self.out.push_str(": ");
                self.print_type(ctx, arg.ty(ctx));
            }
            self.out.push(')');
        }
        self.out.push(':');
    }
}

/// Renders a type to a string.
pub fn type_to_string(ctx: &Context, ty: Type) -> String {
    let mut p = Printer::new();
    p.print_type(ctx, ty);
    p.finish()
}

/// Renders an attribute to a string.
pub fn attr_to_string(ctx: &Context, attr: Attribute) -> String {
    let mut p = Printer::new();
    p.print_attribute(ctx, attr);
    p.finish()
}

/// Renders an operation (custom syntax where registered) to a string.
pub fn op_to_string(ctx: &Context, op: OpRef) -> String {
    let mut p = Printer::new();
    p.print_op(ctx, op);
    p.finish()
}

/// Renders an operation in the generic form only.
pub fn op_to_string_generic(ctx: &Context, op: OpRef) -> String {
    let mut p = Printer::new();
    p.set_generic(true);
    p.print_op(ctx, op);
    p.finish()
}

/// Returns `true` when `s` lexes as a single bare identifier.
fn is_bare_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.')
}

/// Escapes `s` for inclusion in a double-quoted string literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    #[test]
    fn print_builtin_types() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        assert_eq!(type_to_string(&ctx, i32), "i32");
        let si8 = ctx.int_type_with_signedness(8, crate::Signedness::Signed);
        assert_eq!(type_to_string(&ctx, si8), "si8");
        let f32 = ctx.f32_type();
        let fty = ctx.function_type([i32, f32], [f32]);
        assert_eq!(type_to_string(&ctx, fty), "(i32, f32) -> f32");
        let multi = ctx.function_type([], [i32, f32]);
        assert_eq!(type_to_string(&ctx, multi), "() -> (i32, f32)");
        let vec = ctx.vector_type([4, 8], f32);
        assert_eq!(type_to_string(&ctx, vec), "vector<4 x 8 x f32>");
        let tensor = ctx.tensor_type([-1, 3], f32);
        assert_eq!(type_to_string(&ctx, tensor), "tensor<? x 3 x f32>");
    }

    #[test]
    fn print_parametric_type() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let param = ctx.type_attr(f32);
        let complex = ctx.parametric_type("cmath", "complex", [param]).unwrap();
        assert_eq!(type_to_string(&ctx, complex), "!cmath.complex<f32>");
    }

    #[test]
    fn print_attributes() {
        let mut ctx = Context::new();
        let i = ctx.i32_attr(42);
        assert_eq!(attr_to_string(&ctx, i), "42 : i32");
        let f = ctx.f32_attr(1.5);
        assert_eq!(attr_to_string(&ctx, f), "1.5 : f32");
        let s = ctx.string_attr("a\"b");
        assert_eq!(attr_to_string(&ctx, s), "\"a\\\"b\"");
        let arr = ctx.array_attr([i, f]);
        assert_eq!(attr_to_string(&ctx, arr), "[42 : i32, 1.5 : f32]");
        let sym = ctx.symbol_ref_attr("main");
        assert_eq!(attr_to_string(&ctx, sym), "@main");
        let e = ctx.enum_attr("x", "signedness", "Signed");
        assert_eq!(attr_to_string(&ctx, e), "#x.signedness<Signed>");
        let loc = ctx.location_attr("f.mlir", 3, 7);
        assert_eq!(attr_to_string(&ctx, loc), "loc(\"f.mlir\":3:7)");
    }

    #[test]
    fn print_simple_op() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let name = ctx.op_name("test", "source");
        let def = ctx.create_op(OperationState::new(name).add_result_types([f32]));
        let v = def.result(&ctx, 0);
        let use_name = ctx.op_name("test", "sink");
        let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
        let block = ctx.create_block([]);
        ctx.append_op(block, def);
        ctx.append_op(block, user);
        assert_eq!(op_to_string(&ctx, def), "%0 = \"test.source\"() : () -> f32");
        let mut p = Printer::new();
        p.print_op(&ctx, def);
        p.newline();
        p.print_op(&ctx, user);
        let text = p.finish();
        assert_eq!(
            text,
            "%0 = \"test.source\"() : () -> f32\n\"test.sink\"(%0) : (f32) -> ()"
        );
    }

    #[test]
    fn print_module_with_region() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let name = ctx.op_name("test", "op");
        let op = ctx.create_op(OperationState::new(name));
        ctx.append_op(block, op);
        let text = op_to_string(&ctx, module);
        assert_eq!(
            text,
            "\"builtin.module\"() ({\n  \"test.op\"() : () -> ()\n}) : () -> ()"
        );
    }

    #[test]
    fn multi_result_group_naming() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let name = ctx.op_name("test", "pair");
        let def = ctx.create_op(OperationState::new(name).add_result_types([f32, i32]));
        let user_name = ctx.op_name("test", "use");
        let r1 = def.result(&ctx, 1);
        let user = ctx.create_op(OperationState::new(user_name).add_operands([r1]));
        let mut p = Printer::new();
        p.print_op(&ctx, def);
        p.newline();
        p.print_op(&ctx, user);
        let text = p.finish();
        assert_eq!(
            text,
            "%0:2 = \"test.pair\"() : () -> (f32, i32)\n\"test.use\"(%0#1) : (i32) -> ()"
        );
    }
}
