//! Printing IR to the generic textual format.
//!
//! The syntax is a close cousin of MLIR's generic form:
//!
//! ```text
//! %0 = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
//! ```
//!
//! with attribute dictionaries (`{key = value}`), successor lists
//! (`[^bb1, ^bb2]`), and nested regions (`({ ... })`). Operations whose
//! dialect registers a custom syntax hook (an IRDL `Format` or a native
//! implementation) print in their custom form unless
//! [`Printer::set_generic`] forces the generic one.
//!
//! The printer writes into a caller-provided `String` and never builds
//! intermediate per-token strings: SSA names and block labels are numeric
//! ids rendered on the fly, escape-free string literals are copied in one
//! `push_str`, and [`print_op_into`] with a reusable [`PrintScratch`]
//! prints in a steady state of zero heap allocations per operation.
//!
//! One divergence from MLIR: shaped-type dimension lists are spaced
//! (`vector<4 x f32>` instead of `vector<4xf32>`), which keeps the lexer
//! free of MLIR's dimension-list special case.

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::attrs::{AttrData, Attribute};
use crate::block::BlockRef;
use crate::context::Context;
use crate::op::OpRef;
use crate::region::RegionRef;
use crate::types::{Type, TypeData};
use crate::value::Value;

/// Prints IR entities into a borrowed buffer, assigning stable SSA names
/// as it goes.
///
/// Dialect syntax hooks receive a `&mut Printer` and append to the same
/// buffer via [`Printer::token`], [`Printer::print_value`], and friends.
#[derive(Debug)]
pub struct Printer<'w> {
    out: &'w mut String,
    indent: usize,
    value_ids: HashMap<Value, u32>,
    block_ids: HashMap<BlockRef, u32>,
    next_value: u32,
    next_block: u32,
    generic: bool,
}

/// Reusable naming-table storage for [`print_op_into`].
///
/// Holding one of these across calls lets the per-op hash maps keep their
/// capacity, so steady-state printing performs no heap allocation.
#[derive(Debug, Default)]
pub struct PrintScratch {
    value_ids: HashMap<Value, u32>,
    block_ids: HashMap<BlockRef, u32>,
}

impl<'w> Printer<'w> {
    /// Creates a printer appending to `out` with custom syntax enabled.
    pub fn new(out: &'w mut String) -> Self {
        Printer {
            out,
            indent: 0,
            value_ids: HashMap::new(),
            block_ids: HashMap::new(),
            next_value: 0,
            next_block: 0,
            generic: false,
        }
    }

    /// Forces the generic form for all operations when `generic` is `true`.
    pub fn set_generic(&mut self, generic: bool) {
        self.generic = generic;
    }

    /// Appends raw text.
    pub fn token(&mut self, text: &str) {
        self.out.push_str(text);
    }

    /// Appends a newline followed by the current indentation.
    pub fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    /// Prints the SSA name of `value` (assigning one if needed).
    pub fn print_value(&mut self, ctx: &Context, value: Value) {
        let id = self.value_id(ctx, value);
        match value {
            Value::OpResult { op, index } if op.num_results(ctx) > 1 => {
                let _ = write!(self.out, "%{id}#{index}");
            }
            _ => {
                let _ = write!(self.out, "%{id}");
            }
        }
    }

    /// Returns the numeric id naming `value`, assigning the whole result
    /// group of the defining op (or the block arg) on first sight.
    fn value_id(&mut self, ctx: &Context, value: Value) -> u32 {
        if let Some(id) = self.value_ids.get(&value) {
            return *id;
        }
        let id = self.next_value;
        self.next_value += 1;
        match value {
            Value::OpResult { op, index } => {
                let group = op.num_results(ctx).max(index as usize + 1);
                for k in 0..group {
                    self.value_ids.insert(Value::OpResult { op, index: k as u32 }, id);
                }
            }
            Value::BlockArg { .. } => {
                self.value_ids.insert(value, id);
            }
        }
        id
    }

    /// Prints the label of `block` (assigning one if needed).
    pub fn print_block_name(&mut self, block: BlockRef) {
        let id = *self.block_ids.entry(block).or_insert_with(|| {
            let id = self.next_block;
            self.next_block += 1;
            id
        });
        let _ = write!(self.out, "^bb{id}");
    }

    /// Appends `s` as the body of a double-quoted literal, escaping as
    /// needed. Escape-free spans (the common case) are copied wholesale.
    fn push_escaped(&mut self, s: &str) {
        let mut rest = s;
        while let Some(pos) = rest
            .bytes()
            .position(|b| matches!(b, b'"' | b'\\' | b'\n' | b'\t'))
        {
            self.out.push_str(&rest[..pos]);
            self.out.push_str(match rest.as_bytes()[pos] {
                b'"' => "\\\"",
                b'\\' => "\\\\",
                b'\n' => "\\n",
                _ => "\\t",
            });
            rest = &rest[pos + 1..];
        }
        self.out.push_str(rest);
    }

    /// Prints a type in textual syntax.
    pub fn print_type(&mut self, ctx: &Context, ty: Type) {
        match ctx.type_data(ty) {
            TypeData::Integer { width, signedness } => {
                let _ = write!(self.out, "{}i{width}", signedness.prefix());
            }
            TypeData::Float(kind) => self.out.push_str(kind.keyword()),
            TypeData::Index => self.out.push_str("index"),
            TypeData::Function { inputs, results } => {
                self.out.push('(');
                for (i, input) in inputs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_type(ctx, *input);
                }
                self.out.push_str(") -> ");
                self.print_type_list_grouped(ctx, results);
            }
            TypeData::Vector { dims, elem } => {
                self.out.push_str("vector<");
                for d in dims {
                    let _ = write!(self.out, "{d} x ");
                }
                self.print_type(ctx, *elem);
                self.out.push('>');
            }
            TypeData::Tensor { dims, elem } => {
                self.out.push_str("tensor<");
                self.print_signed_dims(ctx, dims, *elem);
            }
            TypeData::MemRef { dims, elem } => {
                self.out.push_str("memref<");
                self.print_signed_dims(ctx, dims, *elem);
            }
            TypeData::Parametric { dialect, name, params } => {
                let (dialect, name) = (*dialect, *name);
                let _ = write!(
                    self.out,
                    "!{}.{}",
                    ctx.symbol_str(dialect),
                    ctx.symbol_str(name)
                );
                let custom = ctx
                    .registry()
                    .type_def(dialect, name)
                    .and_then(|info| info.syntax.as_deref());
                if let Some(syntax) = custom {
                    self.out.push('<');
                    syntax.print(ctx, params, self);
                    self.out.push('>');
                } else if !params.is_empty() {
                    self.out.push('<');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.print_attribute(ctx, *p);
                    }
                    self.out.push('>');
                }
            }
        }
    }

    fn print_signed_dims(&mut self, ctx: &Context, dims: &[i64], elem: Type) {
        for d in dims {
            if *d < 0 {
                self.out.push_str("? x ");
            } else {
                let _ = write!(self.out, "{d} x ");
            }
        }
        self.print_type(ctx, elem);
        self.out.push('>');
    }

    /// Prints `types` as a single type or a parenthesized list.
    pub fn print_type_list_grouped(&mut self, ctx: &Context, types: &[Type]) {
        if types.len() == 1 {
            // A function result that is itself a function type needs parens.
            if matches!(ctx.type_data(types[0]), TypeData::Function { .. }) {
                self.out.push('(');
                self.print_type(ctx, types[0]);
                self.out.push(')');
            } else {
                self.print_type(ctx, types[0]);
            }
            return;
        }
        self.out.push('(');
        for (i, ty) in types.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.print_type(ctx, *ty);
        }
        self.out.push(')');
    }

    /// Prints an attribute-dictionary key, quoting it when it is not a
    /// bare identifier (e.g. `{"foo-bar" = ...}`).
    pub fn print_attr_key(&mut self, ctx: &Context, key: crate::Symbol) {
        let text = ctx.symbol_str(key);
        if is_bare_identifier(text) {
            self.out.push_str(text);
        } else {
            self.out.push('"');
            self.push_escaped(text);
            self.out.push('"');
        }
    }

    /// Prints an attribute in textual syntax.
    pub fn print_attribute(&mut self, ctx: &Context, attr: Attribute) {
        match ctx.attr_data(attr) {
            AttrData::Unit => self.out.push_str("unit"),
            AttrData::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            AttrData::Integer { value, ty } => {
                let _ = write!(self.out, "{value} : ");
                self.print_type(ctx, *ty);
            }
            AttrData::Float { bits, kind } => {
                let value = f64::from_bits(*bits);
                if value.is_finite() {
                    let _ = write!(self.out, "{value:?} : {}", kind.keyword());
                } else {
                    let _ = write!(self.out, "0x{bits:016X} : {}", kind.keyword());
                }
            }
            AttrData::String(s) => {
                self.out.push('"');
                self.push_escaped(s);
                self.out.push('"');
            }
            AttrData::Array(items) => {
                self.out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.print_attribute(ctx, *item);
                }
                self.out.push(']');
            }
            AttrData::TypeAttr(ty) => {
                self.print_type(ctx, *ty);
            }
            AttrData::SymbolRef(sym) => {
                let _ = write!(self.out, "@{}", ctx.symbol_str(*sym));
            }
            AttrData::EnumValue { dialect, enum_name, variant } => {
                let _ = write!(
                    self.out,
                    "#{}.{}<{}>",
                    ctx.symbol_str(*dialect),
                    ctx.symbol_str(*enum_name),
                    ctx.symbol_str(*variant)
                );
            }
            AttrData::Location { file, line, col } => {
                self.out.push_str("loc(\"");
                self.push_escaped(file);
                let _ = write!(self.out, "\":{line}:{col})");
            }
            AttrData::TypeId(sym) => {
                let _ = write!(self.out, "typeid<\"{}\">", ctx.symbol_str(*sym));
            }
            AttrData::Native { kind, text } => {
                let _ = write!(self.out, "#native<{} \"", ctx.symbol_str(*kind));
                self.push_escaped(text);
                self.out.push_str("\">");
            }
            AttrData::Parametric { dialect, name, params } => {
                let (dialect, name) = (*dialect, *name);
                let _ = write!(
                    self.out,
                    "#{}.{}",
                    ctx.symbol_str(dialect),
                    ctx.symbol_str(name)
                );
                let custom = ctx
                    .registry()
                    .attr_def(dialect, name)
                    .and_then(|info| info.syntax.as_deref());
                if let Some(syntax) = custom {
                    self.out.push('<');
                    syntax.print(ctx, params, self);
                    self.out.push('>');
                } else if !params.is_empty() {
                    self.out.push('<');
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        self.print_attribute(ctx, *p);
                    }
                    self.out.push('>');
                }
            }
        }
    }

    /// Prints a full operation (results, name, body, nested regions).
    pub fn print_op(&mut self, ctx: &Context, op: OpRef) {
        let num_results = op.num_results(ctx);
        if num_results > 0 {
            let id = self.value_id(ctx, op.result(ctx, 0));
            if num_results > 1 {
                let _ = write!(self.out, "%{id}:{num_results} = ");
            } else {
                let _ = write!(self.out, "%{id} = ");
            }
        }
        let name = op.name(ctx);
        let custom = if self.generic {
            None
        } else {
            ctx.op_info(op).and_then(|i| i.syntax.clone())
        };
        match custom {
            Some(syntax) => {
                let _ = write!(
                    self.out,
                    "{}.{}",
                    ctx.symbol_str(name.dialect),
                    ctx.symbol_str(name.name)
                );
                syntax.print(ctx, op, self);
            }
            None => self.print_op_generic_body(ctx, op),
        }
    }

    fn print_op_generic_body(&mut self, ctx: &Context, op: OpRef) {
        let name = op.name(ctx);
        let _ = write!(
            self.out,
            "\"{}.{}\"(",
            ctx.symbol_str(name.dialect),
            ctx.symbol_str(name.name)
        );
        for i in 0..op.num_operands(ctx) {
            if i > 0 {
                self.out.push_str(", ");
            }
            let operand = op.operands(ctx)[i];
            self.print_value(ctx, operand);
        }
        self.out.push(')');
        if !op.successors(ctx).is_empty() {
            self.out.push('[');
            for i in 0..op.successors(ctx).len() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_block_name(op.successors(ctx)[i]);
            }
            self.out.push(']');
        }
        if !op.regions(ctx).is_empty() {
            self.out.push_str(" (");
            for i in 0..op.regions(ctx).len() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.print_region(ctx, op.regions(ctx)[i]);
            }
            self.out.push(')');
        }
        if !op.attributes(ctx).is_empty() {
            self.out.push_str(" {");
            for i in 0..op.attributes(ctx).len() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let (key, value) = op.attributes(ctx)[i];
                self.print_attr_key(ctx, key);
                self.out.push_str(" = ");
                self.print_attribute(ctx, value);
            }
            self.out.push('}');
        }
        self.out.push_str(" : (");
        for i in 0..op.num_operands(ctx) {
            if i > 0 {
                self.out.push_str(", ");
            }
            let ty = op.operands(ctx)[i].ty(ctx);
            self.print_type(ctx, ty);
        }
        self.out.push_str(") -> ");
        if op.result_types(ctx).is_empty() {
            self.out.push_str("()");
        } else {
            let types = op.result_types(ctx);
            self.print_type_list_grouped(ctx, types);
        }
    }

    /// Prints a region: `{ blocks }` with indented operations.
    pub fn print_region(&mut self, ctx: &Context, region: RegionRef) {
        self.out.push('{');
        self.indent += 1;
        let blocks = region.blocks(ctx);
        // The entry-block header can only be omitted when nothing needs it:
        // the block must be the sole, non-empty, argument-free block, and no
        // operation in the region may name it as a successor.
        let entry_targeted = blocks.iter().any(|b| {
            b.ops(ctx).iter().any(|op| op.successors(ctx).contains(&blocks[0]))
        });
        let single_plain_entry = blocks.len() == 1
            && blocks[0].num_args(ctx) == 0
            && !blocks[0].ops(ctx).is_empty()
            && !entry_targeted;
        for i in 0..region.blocks(ctx).len() {
            let block = region.blocks(ctx)[i];
            if !(single_plain_entry && i == 0) {
                self.indent -= 1;
                self.newline();
                self.indent += 1;
                self.print_block_header(ctx, block);
            }
            for j in 0..block.ops(ctx).len() {
                let op = block.ops(ctx)[j];
                self.newline();
                self.print_op(ctx, op);
            }
        }
        self.indent -= 1;
        self.newline();
        self.out.push('}');
    }

    fn print_block_header(&mut self, ctx: &Context, block: BlockRef) {
        self.print_block_name(block);
        if block.num_args(ctx) > 0 {
            self.out.push('(');
            for i in 0..block.num_args(ctx) {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let arg = block.arg(ctx, i);
                self.print_value(ctx, arg);
                self.out.push_str(": ");
                self.print_type(ctx, arg.ty(ctx));
            }
            self.out.push(')');
        }
        self.out.push(':');
    }
}

/// Prints `op` (custom syntax where registered) into `out`, reusing the
/// naming tables in `scratch`.
///
/// This is the allocation-free workhorse behind [`op_to_string`]: with a
/// warm `out` capacity and `scratch` reused across calls, steady-state
/// printing performs zero heap allocations per operation.
pub fn print_op_into(ctx: &Context, op: OpRef, out: &mut String, scratch: &mut PrintScratch) {
    let mut p = Printer::new(out);
    std::mem::swap(&mut p.value_ids, &mut scratch.value_ids);
    std::mem::swap(&mut p.block_ids, &mut scratch.block_ids);
    p.value_ids.clear();
    p.block_ids.clear();
    p.print_op(ctx, op);
    std::mem::swap(&mut p.value_ids, &mut scratch.value_ids);
    std::mem::swap(&mut p.block_ids, &mut scratch.block_ids);
}

/// Renders a type to a string.
pub fn type_to_string(ctx: &Context, ty: Type) -> String {
    let mut out = String::new();
    Printer::new(&mut out).print_type(ctx, ty);
    out
}

/// Renders an attribute to a string.
pub fn attr_to_string(ctx: &Context, attr: Attribute) -> String {
    let mut out = String::new();
    Printer::new(&mut out).print_attribute(ctx, attr);
    out
}

/// Renders an operation (custom syntax where registered) to a string.
pub fn op_to_string(ctx: &Context, op: OpRef) -> String {
    let mut out = String::new();
    Printer::new(&mut out).print_op(ctx, op);
    out
}

/// Renders an operation in the generic form only.
pub fn op_to_string_generic(ctx: &Context, op: OpRef) -> String {
    let mut out = String::new();
    let mut p = Printer::new(&mut out);
    p.set_generic(true);
    p.print_op(ctx, op);
    out
}

/// Returns `true` when `s` lexes as a single bare identifier.
fn is_bare_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.')
}

/// Escapes `s` for inclusion in a double-quoted string literal.
///
/// Escape-free input (the overwhelmingly common case) is returned borrowed
/// without allocating.
pub fn escape_string(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'"' | b'\\' | b'\n' | b'\t')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    #[test]
    fn print_builtin_types() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        assert_eq!(type_to_string(&ctx, i32), "i32");
        let si8 = ctx.int_type_with_signedness(8, crate::Signedness::Signed);
        assert_eq!(type_to_string(&ctx, si8), "si8");
        let f32 = ctx.f32_type();
        let fty = ctx.function_type([i32, f32], [f32]);
        assert_eq!(type_to_string(&ctx, fty), "(i32, f32) -> f32");
        let multi = ctx.function_type([], [i32, f32]);
        assert_eq!(type_to_string(&ctx, multi), "() -> (i32, f32)");
        let vec = ctx.vector_type([4, 8], f32);
        assert_eq!(type_to_string(&ctx, vec), "vector<4 x 8 x f32>");
        let tensor = ctx.tensor_type([-1, 3], f32);
        assert_eq!(type_to_string(&ctx, tensor), "tensor<? x 3 x f32>");
    }

    #[test]
    fn print_parametric_type() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let param = ctx.type_attr(f32);
        let complex = ctx.parametric_type("cmath", "complex", [param]).unwrap();
        assert_eq!(type_to_string(&ctx, complex), "!cmath.complex<f32>");
    }

    #[test]
    fn print_attributes() {
        let mut ctx = Context::new();
        let i = ctx.i32_attr(42);
        assert_eq!(attr_to_string(&ctx, i), "42 : i32");
        let f = ctx.f32_attr(1.5);
        assert_eq!(attr_to_string(&ctx, f), "1.5 : f32");
        let s = ctx.string_attr("a\"b");
        assert_eq!(attr_to_string(&ctx, s), "\"a\\\"b\"");
        let arr = ctx.array_attr([i, f]);
        assert_eq!(attr_to_string(&ctx, arr), "[42 : i32, 1.5 : f32]");
        let sym = ctx.symbol_ref_attr("main");
        assert_eq!(attr_to_string(&ctx, sym), "@main");
        let e = ctx.enum_attr("x", "signedness", "Signed");
        assert_eq!(attr_to_string(&ctx, e), "#x.signedness<Signed>");
        let loc = ctx.location_attr("f.mlir", 3, 7);
        assert_eq!(attr_to_string(&ctx, loc), "loc(\"f.mlir\":3:7)");
    }

    #[test]
    fn escape_free_strings_borrow() {
        assert!(matches!(escape_string("plain"), Cow::Borrowed("plain")));
        assert!(matches!(escape_string("a\"b"), Cow::Owned(_)));
        assert_eq!(escape_string("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn print_simple_op() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let name = ctx.op_name("test", "source");
        let def = ctx.create_op(OperationState::new(name).add_result_types([f32]));
        let v = def.result(&ctx, 0);
        let use_name = ctx.op_name("test", "sink");
        let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
        let block = ctx.create_block([]);
        ctx.append_op(block, def);
        ctx.append_op(block, user);
        assert_eq!(op_to_string(&ctx, def), "%0 = \"test.source\"() : () -> f32");
        let mut text = String::new();
        let mut p = Printer::new(&mut text);
        p.print_op(&ctx, def);
        p.newline();
        p.print_op(&ctx, user);
        assert_eq!(
            text,
            "%0 = \"test.source\"() : () -> f32\n\"test.sink\"(%0) : (f32) -> ()"
        );
    }

    #[test]
    fn print_module_with_region() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let name = ctx.op_name("test", "op");
        let op = ctx.create_op(OperationState::new(name));
        ctx.append_op(block, op);
        let text = op_to_string(&ctx, module);
        assert_eq!(
            text,
            "\"builtin.module\"() ({\n  \"test.op\"() : () -> ()\n}) : () -> ()"
        );
    }

    #[test]
    fn multi_result_group_naming() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let name = ctx.op_name("test", "pair");
        let def = ctx.create_op(OperationState::new(name).add_result_types([f32, i32]));
        let user_name = ctx.op_name("test", "use");
        let r1 = def.result(&ctx, 1);
        let user = ctx.create_op(OperationState::new(user_name).add_operands([r1]));
        let mut text = String::new();
        let mut p = Printer::new(&mut text);
        p.print_op(&ctx, def);
        p.newline();
        p.print_op(&ctx, user);
        assert_eq!(
            text,
            "%0:2 = \"test.pair\"() : () -> (f32, i32)\n\"test.use\"(%0#1) : (i32) -> ()"
        );
    }

    #[test]
    fn print_op_into_reuses_buffers() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let name = ctx.op_name("test", "source");
        let op = ctx.create_op(OperationState::new(name).add_result_types([f32]));
        let block = ctx.create_block([]);
        ctx.append_op(block, op);
        let mut out = String::new();
        let mut scratch = PrintScratch::default();
        print_op_into(&ctx, op, &mut out, &mut scratch);
        assert_eq!(out, "%0 = \"test.source\"() : () -> f32");
        out.clear();
        print_op_into(&ctx, op, &mut out, &mut scratch);
        assert_eq!(out, "%0 = \"test.source\"() : () -> f32");
    }
}
