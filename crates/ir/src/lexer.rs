//! Lexer for the generic IR textual format.
//!
//! The same token stream serves the generic parser and dialect-defined
//! custom syntax hooks. Comments run from `//` to end of line.
//!
//! Tokens are **zero-copy**: every payload is a `&str` slice of the source
//! buffer (string literals use a [`Cow`] that only owns its data when the
//! literal contains escapes), so lexing performs no per-token heap
//! allocation beyond the token vector itself. Code that must retain tokens
//! beyond the source's lifetime (pre-lexed format-spec literals) stores a
//! [`TokenBuf`], which owns the text and re-materializes borrowed tokens on
//! demand.

use std::borrow::Cow;

use crate::diag::{Diagnostic, Result};

/// A half-open byte range `[start, end)` into the source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Span {
    /// Returns the source text covered by this span.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// A lexical token borrowing its payload from the source buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Token<'s> {
    /// Bare identifier or keyword (may contain `.`, `_`, `$`, digits).
    Ident(&'s str),
    /// `%name` SSA value id (payload excludes the sigil).
    ValueId(&'s str),
    /// `^name` block label (payload excludes the sigil).
    BlockId(&'s str),
    /// `@name` symbol reference (payload excludes the sigil).
    SymbolRef(&'s str),
    /// `!name` type reference (payload excludes the sigil).
    TypeRef(&'s str),
    /// `#name` attribute reference (payload excludes the sigil).
    AttrRef(&'s str),
    /// Integer literal. `hex` records whether it was written as `0x...`.
    Integer {
        /// Parsed value.
        value: i128,
        /// Whether the literal was hexadecimal (used for float bit patterns).
        hex: bool,
    },
    /// Floating-point literal.
    Float(f64),
    /// String literal (unescaped payload; borrowed unless escapes occur).
    Str(Cow<'s, str>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `.`
    Dot,
    /// End of input.
    Eof,
}

impl Token<'_> {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::ValueId(s) => format!("`%{s}`"),
            Token::BlockId(s) => format!("`^{s}`"),
            Token::SymbolRef(s) => format!("`@{s}`"),
            Token::TypeRef(s) => format!("`!{s}`"),
            Token::AttrRef(s) => format!("`#{s}`"),
            Token::Integer { value, .. } => format!("`{value}`"),
            Token::Float(v) => format!("`{v}`"),
            Token::Str(s) => format!("\"{s}\""),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LBracket => "`[`".into(),
            Token::RBracket => "`]`".into(),
            Token::Lt => "`<`".into(),
            Token::Gt => "`>`".into(),
            Token::Comma => "`,`".into(),
            Token::Colon => "`:`".into(),
            Token::Equals => "`=`".into(),
            Token::Arrow => "`->`".into(),
            Token::Question => "`?`".into(),
            Token::Star => "`*`".into(),
            Token::Plus => "`+`".into(),
            Token::Dot => "`.`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// A token plus its byte span in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<'s> {
    /// The token.
    pub token: Token<'s>,
    /// Byte span of the token, including sigils and string quotes.
    pub span: Span,
}

impl Spanned<'_> {
    /// Byte offset of the token start (diagnostic anchor).
    pub fn offset(&self) -> usize {
        self.span.start
    }
}

/// Tokenizes `source` into a vector ending with [`Token::Eof`].
///
/// # Errors
///
/// Returns a diagnostic on malformed literals or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned<'_>>> {
    let bytes = source.as_bytes();
    // One token spans ~4+ source bytes on average; sizing up front keeps
    // small-module lexing to a single buffer allocation.
    let mut tokens = Vec::with_capacity(source.len() / 4 + 4);
    let mut pos = 0usize;

    while pos < bytes.len() {
        let start = pos;
        let ch = bytes[pos] as char;
        match ch {
            ' ' | '\t' | '\r' | '\n' => {
                pos += 1;
            }
            '/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            '(' => push_simple(&mut tokens, Token::LParen, &mut pos, start),
            ')' => push_simple(&mut tokens, Token::RParen, &mut pos, start),
            '{' => push_simple(&mut tokens, Token::LBrace, &mut pos, start),
            '}' => push_simple(&mut tokens, Token::RBrace, &mut pos, start),
            '[' => push_simple(&mut tokens, Token::LBracket, &mut pos, start),
            ']' => push_simple(&mut tokens, Token::RBracket, &mut pos, start),
            '<' => push_simple(&mut tokens, Token::Lt, &mut pos, start),
            '>' => push_simple(&mut tokens, Token::Gt, &mut pos, start),
            ',' => push_simple(&mut tokens, Token::Comma, &mut pos, start),
            ':' => push_simple(&mut tokens, Token::Colon, &mut pos, start),
            '=' => push_simple(&mut tokens, Token::Equals, &mut pos, start),
            '?' => push_simple(&mut tokens, Token::Question, &mut pos, start),
            '*' => push_simple(&mut tokens, Token::Star, &mut pos, start),
            '+' => push_simple(&mut tokens, Token::Plus, &mut pos, start),
            '.' => push_simple(&mut tokens, Token::Dot, &mut pos, start),
            '-' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    tokens.push(Spanned {
                        token: Token::Arrow,
                        span: Span { start, end: pos },
                    });
                } else if bytes.get(pos + 1).is_some_and(|b| b.is_ascii_digit()) {
                    pos += 1;
                    let tok = lex_number(source, &mut pos, true)?;
                    tokens.push(Spanned { token: tok, span: Span { start, end: pos } });
                } else {
                    return Err(Diagnostic::at(start, "unexpected `-`"));
                }
            }
            '"' => {
                let tok = lex_string(source, &mut pos)?;
                tokens.push(Spanned { token: tok, span: Span { start, end: pos } });
            }
            '%' | '^' | '@' | '!' | '#' => {
                pos += 1;
                let ident = lex_ident_text(source, &mut pos);
                if ident.is_empty() {
                    return Err(Diagnostic::at(start, format!("expected identifier after `{ch}`")));
                }
                let token = match ch {
                    '%' => Token::ValueId(ident),
                    '^' => Token::BlockId(ident),
                    '@' => Token::SymbolRef(ident),
                    '!' => Token::TypeRef(ident),
                    _ => Token::AttrRef(ident),
                };
                tokens.push(Spanned { token, span: Span { start, end: pos } });
            }
            c if c.is_ascii_digit() => {
                let tok = lex_number(source, &mut pos, false)?;
                tokens.push(Spanned { token: tok, span: Span { start, end: pos } });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let ident = lex_ident_text(source, &mut pos);
                tokens.push(Spanned {
                    token: Token::Ident(ident),
                    span: Span { start, end: pos },
                });
            }
            other => {
                return Err(Diagnostic::at(start, format!("unexpected character `{other}`")));
            }
        }
    }
    let end = source.len();
    tokens.push(Spanned { token: Token::Eof, span: Span { start: end, end } });
    Ok(tokens)
}

/// Sources shorter than this are lexed sequentially even when a chunked
/// lex was requested: thread spawn would dominate the work.
const CHUNK_MIN_SOURCE: usize = 4096;

/// Tokenizes `source` like [`lex`], splitting the input at safe top-level
/// boundaries and lexing the chunks on up to `jobs` threads.
///
/// A split point is a newline at brace depth 0, outside string literals
/// and comments — the only token that can span a newline is a string
/// literal, so cutting there can never divide a token. The scanner picks
/// the first such newline at or past each `i * len / jobs` target. Chunk
/// tokens are spliced back by rebasing their spans (payloads are already
/// sub-slices of `source`, so only offsets move), per-chunk `Eof` markers
/// are dropped, and one final `Eof` at `source.len()` is appended — the
/// result is byte-identical to what [`lex`] returns, spans included.
///
/// Falls back to the sequential lexer when `jobs <= 1`, the source is
/// small, or no safe split point exists.
///
/// # Errors
///
/// Returns a diagnostic on malformed literals or unexpected characters,
/// with the offset rebased to the absolute source position.
pub fn lex_chunked(source: &str, jobs: usize) -> Result<Vec<Spanned<'_>>> {
    if jobs <= 1 || source.len() < CHUNK_MIN_SOURCE {
        return lex(source);
    }
    let bounds = chunk_boundaries(source, jobs);
    if bounds.len() < 3 {
        return lex(source);
    }
    let results: Vec<Result<Vec<Spanned<'_>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|window| {
                let base = window[0];
                let chunk = &source[base..window[1]];
                scope.spawn(move || {
                    let mut tokens = lex(chunk).map_err(|diag| diag.rebase_offset(base))?;
                    // A successful lex always ends with exactly one Eof; drop
                    // it and rebase here, on the worker, so the merge below is
                    // a plain bulk append instead of a per-token pass.
                    debug_assert!(matches!(tokens.last().map(|s| &s.token), Some(Token::Eof)));
                    tokens.pop();
                    if base != 0 {
                        for spanned in &mut tokens {
                            spanned.span.start += base;
                            spanned.span.end += base;
                        }
                    }
                    Ok(tokens)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("lexer worker panicked")).collect()
    });
    let extra: usize = results.iter().skip(1).map(|r| r.as_ref().map_or(0, Vec::len)).sum();
    let mut results = results.into_iter();
    let mut tokens = results.next().expect("bounds yield at least two chunks")?;
    tokens.reserve(extra + 1);
    for chunk_tokens in results {
        tokens.append(&mut chunk_tokens?);
    }
    let end = source.len();
    tokens.push(Spanned { token: Token::Eof, span: Span { start: end, end } });
    Ok(tokens)
}

/// Scans `source` once and returns `[0, split..., len]` where each split
/// is the byte offset just past a newline at brace depth 0 (outside
/// strings and comments), the first such newline at or beyond each
/// `i * len / jobs` target.
fn chunk_boundaries(source: &str, jobs: usize) -> Vec<usize> {
    let bytes = source.as_bytes();
    let step = source.len() / jobs;
    let mut bounds = vec![0usize];
    let mut depth = 0usize;
    let mut in_string = false;
    let mut in_comment = false;
    let mut target = step.max(1);
    let mut i = 0;
    while i < bytes.len() && bounds.len() < jobs {
        let b = bytes[i];
        if in_string {
            match b {
                // Skip the escaped byte so `\"` stays inside the string.
                b'\\' => i += 1,
                b'"' => in_string = false,
                _ => {}
            }
        } else if in_comment {
            if b == b'\n' {
                in_comment = false;
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'/' if bytes.get(i + 1) == Some(&b'/') => in_comment = true,
                b'{' => depth += 1,
                // Saturate: the lexer itself never tracks depth, so a stray
                // `}` must not poison boundary detection.
                b'}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if b == b'\n' && !in_string && depth == 0 && i + 1 >= target && i + 1 < bytes.len() {
            bounds.push(i + 1);
            target = (bounds.len() * step).max(i + 2);
        }
        i += 1;
    }
    bounds.push(source.len());
    bounds
}

fn push_simple<'s>(
    tokens: &mut Vec<Spanned<'s>>,
    token: Token<'s>,
    pos: &mut usize,
    start: usize,
) {
    *pos += 1;
    tokens.push(Spanned { token, span: Span { start, end: *pos } });
}

/// Identifiers may contain letters, digits, `_`, `$`, and (for dialect
/// qualification and value suffixes) `.` and `#`.
/// Byte-class table: `true` for bytes that may continue an identifier
/// (`[A-Za-z0-9_$.#]`). One indexed load per byte in the hottest scan.
static IDENT_CONTINUE: [bool; 256] = {
    let mut table = [false; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        table[b] = c.is_ascii_alphanumeric()
            || c == b'_'
            || c == b'$'
            || c == b'.'
            || c == b'#';
        b += 1;
    }
    table
};

fn lex_ident_text<'s>(source: &'s str, pos: &mut usize) -> &'s str {
    let bytes = source.as_bytes();
    let start = *pos;
    while *pos < bytes.len() && IDENT_CONTINUE[bytes[*pos] as usize] {
        *pos += 1;
    }
    &source[start..*pos]
}

fn lex_number<'s>(source: &'s str, pos: &mut usize, negative: bool) -> Result<Token<'s>> {
    let bytes = source.as_bytes();
    let start = *pos;
    if bytes.get(*pos) == Some(&b'0')
        && matches!(bytes.get(*pos + 1), Some(&b'x') | Some(&b'X'))
    {
        *pos += 2;
        let hex_start = *pos;
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_hexdigit() {
            *pos += 1;
        }
        let digits = &source[hex_start..*pos];
        if digits.is_empty() {
            return Err(Diagnostic::at(start, "expected hex digits after `0x`"));
        }
        let value = u128::from_str_radix(digits, 16)
            .ok()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or_else(|| Diagnostic::at(start, "hex literal out of range"))?;
        return Ok(Token::Integer { value: if negative { -value } else { value }, hex: true });
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    // Fractional part: `.` followed by a digit (a bare `.` is left for
    // dialect-qualified names and parameter paths).
    if bytes.get(*pos) == Some(&b'.') && bytes.get(*pos + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(*pos), Some(&b'e') | Some(&b'E')) {
        let mut look = *pos + 1;
        if matches!(bytes.get(look), Some(&b'+') | Some(&b'-')) {
            look += 1;
        }
        if bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            *pos = look;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
        }
    }
    let text = &source[start..*pos];
    if is_float {
        let value: f64 = text
            .parse()
            .map_err(|_| Diagnostic::at(start, format!("invalid float literal `{text}`")))?;
        Ok(Token::Float(if negative { -value } else { value }))
    } else {
        let value: i128 = text
            .parse()
            .map_err(|_| Diagnostic::at(start, format!("invalid integer literal `{text}`")))?;
        Ok(Token::Integer { value: if negative { -value } else { value }, hex: false })
    }
}

/// Lexes a string literal. The fast path — no escapes — returns a borrowed
/// slice of the source; escaped contents are unescaped into an owned copy.
fn lex_string<'s>(source: &'s str, pos: &mut usize) -> Result<Token<'s>> {
    let bytes = source.as_bytes();
    let start = *pos;
    *pos += 1; // opening quote
    let contents_start = *pos;
    // Scan ahead: an escape-free literal is a straight slice.
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                let contents = &source[contents_start..*pos];
                *pos += 1;
                return Ok(Token::Str(Cow::Borrowed(contents)));
            }
            b'\\' => break,
            _ => *pos += 1,
        }
    }
    if *pos >= bytes.len() {
        return Err(Diagnostic::at(start, "unterminated string literal"));
    }
    // Slow path: escapes present. Copy what was scanned, then unescape.
    let mut out = String::with_capacity(*pos - contents_start + 16);
    out.push_str(&source[contents_start..*pos]);
    while *pos < bytes.len() {
        let ch = bytes[*pos] as char;
        match ch {
            '"' => {
                *pos += 1;
                return Ok(Token::Str(Cow::Owned(out)));
            }
            '\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| Diagnostic::at(start, "unterminated string escape"))?
                    as char;
                *pos += 1;
                match esc {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    other => {
                        return Err(Diagnostic::at(
                            *pos - 1,
                            format!("unknown escape `\\{other}`"),
                        ))
                    }
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the full scalar.
                let s = &source[*pos..];
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Diagnostic::at(start, "unterminated string literal"))
}

// ---------------------------------------------------------------------------
// Owned token sequences
// ---------------------------------------------------------------------------

/// Token kind plus whatever payload a span into the owning text cannot
/// reconstruct for free.
#[derive(Debug, Clone, PartialEq)]
enum TokenInfo {
    /// Ident-like token; the payload (sans sigil) is a span into the text.
    Ident,
    ValueId,
    BlockId,
    SymbolRef,
    TypeRef,
    AttrRef,
    /// Numeric literals keep their parsed value.
    Integer { value: i128, hex: bool },
    Float(f64),
    /// String literal; the span covers the raw (still-escaped) contents.
    Str { escaped: bool },
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Comma,
    Colon,
    Equals,
    Arrow,
    Question,
    Star,
    Plus,
    Dot,
}

/// An owned, self-contained token sequence.
///
/// Pre-lexed once from a text fragment and retained indefinitely (format
/// specs store these for their literal chunks); [`TokenBuf::get`]
/// re-materializes borrowed [`Token`]s against the owned text, so matching
/// against a retained sequence stays allocation-free except for escaped
/// string literals (which re-unescape lazily).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TokenBuf {
    text: String,
    /// `(kind, payload span into text)` pairs; the trailing `Eof` is dropped.
    toks: Vec<(TokenInfo, Span)>,
}

impl TokenBuf {
    /// Lexes `text` into an owned token sequence (without the trailing
    /// [`Token::Eof`]).
    ///
    /// # Errors
    ///
    /// Propagates lexer diagnostics.
    pub fn lex(text: &str) -> Result<TokenBuf> {
        let mut toks = Vec::new();
        for spanned in lex(text)? {
            let Span { start, end } = spanned.span;
            let (info, payload) = match spanned.token {
                Token::Eof => continue,
                Token::Ident(_) => (TokenInfo::Ident, Span { start, end }),
                Token::ValueId(_) => (TokenInfo::ValueId, Span { start: start + 1, end }),
                Token::BlockId(_) => (TokenInfo::BlockId, Span { start: start + 1, end }),
                Token::SymbolRef(_) => (TokenInfo::SymbolRef, Span { start: start + 1, end }),
                Token::TypeRef(_) => (TokenInfo::TypeRef, Span { start: start + 1, end }),
                Token::AttrRef(_) => (TokenInfo::AttrRef, Span { start: start + 1, end }),
                Token::Integer { value, hex } => {
                    (TokenInfo::Integer { value, hex }, Span { start, end })
                }
                Token::Float(v) => (TokenInfo::Float(v), Span { start, end }),
                Token::Str(_) => {
                    // Payload: raw contents between the quotes.
                    let contents = Span { start: start + 1, end: end - 1 };
                    let escaped = text[contents.start..contents.end].contains('\\');
                    (TokenInfo::Str { escaped }, contents)
                }
                Token::LParen => (TokenInfo::LParen, spanned.span),
                Token::RParen => (TokenInfo::RParen, spanned.span),
                Token::LBrace => (TokenInfo::LBrace, spanned.span),
                Token::RBrace => (TokenInfo::RBrace, spanned.span),
                Token::LBracket => (TokenInfo::LBracket, spanned.span),
                Token::RBracket => (TokenInfo::RBracket, spanned.span),
                Token::Lt => (TokenInfo::Lt, spanned.span),
                Token::Gt => (TokenInfo::Gt, spanned.span),
                Token::Comma => (TokenInfo::Comma, spanned.span),
                Token::Colon => (TokenInfo::Colon, spanned.span),
                Token::Equals => (TokenInfo::Equals, spanned.span),
                Token::Arrow => (TokenInfo::Arrow, spanned.span),
                Token::Question => (TokenInfo::Question, spanned.span),
                Token::Star => (TokenInfo::Star, spanned.span),
                Token::Plus => (TokenInfo::Plus, spanned.span),
                Token::Dot => (TokenInfo::Dot, spanned.span),
            };
            toks.push((info, payload));
        }
        Ok(TokenBuf { text: text.to_string(), toks })
    }

    /// The original text this sequence was lexed from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of tokens (the trailing `Eof` is not stored).
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Returns `true` if the sequence holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Re-materializes token `i` as a [`Token`] borrowing from this buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Token<'_> {
        let (info, span) = &self.toks[i];
        let payload = || &self.text[span.start..span.end];
        match info {
            TokenInfo::Ident => Token::Ident(payload()),
            TokenInfo::ValueId => Token::ValueId(payload()),
            TokenInfo::BlockId => Token::BlockId(payload()),
            TokenInfo::SymbolRef => Token::SymbolRef(payload()),
            TokenInfo::TypeRef => Token::TypeRef(payload()),
            TokenInfo::AttrRef => Token::AttrRef(payload()),
            TokenInfo::Integer { value, hex } => Token::Integer { value: *value, hex: *hex },
            TokenInfo::Float(v) => Token::Float(*v),
            TokenInfo::Str { escaped: false } => Token::Str(Cow::Borrowed(payload())),
            TokenInfo::Str { escaped: true } => {
                let mut out = String::with_capacity(span.end - span.start);
                let mut chars = payload().chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some(other) => out.push(other),
                            None => break,
                        }
                    } else {
                        out.push(c);
                    }
                }
                Token::Str(Cow::Owned(out))
            }
            TokenInfo::LParen => Token::LParen,
            TokenInfo::RParen => Token::RParen,
            TokenInfo::LBrace => Token::LBrace,
            TokenInfo::RBrace => Token::RBrace,
            TokenInfo::LBracket => Token::LBracket,
            TokenInfo::RBracket => Token::RBracket,
            TokenInfo::Lt => Token::Lt,
            TokenInfo::Gt => Token::Gt,
            TokenInfo::Comma => Token::Comma,
            TokenInfo::Colon => Token::Colon,
            TokenInfo::Equals => Token::Equals,
            TokenInfo::Arrow => Token::Arrow,
            TokenInfo::Question => Token::Question,
            TokenInfo::Star => Token::Star,
            TokenInfo::Plus => Token::Plus,
            TokenInfo::Dot => Token::Dot,
        }
    }

    /// Iterates over re-materialized borrowed tokens.
    pub fn iter(&self) -> impl Iterator<Item = Token<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Token<'_>> {
        lex(source).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_basic_op() {
        let toks = kinds("%0 = \"cmath.mul\"(%a, %b) : (f32) -> f32");
        assert_eq!(
            toks,
            vec![
                Token::ValueId("0"),
                Token::Equals,
                Token::Str("cmath.mul".into()),
                Token::LParen,
                Token::ValueId("a"),
                Token::Comma,
                Token::ValueId("b"),
                Token::RParen,
                Token::Colon,
                Token::LParen,
                Token::Ident("f32"),
                Token::RParen,
                Token::Arrow,
                Token::Ident("f32"),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 -7 1.5 -2.5e10 0x1F"),
            vec![
                Token::Integer { value: 42, hex: false },
                Token::Integer { value: -7, hex: false },
                Token::Float(1.5),
                Token::Float(-2.5e10),
                Token::Integer { value: 0x1F, hex: true },
                Token::Eof,
            ]
        );
    }

    #[test]
    fn negative_hex_literals() {
        assert_eq!(
            kinds("-0x1F"),
            vec![Token::Integer { value: -0x1F, hex: true }, Token::Eof]
        );
    }

    #[test]
    fn oversized_hex_literal_is_an_error() {
        // 33 hex digits: exceeds i128.
        assert!(lex("0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF").is_err());
    }

    #[test]
    fn lex_sigils() {
        assert_eq!(
            kinds("!cmath.complex #foo.bar ^bb0 @main"),
            vec![
                Token::TypeRef("cmath.complex"),
                Token::AttrRef("foo.bar"),
                Token::BlockId("bb0"),
                Token::SymbolRef("main"),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n\\c""#),
            vec![Token::Str("a\"b\n\\c".into()), Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\nb"),
            vec![Token::Ident("a"), Token::Ident("b"), Token::Eof]
        );
    }

    #[test]
    fn value_id_with_result_number() {
        assert_eq!(kinds("%x#1"), vec![Token::ValueId("x#1"), Token::Eof]);
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn dot_after_integer_stays_separate() {
        // `1.foo` is Integer(1), Dot, Ident — needed for parameter paths.
        assert_eq!(
            kinds("1.x"),
            vec![Token::Integer { value: 1, hex: false }, Token::Dot, Token::Ident("x"), Token::Eof]
        );
    }

    // ----- Zero-copy guarantees --------------------------------------------

    #[test]
    fn spans_cover_token_text() {
        let source = "%abc = foo.bar !t<0x1F, \"s\"> // tail";
        let toks = lex(source).unwrap();
        let texts: Vec<&str> = toks.iter().map(|s| s.span.text(source)).collect();
        assert_eq!(
            texts,
            vec!["%abc", "=", "foo.bar", "!t", "<", "0x1F", ",", "\"s\"", ">", ""]
        );
    }

    #[test]
    fn ident_payloads_are_source_slices() {
        let source = "%val ^blk @sym !ty #at name";
        for spanned in lex(source).unwrap() {
            let payload = match spanned.token {
                Token::ValueId(s)
                | Token::BlockId(s)
                | Token::SymbolRef(s)
                | Token::TypeRef(s)
                | Token::AttrRef(s)
                | Token::Ident(s) => s,
                _ => continue,
            };
            // The payload must literally be a sub-slice of the source buffer.
            let src_range = source.as_bytes().as_ptr_range();
            let pay_range = payload.as_bytes().as_ptr_range();
            assert!(src_range.start <= pay_range.start && pay_range.end <= src_range.end);
            // And the span (minus any sigil) must point at the same text.
            let text = spanned.span.text(source);
            assert!(text.ends_with(payload), "{text} should end with {payload}");
        }
    }

    #[test]
    fn escape_free_strings_borrow() {
        let toks = lex(r#""plain text""#).unwrap();
        match &toks[0].token {
            Token::Str(Cow::Borrowed(s)) => assert_eq!(*s, "plain text"),
            other => panic!("expected borrowed Str, got {other:?}"),
        }
    }

    #[test]
    fn escaped_strings_own() {
        let toks = lex(r#""a\tb""#).unwrap();
        match &toks[0].token {
            Token::Str(Cow::Owned(s)) => assert_eq!(s, "a\tb"),
            other => panic!("expected owned Str, got {other:?}"),
        }
    }

    #[test]
    fn hex_literal_span_includes_prefix() {
        let source = "0xFF";
        let toks = lex(source).unwrap();
        assert_eq!(toks[0].span, Span { start: 0, end: 4 });
        assert_eq!(toks[0].span.text(source), "0xFF");
        assert_eq!(toks[0].token, Token::Integer { value: 255, hex: true });
    }

    #[test]
    fn string_span_includes_quotes() {
        let source = r#"x "a\nb" y"#;
        let toks = lex(source).unwrap();
        assert_eq!(toks[1].span.text(source), r#""a\nb""#);
        assert_eq!(toks[1].token, Token::Str("a\nb".into()));
    }

    // ----- Chunked lexing ---------------------------------------------------

    /// A source big enough to clear the chunked-lex threshold, full of
    /// boundary hazards: strings containing newlines, braces, and `//`;
    /// comments containing braces and quotes; nested brace regions.
    fn tricky_source() -> String {
        let mut src = String::new();
        for i in 0..300 {
            src.push_str(&format!(
                "%v{i} = \"d.op\"() {{ s = \"br{{ace \\\" // not a comment\n}}quote\" }} : () -> f32\n"
            ));
            src.push_str("// comment with { braces } and \"quotes\"\n");
            src.push_str(&format!("block{i} {{\n  inner {{ %x{i} = foo() : () -> f32 }}\n}}\n"));
        }
        src
    }

    #[test]
    fn chunked_lex_matches_whole_lex() {
        let src = tricky_source();
        assert!(src.len() >= CHUNK_MIN_SOURCE);
        let whole = lex(&src).unwrap();
        for jobs in [2, 3, 8] {
            let chunked = lex_chunked(&src, jobs).unwrap();
            assert_eq!(chunked, whole, "jobs={jobs}");
        }
    }

    #[test]
    fn chunked_lex_falls_back_on_small_input() {
        let src = "%a = foo() : () -> f32";
        assert_eq!(lex_chunked(src, 8).unwrap(), lex(src).unwrap());
    }

    #[test]
    fn chunked_lex_rebases_error_offsets() {
        // Put a lex error (stray backtick) far past the first chunk target.
        let mut src = String::new();
        for _ in 0..600 {
            src.push_str("%v = foo() : () -> f32\n");
        }
        let bad_at = src.len();
        src.push('`');
        let whole_err = lex(&src).unwrap_err();
        let chunked_err = lex_chunked(&src, 4).unwrap_err();
        assert_eq!(whole_err.offset(), Some(bad_at));
        assert_eq!(chunked_err.offset(), whole_err.offset());
        assert_eq!(chunked_err.message(), whole_err.message());
    }

    #[test]
    fn chunk_boundaries_respect_strings_and_braces() {
        let src = tricky_source();
        let bounds = chunk_boundaries(&src, 4);
        assert!(bounds.len() > 2, "expected splits, got {bounds:?}");
        for &b in &bounds[1..bounds.len() - 1] {
            // Every split lands just past a newline...
            assert_eq!(src.as_bytes()[b - 1], b'\n', "split {b} not after newline");
            // ...and the prefix up to it has balanced braces (depth 0).
            let prefix = &src[..b];
            let depth = prefix.matches('{').count() as isize - prefix.matches('}').count() as isize;
            // Braces inside strings/comments don't count for the lexer, but
            // the tricky source keeps them paired inside each line, so raw
            // counting is a valid cross-check here.
            assert_eq!(depth, 0, "split {b} at nonzero depth");
        }
    }

    // ----- TokenBuf ---------------------------------------------------------

    #[test]
    fn token_buf_roundtrips() {
        let text = "foo (%x) : 42 -> \"lit\" 1.5 !t";
        let buf = TokenBuf::lex(text).unwrap();
        let direct: Vec<Token<'_>> = lex(text)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .filter(|t| *t != Token::Eof)
            .collect();
        let rebuilt: Vec<Token<'_>> = buf.iter().collect();
        assert_eq!(rebuilt, direct);
    }

    #[test]
    fn token_buf_unescapes_lazily() {
        let buf = TokenBuf::lex(r#""a\"b""#).unwrap();
        assert_eq!(buf.get(0), Token::Str("a\"b".into()));
    }

    #[test]
    fn token_buf_reports_lex_errors() {
        assert!(TokenBuf::lex("\"unterminated").is_err());
    }
}
