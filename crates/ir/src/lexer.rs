//! Lexer for the generic IR textual format.
//!
//! The same token stream serves the generic parser and dialect-defined
//! custom syntax hooks. Comments run from `//` to end of line.

use crate::diag::{Diagnostic, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (may contain `.`, `_`, `$`, digits).
    Ident(String),
    /// `%name` SSA value id (payload excludes the sigil).
    ValueId(String),
    /// `^name` block label (payload excludes the sigil).
    BlockId(String),
    /// `@name` symbol reference (payload excludes the sigil).
    SymbolRef(String),
    /// `!name` type reference (payload excludes the sigil).
    TypeRef(String),
    /// `#name` attribute reference (payload excludes the sigil).
    AttrRef(String),
    /// Integer literal. `hex` records whether it was written as `0x...`.
    Integer {
        /// Parsed value.
        value: i128,
        /// Whether the literal was hexadecimal (used for float bit patterns).
        hex: bool,
    },
    /// Floating-point literal.
    Float(f64),
    /// String literal (unescaped payload).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `.`
    Dot,
    /// End of input.
    Eof,
}

impl Token {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::ValueId(s) => format!("`%{s}`"),
            Token::BlockId(s) => format!("`^{s}`"),
            Token::SymbolRef(s) => format!("`@{s}`"),
            Token::TypeRef(s) => format!("`!{s}`"),
            Token::AttrRef(s) => format!("`#{s}`"),
            Token::Integer { value, .. } => format!("`{value}`"),
            Token::Float(v) => format!("`{v}`"),
            Token::Str(s) => format!("\"{s}\""),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LBracket => "`[`".into(),
            Token::RBracket => "`]`".into(),
            Token::Lt => "`<`".into(),
            Token::Gt => "`>`".into(),
            Token::Comma => "`,`".into(),
            Token::Colon => "`:`".into(),
            Token::Equals => "`=`".into(),
            Token::Arrow => "`->`".into(),
            Token::Question => "`?`".into(),
            Token::Star => "`*`".into(),
            Token::Plus => "`+`".into(),
            Token::Dot => "`.`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub offset: usize,
}

/// Tokenizes `source` into a vector ending with [`Token::Eof`].
///
/// # Errors
///
/// Returns a diagnostic on malformed literals or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let start = pos;
        let ch = bytes[pos] as char;
        match ch {
            ' ' | '\t' | '\r' | '\n' => {
                pos += 1;
            }
            '/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            '(' => push_simple(&mut tokens, Token::LParen, &mut pos, start),
            ')' => push_simple(&mut tokens, Token::RParen, &mut pos, start),
            '{' => push_simple(&mut tokens, Token::LBrace, &mut pos, start),
            '}' => push_simple(&mut tokens, Token::RBrace, &mut pos, start),
            '[' => push_simple(&mut tokens, Token::LBracket, &mut pos, start),
            ']' => push_simple(&mut tokens, Token::RBracket, &mut pos, start),
            '<' => push_simple(&mut tokens, Token::Lt, &mut pos, start),
            '>' => push_simple(&mut tokens, Token::Gt, &mut pos, start),
            ',' => push_simple(&mut tokens, Token::Comma, &mut pos, start),
            ':' => push_simple(&mut tokens, Token::Colon, &mut pos, start),
            '=' => push_simple(&mut tokens, Token::Equals, &mut pos, start),
            '?' => push_simple(&mut tokens, Token::Question, &mut pos, start),
            '*' => push_simple(&mut tokens, Token::Star, &mut pos, start),
            '+' => push_simple(&mut tokens, Token::Plus, &mut pos, start),
            '.' => push_simple(&mut tokens, Token::Dot, &mut pos, start),
            '-' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    tokens.push(Spanned { token: Token::Arrow, offset: start });
                } else if bytes.get(pos + 1).is_some_and(|b| b.is_ascii_digit()) {
                    pos += 1;
                    let tok = lex_number(source, &mut pos, true)?;
                    tokens.push(Spanned { token: tok, offset: start });
                } else {
                    return Err(Diagnostic::at(start, "unexpected `-`"));
                }
            }
            '"' => {
                let tok = lex_string(source, &mut pos)?;
                tokens.push(Spanned { token: tok, offset: start });
            }
            '%' | '^' | '@' | '!' | '#' => {
                pos += 1;
                let ident = lex_ident_text(source, &mut pos);
                if ident.is_empty() {
                    return Err(Diagnostic::at(start, format!("expected identifier after `{ch}`")));
                }
                let token = match ch {
                    '%' => Token::ValueId(ident),
                    '^' => Token::BlockId(ident),
                    '@' => Token::SymbolRef(ident),
                    '!' => Token::TypeRef(ident),
                    _ => Token::AttrRef(ident),
                };
                tokens.push(Spanned { token, offset: start });
            }
            c if c.is_ascii_digit() => {
                let tok = lex_number(source, &mut pos, false)?;
                tokens.push(Spanned { token: tok, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let ident = lex_ident_text(source, &mut pos);
                tokens.push(Spanned { token: Token::Ident(ident), offset: start });
            }
            other => {
                return Err(Diagnostic::at(start, format!("unexpected character `{other}`")));
            }
        }
    }
    tokens.push(Spanned { token: Token::Eof, offset: source.len() });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Spanned>, token: Token, pos: &mut usize, start: usize) {
    *pos += 1;
    tokens.push(Spanned { token, offset: start });
}

/// Identifiers may contain letters, digits, `_`, `$`, and (for dialect
/// qualification and value suffixes) `.` and `#`.
fn lex_ident_text(source: &str, pos: &mut usize) -> String {
    let bytes = source.as_bytes();
    let start = *pos;
    while *pos < bytes.len() {
        let b = bytes[*pos] as char;
        if b.is_ascii_alphanumeric() || b == '_' || b == '$' || b == '.' || b == '#' {
            *pos += 1;
        } else {
            break;
        }
    }
    source[start..*pos].to_string()
}

fn lex_number(source: &str, pos: &mut usize, negative: bool) -> Result<Token> {
    let bytes = source.as_bytes();
    let start = *pos;
    if bytes.get(*pos) == Some(&b'0')
        && matches!(bytes.get(*pos + 1), Some(&b'x') | Some(&b'X'))
    {
        *pos += 2;
        let hex_start = *pos;
        while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_hexdigit() {
            *pos += 1;
        }
        let digits = &source[hex_start..*pos];
        if digits.is_empty() {
            return Err(Diagnostic::at(start, "expected hex digits after `0x`"));
        }
        let value = u128::from_str_radix(digits, 16)
            .ok()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or_else(|| Diagnostic::at(start, "hex literal out of range"))?;
        return Ok(Token::Integer { value: if negative { -value } else { value }, hex: true });
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    // Fractional part: `.` followed by a digit (a bare `.` is left for
    // dialect-qualified names and parameter paths).
    if bytes.get(*pos) == Some(&b'.') && bytes.get(*pos + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(*pos), Some(&b'e') | Some(&b'E')) {
        let mut look = *pos + 1;
        if matches!(bytes.get(look), Some(&b'+') | Some(&b'-')) {
            look += 1;
        }
        if bytes.get(look).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            *pos = look;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
        }
    }
    let text = &source[start..*pos];
    if is_float {
        let value: f64 = text
            .parse()
            .map_err(|_| Diagnostic::at(start, format!("invalid float literal `{text}`")))?;
        Ok(Token::Float(if negative { -value } else { value }))
    } else {
        let value: i128 = text
            .parse()
            .map_err(|_| Diagnostic::at(start, format!("invalid integer literal `{text}`")))?;
        Ok(Token::Integer { value: if negative { -value } else { value }, hex: false })
    }
}

fn lex_string(source: &str, pos: &mut usize) -> Result<Token> {
    let bytes = source.as_bytes();
    let start = *pos;
    *pos += 1; // opening quote
    let mut out = String::new();
    while *pos < bytes.len() {
        let ch = bytes[*pos] as char;
        match ch {
            '"' => {
                *pos += 1;
                return Ok(Token::Str(out));
            }
            '\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| Diagnostic::at(start, "unterminated string escape"))?
                    as char;
                *pos += 1;
                match esc {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    other => {
                        return Err(Diagnostic::at(
                            *pos - 1,
                            format!("unknown escape `\\{other}`"),
                        ))
                    }
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the full scalar.
                let s = &source[*pos..];
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Diagnostic::at(start, "unterminated string literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Token> {
        lex(source).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_basic_op() {
        let toks = kinds("%0 = \"cmath.mul\"(%a, %b) : (f32) -> f32");
        assert_eq!(
            toks,
            vec![
                Token::ValueId("0".into()),
                Token::Equals,
                Token::Str("cmath.mul".into()),
                Token::LParen,
                Token::ValueId("a".into()),
                Token::Comma,
                Token::ValueId("b".into()),
                Token::RParen,
                Token::Colon,
                Token::LParen,
                Token::Ident("f32".into()),
                Token::RParen,
                Token::Arrow,
                Token::Ident("f32".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 -7 1.5 -2.5e10 0x1F"),
            vec![
                Token::Integer { value: 42, hex: false },
                Token::Integer { value: -7, hex: false },
                Token::Float(1.5),
                Token::Float(-2.5e10),
                Token::Integer { value: 0x1F, hex: true },
                Token::Eof,
            ]
        );
    }

    #[test]
    fn negative_hex_literals() {
        assert_eq!(
            kinds("-0x1F"),
            vec![Token::Integer { value: -0x1F, hex: true }, Token::Eof]
        );
    }

    #[test]
    fn oversized_hex_literal_is_an_error() {
        // 33 hex digits: exceeds i128.
        assert!(lex("0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF").is_err());
    }

    #[test]
    fn lex_sigils() {
        assert_eq!(
            kinds("!cmath.complex #foo.bar ^bb0 @main"),
            vec![
                Token::TypeRef("cmath.complex".into()),
                Token::AttrRef("foo.bar".into()),
                Token::BlockId("bb0".into()),
                Token::SymbolRef("main".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n\\c""#),
            vec![Token::Str("a\"b\n\\c".into()), Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\nb"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Eof]
        );
    }

    #[test]
    fn value_id_with_result_number() {
        assert_eq!(
            kinds("%x#1"),
            vec![Token::ValueId("x#1".into()), Token::Eof]
        );
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn dot_after_integer_stays_separate() {
        // `1.foo` is Integer(1), Dot, Ident — needed for parameter paths.
        assert_eq!(
            kinds("1.x"),
            vec![Token::Integer { value: 1, hex: false }, Token::Dot, Token::Ident("x".into()), Token::Eof]
        );
    }
}
