//! Basic blocks: ordered operation sequences with typed arguments.

use crate::context::Context;
use crate::entity::entity_handle;
use crate::op::OpRef;
use crate::region::RegionRef;
use crate::types::Type;
use crate::value::{Use, Value};

entity_handle! {
    /// A handle to a basic block stored in a [`Context`].
    BlockRef
}

/// The payload of a basic block.
#[derive(Debug, Clone, Default)]
pub struct BlockData {
    pub(crate) arg_types: Vec<Type>,
    /// Head of each block argument's use-chain (parallel to `arg_types`);
    /// the chain itself is threaded through user operand slots.
    pub(crate) arg_first_use: Vec<Option<Use>>,
    pub(crate) ops: Vec<OpRef>,
    pub(crate) parent: Option<RegionRef>,
}

impl BlockRef {
    /// The block argument types, in order.
    pub fn arg_types(self, ctx: &Context) -> &[Type] {
        &ctx.block_data(self).arg_types
    }

    /// The `i`-th block argument value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn arg(self, ctx: &Context, i: usize) -> Value {
        assert!(i < self.num_args(ctx), "block argument index out of bounds");
        Value::BlockArg { block: self, index: i as u32 }
    }

    /// All block argument values.
    pub fn args(self, ctx: &Context) -> Vec<Value> {
        (0..self.num_args(ctx))
            .map(|i| Value::BlockArg { block: self, index: i as u32 })
            .collect()
    }

    /// Number of block arguments.
    pub fn num_args(self, ctx: &Context) -> usize {
        ctx.block_data(self).arg_types.len()
    }

    /// The operations in the block, in order.
    pub fn ops(self, ctx: &Context) -> &[OpRef] {
        &ctx.block_data(self).ops
    }

    /// The first operation, if any.
    pub fn first_op(self, ctx: &Context) -> Option<OpRef> {
        ctx.block_data(self).ops.first().copied()
    }

    /// The last operation, if any (the terminator in a well-formed CFG).
    pub fn last_op(self, ctx: &Context) -> Option<OpRef> {
        ctx.block_data(self).ops.last().copied()
    }

    /// The terminator: the last operation, when it is registered as one.
    pub fn terminator(self, ctx: &Context) -> Option<OpRef> {
        let last = self.last_op(ctx)?;
        ctx.is_terminator(last).then_some(last)
    }

    /// The region containing this block, if attached.
    pub fn parent_region(self, ctx: &Context) -> Option<RegionRef> {
        ctx.block_data(self).parent
    }

    /// The operation owning the region containing this block.
    pub fn parent_op(self, ctx: &Context) -> Option<OpRef> {
        self.parent_region(ctx)?.parent_op(ctx)
    }

    /// Returns `true` if this block is still live in the context.
    pub fn is_live(self, ctx: &Context) -> bool {
        ctx.block_is_live(self)
    }
}

impl Context {
    /// Creates a detached block with the given argument types.
    pub fn create_block(&mut self, arg_types: impl IntoIterator<Item = Type>) -> BlockRef {
        let arg_types: Vec<Type> = arg_types.into_iter().collect();
        let arg_first_use = vec![None; arg_types.len()];
        BlockRef(self.blocks_mut().alloc(BlockData {
            arg_types,
            arg_first_use,
            ops: Vec::new(),
            parent: None,
        }))
    }

    /// Appends a block argument of type `ty`, returning the new value.
    pub fn add_block_arg(&mut self, block: BlockRef, ty: Type) -> Value {
        let data = self.block_data_mut(block);
        data.arg_types.push(ty);
        data.arg_first_use.push(None);
        Value::BlockArg { block, index: (data.arg_types.len() - 1) as u32 }
    }

    /// Appends `block` at the end of `region`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already attached to a region.
    pub fn append_block(&mut self, region: RegionRef, block: BlockRef) {
        assert!(self.block_data(block).parent.is_none(), "block already attached");
        self.region_data_mut(region).blocks.push(block);
        self.block_data_mut(block).parent = Some(region);
    }

    /// Inserts `block` after `anchor` within `anchor`'s region.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is detached or `block` is already attached.
    pub fn insert_block_after(&mut self, anchor: BlockRef, block: BlockRef) {
        assert!(self.block_data(block).parent.is_none(), "block already attached");
        let region = self.block_data(anchor).parent.expect("anchor block is detached");
        let pos = {
            let blocks = &self.region_data(region).blocks;
            blocks.iter().position(|b| *b == anchor).expect("anchor not in its region")
        };
        self.region_data_mut(region).blocks.insert(pos + 1, block);
        self.block_data_mut(block).parent = Some(region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperationState;

    #[test]
    fn block_arg_growth() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        let f32 = ctx.f32_type();
        let block = ctx.create_block([i32]);
        assert_eq!(block.num_args(&ctx), 1);
        let v = ctx.add_block_arg(block, f32);
        assert_eq!(block.num_args(&ctx), 2);
        assert_eq!(v.ty(&ctx), f32);
    }

    #[test]
    fn blocks_attach_to_regions() {
        let mut ctx = Context::new();
        let region = ctx.create_region();
        let entry = ctx.create_block([]);
        let b1 = ctx.create_block([]);
        let b2 = ctx.create_block([]);
        ctx.append_block(region, entry);
        ctx.append_block(region, b2);
        ctx.insert_block_after(entry, b1);
        assert_eq!(region.blocks(&ctx), &[entry, b1, b2]);
        assert_eq!(b1.parent_region(&ctx), Some(region));
    }

    #[test]
    fn terminator_detection_uses_registry() {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let other = ctx.create_block([]);
        // Unregistered op with successors is treated as a terminator.
        let name = ctx.op_name("test", "br");
        let br = ctx.create_op(OperationState::new(name).add_successors([other]));
        ctx.append_op(block, br);
        assert_eq!(block.terminator(&ctx), Some(br));
    }
}
