//! A small, fast, non-cryptographic hasher for the context's internal
//! tables.
//!
//! Interning (symbols, types, attributes) and registry lookups hash on
//! every operation parsed or decoded, so the default SipHash — designed to
//! resist hash-flooding from untrusted keys — costs real throughput here.
//! These tables are in-process and bounded by the IR being built, so the
//! classic multiply-rotate-xor scheme (as used by rustc's `FxHasher`) is
//! the right trade: a few cycles per word, no DoS resistance.
//!
//! Not suitable for tables keyed directly by untrusted external input.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate-xor hasher; see the module docs for the contract.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// Odd multiplier with well-distributed bits (2^64 / golden ratio).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Fold the tail length in so prefixes don't collide trivially.
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FastHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(b"cmath"), hash_of(b"cmath"));
        assert_ne!(hash_of(b"cmath"), hash_of(b"cmatj"));
        // Tail-length folding: a prefix must not hash like its extension.
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(&[0u8; 3]), hash_of(&[0u8; 4]));
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut map: FastMap<String, u32> = FastMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));
        let build: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        assert_eq!(build.hash_one("x"), build.hash_one("x"));
    }
}
