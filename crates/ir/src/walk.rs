//! IR traversal helpers.

use crate::block::BlockRef;
use crate::context::Context;
use crate::op::OpRef;
use crate::region::RegionRef;

/// Controls continuation of a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkResult {
    /// Continue into nested regions.
    Advance,
    /// Skip the current operation's regions but continue the walk.
    Skip,
    /// Stop the whole walk.
    Interrupt,
}

/// Walks `root` and every operation nested inside it, pre-order.
///
/// The callback decides whether to descend ([`WalkResult::Advance`]), skip
/// the op's regions ([`WalkResult::Skip`]), or abort
/// ([`WalkResult::Interrupt`]). Returns `true` if the walk ran to
/// completion.
pub fn walk_ops(
    ctx: &Context,
    root: OpRef,
    callback: &mut impl FnMut(&Context, OpRef) -> WalkResult,
) -> bool {
    match callback(ctx, root) {
        WalkResult::Interrupt => return false,
        WalkResult::Skip => return true,
        WalkResult::Advance => {}
    }
    for &region in root.regions(ctx) {
        if !walk_region(ctx, region, callback) {
            return false;
        }
    }
    true
}

/// Walks every operation in `region`, pre-order.
pub fn walk_region(
    ctx: &Context,
    region: RegionRef,
    callback: &mut impl FnMut(&Context, OpRef) -> WalkResult,
) -> bool {
    for &block in region.blocks(ctx) {
        if !walk_block(ctx, block, callback) {
            return false;
        }
    }
    true
}

/// Walks every operation in `block`, pre-order.
pub fn walk_block(
    ctx: &Context,
    block: BlockRef,
    callback: &mut impl FnMut(&Context, OpRef) -> WalkResult,
) -> bool {
    for &op in block.ops(ctx) {
        if !walk_ops(ctx, op, callback) {
            return false;
        }
    }
    true
}

/// Counts the operations nested in (and including) `root`, stopping as
/// soon as the count reaches `cap`.
///
/// The parallel verifier's partitioner uses this to classify subtrees as
/// "small enough to verify inline" without paying a full walk of large
/// ones: a call costs at most `cap` visits regardless of subtree size.
pub fn count_ops_capped(ctx: &Context, root: OpRef, cap: usize) -> usize {
    let mut count = 0;
    walk_ops(ctx, root, &mut |_, _| {
        count += 1;
        if count >= cap {
            WalkResult::Interrupt
        } else {
            WalkResult::Advance
        }
    });
    count
}

/// Collects all operations nested in (and including) `root`, pre-order.
pub fn collect_ops(ctx: &Context, root: OpRef) -> Vec<OpRef> {
    let mut out = Vec::new();
    walk_ops(ctx, root, &mut |_, op| {
        out.push(op);
        WalkResult::Advance
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    fn build_nest(ctx: &mut Context) -> OpRef {
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let (region, inner_block) = ctx.create_region_with_entry([]);
        let outer_name = ctx.op_name("test", "outer");
        let inner_name = ctx.op_name("test", "inner");
        let inner = ctx.create_op(OperationState::new(inner_name));
        ctx.append_op(inner_block, inner);
        let outer = ctx.create_op(OperationState::new(outer_name).add_regions([region]));
        ctx.append_op(block, outer);
        module
    }

    #[test]
    fn preorder_walk_visits_nested_ops() {
        let mut ctx = Context::new();
        let module = build_nest(&mut ctx);
        let names: Vec<String> = collect_ops(&ctx, module)
            .iter()
            .map(|op| op.name(&ctx).display(&ctx))
            .collect();
        assert_eq!(names, ["builtin.module", "test.outer", "test.inner"]);
    }

    #[test]
    fn skip_avoids_regions() {
        let mut ctx = Context::new();
        let module = build_nest(&mut ctx);
        let mut names = Vec::new();
        walk_ops(&ctx, module, &mut |ctx, op| {
            let name = op.name(ctx).display(ctx);
            let skip = name == "test.outer";
            names.push(name);
            if skip {
                WalkResult::Skip
            } else {
                WalkResult::Advance
            }
        });
        assert_eq!(names, ["builtin.module", "test.outer"]);
    }

    #[test]
    fn interrupt_stops_walk() {
        let mut ctx = Context::new();
        let module = build_nest(&mut ctx);
        let mut count = 0;
        let completed = walk_ops(&ctx, module, &mut |_, _| {
            count += 1;
            WalkResult::Interrupt
        });
        assert!(!completed);
        assert_eq!(count, 1);
    }
}
