//! Types: interned, immutable, structurally uniqued.
//!
//! The builtin type system mirrors MLIR's: parameterless scalars (`index`,
//! floats), parameterized integers (`i32` / `si32` / `ui32`), function types,
//! and shaped container types (`vector` / `tensor` / `memref`). Everything
//! else is a [`TypeData::Parametric`] type belonging to a dialect, with its
//! parameters encoded as [`Attribute`]s — the representation the IRDL
//! compiler targets when registering `Type` definitions dynamically.

use crate::attrs::Attribute;
use crate::context::Context;
use crate::entity::entity_handle;
use crate::symbol::Symbol;

entity_handle! {
    /// A handle to an interned type. Equality is structural equality.
    Type
}

/// Signedness of a builtin integer type (MLIR-style: `i32`, `si32`, `ui32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signedness {
    /// Sign-agnostic (`i32`): the interpretation is up to operations.
    Signless,
    /// Signed (`si32`).
    Signed,
    /// Unsigned (`ui32`).
    Unsigned,
}

impl Signedness {
    /// The textual prefix used in the builtin syntax (``/`s`/`u`).
    pub fn prefix(self) -> &'static str {
        match self {
            Signedness::Signless => "",
            Signedness::Signed => "s",
            Signedness::Unsigned => "u",
        }
    }
}

/// Builtin floating-point formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatKind {
    /// bfloat16.
    BF16,
    /// IEEE 754 half precision.
    F16,
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 double precision.
    F64,
}

impl FloatKind {
    /// Bit width of the format.
    pub fn bit_width(self) -> u32 {
        match self {
            FloatKind::BF16 | FloatKind::F16 => 16,
            FloatKind::F32 => 32,
            FloatKind::F64 => 64,
        }
    }

    /// The builtin type keyword (`f32`, `bf16`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            FloatKind::BF16 => "bf16",
            FloatKind::F16 => "f16",
            FloatKind::F32 => "f32",
            FloatKind::F64 => "f64",
        }
    }
}

/// The structural payload of a [`Type`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeData {
    /// Builtin integer, e.g. `i1`, `si8`, `ui64`.
    Integer {
        /// Bit width (1..=128 in practice; unchecked here).
        width: u32,
        /// Signed, unsigned, or signless.
        signedness: Signedness,
    },
    /// Builtin float, e.g. `f32`.
    Float(FloatKind),
    /// The platform-width `index` type.
    Index,
    /// A function type `(inputs) -> (results)`.
    Function {
        /// Argument types.
        inputs: Vec<Type>,
        /// Result types.
        results: Vec<Type>,
    },
    /// Builtin fixed-shape vector, e.g. `vector<4x8xf32>`.
    Vector {
        /// Static dimensions (all strictly positive).
        dims: Vec<u64>,
        /// Element type.
        elem: Type,
    },
    /// Builtin tensor with optional dynamic dims, e.g. `tensor<?x4xf32>`.
    Tensor {
        /// Dimensions; `-1` encodes a dynamic extent (`?`).
        dims: Vec<i64>,
        /// Element type.
        elem: Type,
    },
    /// Builtin memref (buffer) type, e.g. `memref<16x16xf32>`.
    MemRef {
        /// Dimensions; `-1` encodes a dynamic extent (`?`).
        dims: Vec<i64>,
        /// Element type.
        elem: Type,
    },
    /// A dialect-defined parametric type such as `!cmath.complex<f32>`.
    ///
    /// Parameters are attributes (types are wrapped in
    /// [`AttrData::TypeAttr`](crate::attrs::AttrData::TypeAttr)), matching
    /// the IRDL model where type parameters hold arbitrary static data.
    Parametric {
        /// Owning dialect name.
        dialect: Symbol,
        /// Type name within the dialect.
        name: Symbol,
        /// Parameter values.
        params: Vec<Attribute>,
    },
}

impl Type {
    /// Returns the structural payload of this type.
    pub fn data(self, ctx: &Context) -> &TypeData {
        ctx.type_data(self)
    }

    /// Returns `true` if this is a builtin integer type.
    pub fn is_integer(self, ctx: &Context) -> bool {
        matches!(self.data(ctx), TypeData::Integer { .. })
    }

    /// Returns `true` if this is a builtin float type.
    pub fn is_float(self, ctx: &Context) -> bool {
        matches!(self.data(ctx), TypeData::Float(_))
    }

    /// Returns the `(dialect, name)` pair for parametric types.
    pub fn parametric_name(self, ctx: &Context) -> Option<(Symbol, Symbol)> {
        match self.data(ctx) {
            TypeData::Parametric { dialect, name, .. } => Some((*dialect, *name)),
            _ => None,
        }
    }

    /// Returns the parameters of a parametric type (empty otherwise).
    pub fn params(self, ctx: &Context) -> &[Attribute] {
        match self.data(ctx) {
            TypeData::Parametric { params, .. } => params,
            _ => &[],
        }
    }

    /// Renders the type in the generic textual syntax (e.g. `!cmath.complex<f32>`).
    pub fn display(self, ctx: &Context) -> String {
        crate::print::type_to_string(ctx, self)
    }
}

impl Context {
    /// Interns an arbitrary [`TypeData`], without running dialect verifiers.
    ///
    /// Prefer the typed constructors ([`Context::int_type`],
    /// [`Context::parametric_type`], ...) which validate their inputs.
    pub fn intern_type(&mut self, data: TypeData) -> Type {
        Type(self.types_mut().intern(data))
    }

    /// The signless integer type `i<width>`.
    pub fn int_type(&mut self, width: u32) -> Type {
        self.intern_type(TypeData::Integer { width, signedness: Signedness::Signless })
    }

    /// An integer type with explicit signedness.
    pub fn int_type_with_signedness(&mut self, width: u32, signedness: Signedness) -> Type {
        self.intern_type(TypeData::Integer { width, signedness })
    }

    /// The `i1` type.
    pub fn i1_type(&mut self) -> Type {
        self.int_type(1)
    }

    /// The `i32` type.
    pub fn i32_type(&mut self) -> Type {
        self.int_type(32)
    }

    /// The `i64` type.
    pub fn i64_type(&mut self) -> Type {
        self.int_type(64)
    }

    /// A builtin float type.
    pub fn float_type(&mut self, kind: FloatKind) -> Type {
        self.intern_type(TypeData::Float(kind))
    }

    /// The `f32` type.
    pub fn f32_type(&mut self) -> Type {
        self.float_type(FloatKind::F32)
    }

    /// The `f64` type.
    pub fn f64_type(&mut self) -> Type {
        self.float_type(FloatKind::F64)
    }

    /// The `index` type.
    pub fn index_type(&mut self) -> Type {
        self.intern_type(TypeData::Index)
    }

    /// A function type `(inputs) -> (results)`.
    pub fn function_type(
        &mut self,
        inputs: impl IntoIterator<Item = Type>,
        results: impl IntoIterator<Item = Type>,
    ) -> Type {
        let data = TypeData::Function {
            inputs: inputs.into_iter().collect(),
            results: results.into_iter().collect(),
        };
        self.intern_type(data)
    }

    /// A fixed-shape `vector` type.
    pub fn vector_type(&mut self, dims: impl IntoIterator<Item = u64>, elem: Type) -> Type {
        self.intern_type(TypeData::Vector { dims: dims.into_iter().collect(), elem })
    }

    /// A `tensor` type; use `-1` for dynamic dimensions.
    pub fn tensor_type(&mut self, dims: impl IntoIterator<Item = i64>, elem: Type) -> Type {
        self.intern_type(TypeData::Tensor { dims: dims.into_iter().collect(), elem })
    }

    /// A `memref` type; use `-1` for dynamic dimensions.
    pub fn memref_type(&mut self, dims: impl IntoIterator<Item = i64>, elem: Type) -> Type {
        self.intern_type(TypeData::MemRef { dims: dims.into_iter().collect(), elem })
    }

    /// Creates a dialect-defined parametric type, running the registered
    /// type verifier if the `(dialect, name)` pair is registered.
    ///
    /// # Errors
    ///
    /// Returns the verifier's diagnostic when the parameters violate the
    /// registered constraints.
    pub fn parametric_type(
        &mut self,
        dialect: &str,
        name: &str,
        params: impl IntoIterator<Item = Attribute>,
    ) -> crate::Result<Type> {
        let dialect = self.symbol(dialect);
        let name = self.symbol(name);
        self.parametric_type_syms(dialect, name, params.into_iter().collect())
    }

    /// Symbol-based variant of [`Context::parametric_type`].
    pub fn parametric_type_syms(
        &mut self,
        dialect: Symbol,
        name: Symbol,
        params: Vec<Attribute>,
    ) -> crate::Result<Type> {
        let ty = self.intern_type(TypeData::Parametric { dialect, name, params: params.clone() });
        if let Some(info) = self.registry().type_def(dialect, name) {
            if let Some(verifier) = info.verifier.clone() {
                verifier.verify(self, &params).map_err(|d| {
                    d.with_note(format!(
                        "while building type !{}.{}",
                        self.symbol_str(dialect),
                        self.symbol_str(name)
                    ))
                })?;
            }
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_uniqued() {
        let mut ctx = Context::new();
        let a = ctx.i32_type();
        let b = ctx.int_type(32);
        let c = ctx.int_type(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn signedness_distinguishes_types() {
        let mut ctx = Context::new();
        let i8 = ctx.int_type(8);
        let si8 = ctx.int_type_with_signedness(8, Signedness::Signed);
        let ui8 = ctx.int_type_with_signedness(8, Signedness::Unsigned);
        assert_ne!(i8, si8);
        assert_ne!(si8, ui8);
    }

    #[test]
    fn function_type_structure() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let fty = ctx.function_type([f32, f32], [i32]);
        match fty.data(&ctx) {
            TypeData::Function { inputs, results } => {
                assert_eq!(inputs, &[f32, f32]);
                assert_eq!(results, &[i32]);
            }
            other => panic!("expected function type, got {other:?}"),
        }
    }

    #[test]
    fn unregistered_parametric_type_is_opaque() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let param = ctx.type_attr(f32);
        let ty = ctx.parametric_type("cmath", "complex", [param]).unwrap();
        let (dialect, name) = ty.parametric_name(&ctx).unwrap();
        assert_eq!(ctx.symbol_str(dialect), "cmath");
        assert_eq!(ctx.symbol_str(name), "complex");
        assert_eq!(ty.params(&ctx), &[param]);
    }
}
