//! Attributes: interned static data attached to operations and used as
//! parameters of types and attributes.
//!
//! The builtin kinds mirror the parameter kinds the paper observes in the
//! MLIR ecosystem (Figure 8): types, integers, floats, strings, arrays,
//! enums, locations, and type ids. Domain-specific parameters (affine maps,
//! LLVM struct bodies, ...) are carried by [`AttrData::Native`], the
//! mechanism behind IRDL-C++'s `TypeOrAttrParam` directive.

use crate::context::Context;
use crate::entity::entity_handle;
use crate::symbol::Symbol;
use crate::types::{FloatKind, Type};

entity_handle! {
    /// A handle to an interned attribute. Equality is structural equality.
    Attribute
}

/// The structural payload of an [`Attribute`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrData {
    /// The `unit` attribute: presence is the information.
    Unit,
    /// `true` / `false`.
    Bool(bool),
    /// A typed integer value, e.g. `42 : i32`.
    Integer {
        /// The integer value (sign-extended into an `i128`).
        value: i128,
        /// The integer or index type giving the width and signedness.
        ty: Type,
    },
    /// A typed float value, stored as the raw bits of the `f64` encoding.
    Float {
        /// `f64` bit pattern (bit-exact uniquing; NaNs compare by payload).
        bits: u64,
        /// The float format this value is annotated with.
        kind: FloatKind,
    },
    /// A string literal.
    String(Box<str>),
    /// An ordered list of attributes.
    Array(Vec<Attribute>),
    /// A type used as an attribute value.
    TypeAttr(Type),
    /// A reference to a symbol (e.g. `@conorm`).
    SymbolRef(Symbol),
    /// A constructor of a dialect-defined enum, e.g. `#arith.fastmath<fast>`.
    EnumValue {
        /// Dialect owning the enum.
        dialect: Symbol,
        /// Enum name.
        enum_name: Symbol,
        /// The selected constructor.
        variant: Symbol,
    },
    /// A source location, e.g. `loc("f.mlir":3:7)`.
    Location {
        /// File name.
        file: Box<str>,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A unique identifier for a host-language type (used by e.g. `pdl`).
    TypeId(Symbol),
    /// A dialect-defined native parameter (the IRDL-C++ `TypeOrAttrParam`
    /// analog): a registered `kind` plus its canonical textual form,
    /// validated and printed by native hooks.
    Native {
        /// Registered native parameter kind (e.g. `affine_map`).
        kind: Symbol,
        /// Canonical textual representation.
        text: Box<str>,
    },
    /// A dialect-defined parametric attribute such as `#llvm.linkage<...>`.
    Parametric {
        /// Owning dialect name.
        dialect: Symbol,
        /// Attribute name within the dialect.
        name: Symbol,
        /// Parameter values.
        params: Vec<Attribute>,
    },
}

impl Attribute {
    /// Returns the structural payload of this attribute.
    pub fn data(self, ctx: &Context) -> &AttrData {
        ctx.attr_data(self)
    }

    /// Returns the integer value if this is an integer attribute.
    pub fn as_int(self, ctx: &Context) -> Option<i128> {
        match self.data(ctx) {
            AttrData::Integer { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string attribute.
    pub fn as_str(self, ctx: &Context) -> Option<&str> {
        match self.data(ctx) {
            AttrData::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the wrapped type if this is a type attribute.
    pub fn as_type(self, ctx: &Context) -> Option<Type> {
        match self.data(ctx) {
            AttrData::TypeAttr(ty) => Some(*ty),
            _ => None,
        }
    }

    /// Returns the float value if this is a float attribute.
    pub fn as_float(self, ctx: &Context) -> Option<f64> {
        match self.data(ctx) {
            AttrData::Float { bits, .. } => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Returns the elements if this is an array attribute.
    pub fn as_array(self, ctx: &Context) -> Option<&[Attribute]> {
        match self.data(ctx) {
            AttrData::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the `(dialect, name)` pair for parametric attributes.
    pub fn parametric_name(self, ctx: &Context) -> Option<(Symbol, Symbol)> {
        match self.data(ctx) {
            AttrData::Parametric { dialect, name, .. } => Some((*dialect, *name)),
            _ => None,
        }
    }

    /// Renders the attribute in the generic textual syntax.
    pub fn display(self, ctx: &Context) -> String {
        crate::print::attr_to_string(ctx, self)
    }
}

impl Context {
    /// Interns an arbitrary [`AttrData`], without running dialect verifiers.
    pub fn intern_attr(&mut self, data: AttrData) -> Attribute {
        Attribute(self.attrs_mut().intern(data))
    }

    /// The `unit` attribute.
    pub fn unit_attr(&mut self) -> Attribute {
        self.intern_attr(AttrData::Unit)
    }

    /// A boolean attribute.
    pub fn bool_attr(&mut self, value: bool) -> Attribute {
        self.intern_attr(AttrData::Bool(value))
    }

    /// An integer attribute of the given type.
    pub fn int_attr(&mut self, value: i128, ty: Type) -> Attribute {
        self.intern_attr(AttrData::Integer { value, ty })
    }

    /// A 64-bit signless integer attribute (`value : i64`).
    pub fn i64_attr(&mut self, value: i64) -> Attribute {
        let ty = self.i64_type();
        self.int_attr(value as i128, ty)
    }

    /// A 32-bit signless integer attribute (`value : i32`).
    pub fn i32_attr(&mut self, value: i32) -> Attribute {
        let ty = self.i32_type();
        self.int_attr(value as i128, ty)
    }

    /// A float attribute of the given format.
    pub fn float_attr(&mut self, value: f64, kind: FloatKind) -> Attribute {
        self.intern_attr(AttrData::Float { bits: value.to_bits(), kind })
    }

    /// An `f32`-annotated float attribute.
    pub fn f32_attr(&mut self, value: f64) -> Attribute {
        self.float_attr(value, FloatKind::F32)
    }

    /// A string attribute.
    pub fn string_attr(&mut self, value: impl Into<Box<str>>) -> Attribute {
        self.intern_attr(AttrData::String(value.into()))
    }

    /// An array attribute.
    pub fn array_attr(&mut self, items: impl IntoIterator<Item = Attribute>) -> Attribute {
        let items = items.into_iter().collect();
        self.intern_attr(AttrData::Array(items))
    }

    /// A type attribute wrapping `ty`.
    pub fn type_attr(&mut self, ty: Type) -> Attribute {
        self.intern_attr(AttrData::TypeAttr(ty))
    }

    /// A symbol-reference attribute (`@name`).
    pub fn symbol_ref_attr(&mut self, name: &str) -> Attribute {
        let sym = self.symbol(name);
        self.intern_attr(AttrData::SymbolRef(sym))
    }

    /// An enum-constructor attribute.
    pub fn enum_attr(&mut self, dialect: &str, enum_name: &str, variant: &str) -> Attribute {
        let dialect = self.symbol(dialect);
        let enum_name = self.symbol(enum_name);
        let variant = self.symbol(variant);
        self.intern_attr(AttrData::EnumValue { dialect, enum_name, variant })
    }

    /// A source-location attribute.
    pub fn location_attr(&mut self, file: &str, line: u32, col: u32) -> Attribute {
        self.intern_attr(AttrData::Location { file: file.into(), line, col })
    }

    /// A type-id attribute.
    pub fn type_id_attr(&mut self, name: &str) -> Attribute {
        let sym = self.symbol(name);
        self.intern_attr(AttrData::TypeId(sym))
    }

    /// A native (IRDL-Rust / `TypeOrAttrParam`) parameter value, validated
    /// by the registered native parameter handler when one exists.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the registered handler rejects `text`.
    pub fn native_attr(&mut self, kind: &str, text: &str) -> crate::Result<Attribute> {
        let kind_sym = self.symbol(kind);
        if let Some(handler) = self.registry().native_param(kind_sym) {
            handler.validate(text).map_err(|d| {
                d.with_note(format!("while building native parameter of kind `{kind}`"))
            })?;
        }
        Ok(self.intern_attr(AttrData::Native { kind: kind_sym, text: text.into() }))
    }

    /// Creates a dialect-defined parametric attribute, running the
    /// registered attribute verifier if one exists.
    ///
    /// # Errors
    ///
    /// Returns the verifier's diagnostic when the parameters violate the
    /// registered constraints.
    pub fn parametric_attr(
        &mut self,
        dialect: &str,
        name: &str,
        params: impl IntoIterator<Item = Attribute>,
    ) -> crate::Result<Attribute> {
        let dialect = self.symbol(dialect);
        let name = self.symbol(name);
        self.parametric_attr_syms(dialect, name, params.into_iter().collect())
    }

    /// Symbol-based variant of [`Context::parametric_attr`].
    pub fn parametric_attr_syms(
        &mut self,
        dialect: Symbol,
        name: Symbol,
        params: Vec<Attribute>,
    ) -> crate::Result<Attribute> {
        let attr =
            self.intern_attr(AttrData::Parametric { dialect, name, params: params.clone() });
        if let Some(info) = self.registry().attr_def(dialect, name) {
            if let Some(verifier) = info.verifier.clone() {
                verifier.verify(self, &params).map_err(|d| {
                    d.with_note(format!(
                        "while building attribute #{}.{}",
                        self.symbol_str(dialect),
                        self.symbol_str(name)
                    ))
                })?;
            }
        }
        Ok(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_are_uniqued() {
        let mut ctx = Context::new();
        let a = ctx.i32_attr(7);
        let b = ctx.i32_attr(7);
        let c = ctx.i32_attr(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn accessors_extract_payloads() {
        let mut ctx = Context::new();
        let i = ctx.i64_attr(-3);
        assert_eq!(i.as_int(&ctx), Some(-3));
        let s = ctx.string_attr("hello");
        assert_eq!(s.as_str(&ctx), Some("hello"));
        let f32 = ctx.f32_type();
        let t = ctx.type_attr(f32);
        assert_eq!(t.as_type(&ctx), Some(f32));
        let f = ctx.f32_attr(1.5);
        assert_eq!(f.as_float(&ctx), Some(1.5));
        let arr = ctx.array_attr([i, s]);
        assert_eq!(arr.as_array(&ctx), Some(&[i, s][..]));
    }

    #[test]
    fn float_attr_uniques_bitwise() {
        let mut ctx = Context::new();
        let a = ctx.f32_attr(0.0);
        let b = ctx.f32_attr(-0.0);
        assert_ne!(a, b, "-0.0 and 0.0 have different bit patterns");
        let c = ctx.f32_attr(f64::NAN);
        let d = ctx.f32_attr(f64::NAN);
        assert_eq!(c, d, "identical NaN payloads unique to one attribute");
    }

    #[test]
    fn enum_attr_structure() {
        let mut ctx = Context::new();
        let e = ctx.enum_attr("builtin", "signedness", "Signed");
        match e.data(&ctx) {
            AttrData::EnumValue { dialect, enum_name, variant } => {
                assert_eq!(ctx.symbol_str(*dialect), "builtin");
                assert_eq!(ctx.symbol_str(*enum_name), "signedness");
                assert_eq!(ctx.symbol_str(*variant), "Signed");
            }
            other => panic!("expected enum value, got {other:?}"),
        }
    }
}
