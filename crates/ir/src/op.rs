//! Operations: the unit of computation in the IR.
//!
//! An operation has a dialect-qualified [`OpName`], SSA operands and results,
//! a sorted attribute dictionary, successor blocks (for terminators), and
//! nested regions. Operations are created from an [`OperationState`] and
//! inserted into blocks; def-use chains are maintained by every mutation on
//! [`Context`].

use crate::attrs::Attribute;
use crate::block::BlockRef;
use crate::context::Context;
use crate::entity::entity_handle;
use crate::inline_vec::InlineVec;
use crate::region::RegionRef;
use crate::symbol::Symbol;
use crate::types::Type;
use crate::value::{Use, Value};

/// Operand list storage: two operands inline covers the overwhelming
/// majority of corpus ops (binary arithmetic); wider ops spill to a pooled
/// buffer.
pub type OperandList = InlineVec<Value, 2>;
/// Result-type list storage: almost every op has zero or one result.
pub type TypeList = InlineVec<Type, 1>;
/// Attribute dictionary storage: ops carry at most a couple of attributes
/// (constants carry one).
pub type AttrList = InlineVec<(Symbol, Attribute), 2>;
/// Successor list storage: only terminators have successors, and nearly
/// all have one.
pub type SuccessorList = InlineVec<BlockRef, 1>;
/// Region list storage: region-holding ops (modules, funcs) carry one.
pub type RegionList = InlineVec<RegionRef, 1>;
/// Per-operand use-chain links, parallel to the operand list.
pub(crate) type LinkList = InlineVec<UseLink, 2>;
/// Per-result use-chain heads, parallel to the result-type list.
pub(crate) type FirstUseList = InlineVec<Option<Use>, 1>;

/// One node of the intrusive use-chain, stored per operand slot.
///
/// The uses of a value form a doubly-linked list threaded through the
/// operand slots that reference it: the value's defining entity holds the
/// head (`first_use`), and each use's operand slot holds `prev`/`next`
/// links to its neighbors in the chain. Linking and unlinking are O(1) and
/// allocation-free; see `Context::link_use`/`unlink_use`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct UseLink {
    pub(crate) prev: Option<Use>,
    pub(crate) next: Option<Use>,
}

entity_handle! {
    /// A handle to an operation stored in a [`Context`].
    OpRef
}

/// A dialect-qualified operation name, e.g. `cmath.mul`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpName {
    /// Dialect namespace.
    pub dialect: Symbol,
    /// Operation name within the dialect.
    pub name: Symbol,
}

impl OpName {
    /// Renders the name as `dialect.op`.
    pub fn display(self, ctx: &Context) -> String {
        format!("{}.{}", ctx.symbol_str(self.dialect), ctx.symbol_str(self.name))
    }
}

/// The payload of an operation.
///
/// Every per-op list is an [`InlineVec`] sized so that typical operations
/// (≤2 operands, ≤1 result/attribute/successor/region) are stored fully
/// inline — constructing them performs no heap allocation. Oversized lists
/// spill to buffers drawn from (and recycled into) the context's spill
/// pool.
#[derive(Debug, Clone)]
pub struct OperationData {
    pub(crate) name: OpName,
    pub(crate) operands: OperandList,
    /// Use-chain links, one per operand slot (`operand_links.len() ==
    /// operands.len()` always). `operand_links[i]` is the list node for
    /// the use `(this op, operand i)` within the chain of whatever value
    /// `operands[i]` currently holds.
    pub(crate) operand_links: LinkList,
    pub(crate) result_types: TypeList,
    /// Head of each result's use-chain (`result_first_use.len() ==
    /// result_types.len()` always).
    pub(crate) result_first_use: FirstUseList,
    /// Attribute dictionary, kept sorted by key symbol index for
    /// deterministic printing.
    pub(crate) attributes: AttrList,
    pub(crate) successors: SuccessorList,
    pub(crate) regions: RegionList,
    pub(crate) parent: Option<BlockRef>,
    /// Position key within the parent block: strictly increasing along the
    /// block's op list, so "does `a` come before `b`?" is one integer
    /// comparison instead of a scan. Maintained by every insertion;
    /// meaningless while the op is detached. Keys are spaced
    /// [`ORDER_STRIDE`] apart so mid-block insertion usually finds a gap;
    /// when a gap is exhausted the whole block is renumbered (amortized
    /// O(1) per insertion).
    pub(crate) order: u64,
}

/// Spacing between consecutive order keys, leaving room for mid-block
/// insertions before a renumbering pass is needed.
pub(crate) const ORDER_STRIDE: u64 = 1 << 10;

/// Everything needed to create an operation, assembled builder-style.
///
/// ```
/// use irdl_ir::{Context, OperationState};
///
/// let mut ctx = Context::new();
/// let f32 = ctx.f32_type();
/// let key = ctx.symbol("value");
/// let one = ctx.f32_attr(1.0);
/// let name = ctx.op_name("arith", "constant");
/// let op = ctx.create_op(
///     OperationState::new(name)
///         .add_result_types([f32])
///         .add_attribute(key, one),
/// );
/// assert_eq!(op.num_results(&ctx), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OperationState {
    /// The operation name.
    pub name: OpName,
    /// SSA operands.
    pub operands: OperandList,
    /// Result types.
    pub result_types: TypeList,
    /// Attribute dictionary entries (deduplicated on creation, last wins).
    pub attributes: AttrList,
    /// Successor blocks.
    pub successors: SuccessorList,
    /// Regions to attach; each must be detached (no parent op).
    pub regions: RegionList,
}

impl OperationState {
    /// Starts a state for the given operation name.
    pub fn new(name: OpName) -> Self {
        OperationState {
            name,
            operands: OperandList::new(),
            result_types: TypeList::new(),
            attributes: AttrList::new(),
            successors: SuccessorList::new(),
            regions: RegionList::new(),
        }
    }

    /// Appends operands.
    pub fn add_operands(mut self, operands: impl IntoIterator<Item = Value>) -> Self {
        self.operands.extend(operands);
        self
    }

    /// Appends result types.
    pub fn add_result_types(mut self, types: impl IntoIterator<Item = Type>) -> Self {
        self.result_types.extend(types);
        self
    }

    /// Adds (or overrides) an attribute.
    pub fn add_attribute(mut self, key: Symbol, value: Attribute) -> Self {
        self.attributes.push((key, value));
        self
    }

    /// Appends successor blocks.
    pub fn add_successors(mut self, successors: impl IntoIterator<Item = BlockRef>) -> Self {
        self.successors.extend(successors);
        self
    }

    /// Attaches detached regions.
    pub fn add_regions(mut self, regions: impl IntoIterator<Item = RegionRef>) -> Self {
        self.regions.extend(regions);
        self
    }
}

impl OpRef {
    /// The operation's dialect-qualified name.
    pub fn name(self, ctx: &Context) -> OpName {
        ctx.op_data(self).name
    }

    /// The operands, in order.
    pub fn operands(self, ctx: &Context) -> &[Value] {
        &ctx.op_data(self).operands
    }

    /// The `i`-th operand.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn operand(self, ctx: &Context, i: usize) -> Value {
        ctx.op_data(self).operands[i]
    }

    /// Number of operands.
    pub fn num_operands(self, ctx: &Context) -> usize {
        ctx.op_data(self).operands.len()
    }

    /// The result types, in order.
    pub fn result_types(self, ctx: &Context) -> &[Type] {
        &ctx.op_data(self).result_types
    }

    /// The `i`-th result value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn result(self, ctx: &Context, i: usize) -> Value {
        assert!(i < self.num_results(ctx), "result index out of bounds");
        Value::OpResult { op: self, index: i as u32 }
    }

    /// All result values, in order, as an exact-size iterator.
    ///
    /// The iterator captures the result count up front (it does not borrow
    /// the context), so it can be held across context mutations.
    pub fn results(self, ctx: &Context) -> ResultValues {
        ResultValues { op: self, range: 0..self.num_results(ctx) as u32 }
    }

    /// Number of results.
    pub fn num_results(self, ctx: &Context) -> usize {
        ctx.op_data(self).result_types.len()
    }

    /// The attribute dictionary, sorted by key.
    pub fn attributes(self, ctx: &Context) -> &[(Symbol, Attribute)] {
        &ctx.op_data(self).attributes
    }

    /// Looks up an attribute by name.
    pub fn attr(self, ctx: &Context, key: &str) -> Option<Attribute> {
        let key = ctx.symbol_lookup(key)?;
        self.attr_sym(ctx, key)
    }

    /// Looks up an attribute by interned key.
    pub fn attr_sym(self, ctx: &Context, key: Symbol) -> Option<Attribute> {
        ctx.op_data(self)
            .attributes
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// The successor blocks.
    pub fn successors(self, ctx: &Context) -> &[BlockRef] {
        &ctx.op_data(self).successors
    }

    /// The nested regions, in order.
    pub fn regions(self, ctx: &Context) -> &[RegionRef] {
        &ctx.op_data(self).regions
    }

    /// The `i`-th region.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn region(self, ctx: &Context, i: usize) -> RegionRef {
        ctx.op_data(self).regions[i]
    }

    /// Number of nested regions.
    pub fn num_regions(self, ctx: &Context) -> usize {
        ctx.op_data(self).regions.len()
    }

    /// The block containing this operation, if inserted.
    pub fn parent_block(self, ctx: &Context) -> Option<BlockRef> {
        ctx.op_data(self).parent
    }

    /// The operation owning the region containing this operation.
    pub fn parent_op(self, ctx: &Context) -> Option<OpRef> {
        let block = self.parent_block(ctx)?;
        let region = block.parent_region(ctx)?;
        region.parent_op(ctx)
    }

    /// Returns `true` if this operation is still live in the context.
    pub fn is_live(self, ctx: &Context) -> bool {
        ctx.op_is_live(self)
    }

    /// Returns `true` if this operation comes before `other` in their
    /// shared parent block. O(1): compares maintained order keys.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the two operations are not inserted in
    /// the same block; the comparison is meaningless across blocks.
    pub fn is_before_in_block(self, ctx: &Context, other: OpRef) -> bool {
        debug_assert_eq!(
            self.parent_block(ctx),
            other.parent_block(ctx),
            "order keys only compare within one block"
        );
        ctx.op_data(self).order < ctx.op_data(other).order
    }
}

/// Exact-size iterator over an operation's result values (see
/// [`OpRef::results`]).
#[derive(Debug, Clone)]
pub struct ResultValues {
    op: OpRef,
    range: std::ops::Range<u32>,
}

impl Iterator for ResultValues {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let index = self.range.next()?;
        Some(Value::OpResult { op: self.op, index })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for ResultValues {
    fn next_back(&mut self) -> Option<Value> {
        let index = self.range.next_back()?;
        Some(Value::OpResult { op: self.op, index })
    }
}

impl ExactSizeIterator for ResultValues {}

impl Context {
    /// Builds an [`OpName`] from dialect and operation strings.
    pub fn op_name(&mut self, dialect: &str, name: &str) -> OpName {
        OpName { dialect: self.symbol(dialect), name: self.symbol(name) }
    }

    /// Creates a detached operation from `state`.
    ///
    /// Operand uses are recorded, attributes are sorted and deduplicated
    /// (later entries win), and the supplied regions are attached.
    ///
    /// # Panics
    ///
    /// Panics if a supplied region is already attached to another operation.
    pub fn create_op(&mut self, state: OperationState) -> OpRef {
        let OperationState { name, operands, result_types, mut attributes, successors, regions } =
            state;
        // Deduplicate attributes in place (last write to a key wins, stored
        // at the key's first position), then key-sort. O(n²) over a dict
        // that is almost always ≤2 entries, and allocation-free —
        // `sort_unstable` because keys are unique after the dedup.
        let mut kept = 0usize;
        for i in 0..attributes.len() {
            let (key, value) = attributes[i];
            match attributes[..kept].iter().position(|(k, _)| *k == key) {
                Some(j) => attributes[j].1 = value,
                None => {
                    attributes[kept] = (key, value);
                    kept += 1;
                }
            }
        }
        attributes.truncate(kept);
        attributes.sort_unstable_by_key(|(k, _)| k.0);

        // The state's lists move into the payload unchanged; only the two
        // bookkeeping lists (use links and chain heads) are built here,
        // drawing spill buffers from the pool when they don't fit inline.
        let num_operands = operands.len();
        let num_results = result_types.len();
        let mut pool = std::mem::take(self.spill_pool_mut());
        let operand_links =
            LinkList::with_len_pooled(num_operands, UseLink::default(), &mut pool.links);
        let result_first_use = FirstUseList::with_len_pooled(num_results, None, &mut pool.heads);
        *self.spill_pool_mut() = pool;
        let data = OperationData {
            name,
            operands,
            operand_links,
            result_types,
            result_first_use,
            attributes,
            successors,
            regions,
            parent: None,
            order: 0,
        };
        let op = OpRef(self.ops_mut().alloc(data));
        for index in 0..num_operands {
            let operand = self.op_data(op).operands[index];
            self.link_use(operand, Use { op, operand_index: index as u32 });
        }
        let num_regions = self.op_data(op).regions.len();
        for i in 0..num_regions {
            let region = self.op_data(op).regions[i];
            let slot = self.region_data_mut(region);
            assert!(slot.parent_op.is_none(), "region already attached to an operation");
            slot.parent_op = Some(op);
        }
        op
    }

    /// Replaces operand `index` of `op` with `value`, updating use lists.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_operand(&mut self, op: OpRef, index: usize, value: Value) {
        let old = self.op_data(op).operands[index];
        if old == value {
            return;
        }
        let u = Use { op, operand_index: index as u32 };
        self.unlink_use(old, u);
        self.op_data_mut(op).operands[index] = value;
        self.link_use(value, u);
    }

    /// Replaces every use of `old` with `new`.
    ///
    /// Replacing a value with itself is a no-op. O(uses) and
    /// allocation-free: each step pops the head of `old`'s use-chain and
    /// relinks that operand slot onto `new`'s chain.
    pub fn replace_all_uses(&mut self, old: Value, new: Value) {
        if old == new {
            return;
        }
        while let Some(u) = self.first_use(old) {
            self.set_operand(u.op, u.operand_index as usize, new);
        }
    }

    /// Sets (or overrides) an attribute on `op`.
    pub fn set_attr(&mut self, op: OpRef, key: Symbol, value: Attribute) {
        let dict = &mut self.op_data_mut(op).attributes;
        match dict.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = value,
            None => {
                dict.push((key, value));
                dict.sort_unstable_by_key(|(k, _)| k.0);
            }
        }
    }

    /// Removes an attribute from `op`, returning its previous value.
    pub fn remove_attr(&mut self, op: OpRef, key: Symbol) -> Option<Attribute> {
        let dict = &mut self.op_data_mut(op).attributes;
        let pos = dict.iter().position(|(k, _)| *k == key)?;
        Some(dict.remove(pos).1)
    }

    /// Detaches `op` from its parent block (it remains live).
    pub fn detach_op(&mut self, op: OpRef) {
        if let Some(block) = self.op_data(op).parent {
            let ops = &mut self.block_data_mut(block).ops;
            let pos = ops.iter().position(|o| *o == op).expect("op not in parent block");
            ops.remove(pos);
            self.op_data_mut(op).parent = None;
        }
    }

    /// Appends `op` at the end of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is already inserted in a block.
    pub fn append_op(&mut self, block: BlockRef, op: OpRef) {
        assert!(self.op_data(op).parent.is_none(), "op already inserted; detach first");
        let order = match self.block_data(block).ops.last() {
            Some(&last) => self.op_data(last).order + ORDER_STRIDE,
            None => ORDER_STRIDE,
        };
        self.block_data_mut(block).ops.push(op);
        let data = self.op_data_mut(op);
        data.parent = Some(block);
        data.order = order;
    }

    /// Inserts `op` immediately before `anchor` in `anchor`'s block.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is detached or `op` is already inserted.
    pub fn insert_op_before(&mut self, anchor: OpRef, op: OpRef) {
        assert!(self.op_data(op).parent.is_none(), "op already inserted; detach first");
        let block = self.op_data(anchor).parent.expect("anchor op is detached");
        let pos = {
            let ops = &self.block_data(block).ops;
            ops.iter().position(|o| *o == anchor).expect("anchor not in its parent block")
        };
        self.block_data_mut(block).ops.insert(pos, op);
        self.op_data_mut(op).parent = Some(block);
        self.assign_order(block, pos);
    }

    /// Inserts `op` immediately after `anchor` in `anchor`'s block.
    ///
    /// # Panics
    ///
    /// Panics if `anchor` is detached or `op` is already inserted.
    pub fn insert_op_after(&mut self, anchor: OpRef, op: OpRef) {
        assert!(self.op_data(op).parent.is_none(), "op already inserted; detach first");
        let block = self.op_data(anchor).parent.expect("anchor op is detached");
        let pos = {
            let ops = &self.block_data(block).ops;
            ops.iter().position(|o| *o == anchor).expect("anchor not in its parent block")
        };
        self.block_data_mut(block).ops.insert(pos + 1, op);
        self.op_data_mut(op).parent = Some(block);
        self.assign_order(block, pos + 1);
    }

    /// Gives the op at `pos` in `block` an order key between its neighbors,
    /// renumbering the whole block when the gap is exhausted.
    fn assign_order(&mut self, block: BlockRef, pos: usize) {
        let ops = &self.block_data(block).ops;
        let lo = if pos > 0 { self.op_data(ops[pos - 1]).order } else { 0 };
        let hi = if pos + 1 < ops.len() {
            self.op_data(ops[pos + 1]).order
        } else {
            lo + 2 * ORDER_STRIDE
        };
        let op = ops[pos];
        if hi > lo + 1 {
            self.op_data_mut(op).order = lo + (hi - lo) / 2;
        } else {
            // Gap exhausted: respace the whole block. Amortized across the
            // ~log(ORDER_STRIDE) insertions that consumed the gap. The op
            // list is taken, not cloned, so respacing never allocates.
            let ops = std::mem::take(&mut self.block_data_mut(block).ops);
            for (i, &o) in ops.iter().enumerate() {
                self.op_data_mut(o).order = (i as u64 + 1) * ORDER_STRIDE;
            }
            self.block_data_mut(block).ops = ops;
        }
    }

    /// Erases `op` and everything nested inside it.
    ///
    /// # Panics
    ///
    /// Panics if any result of any operation in the erased subtree still
    /// has uses outside the subtree.
    pub fn erase_op(&mut self, op: OpRef) {
        // Fast path: no nested regions, so the subtree is the op itself.
        // Walks the use-chains (self-uses are part of the "subtree"),
        // unlinks the operands, and recycles the payload's spill buffers —
        // all without touching the allocator.
        if self.op_data(op).regions.is_empty() {
            let num_results = self.op_data(op).result_first_use.len();
            for i in 0..num_results {
                let mut next = self.op_data(op).result_first_use[i];
                while let Some(u) = next {
                    assert!(u.op == op, "erasing operation whose results still have uses");
                    next = self.op_data(u.op).operand_links[u.operand_index as usize].next;
                }
            }
            self.unlink_all_operands(op);
            self.detach_op(op);
            let data = self.ops_mut().erase(op.0);
            self.recycle_op_data(data);
            return;
        }

        // General path: collect the whole subtree first, into scratch
        // buffers reused across erasures.
        let mut scratch = std::mem::take(self.erase_scratch_mut());
        scratch.clear();
        self.collect_subtree(op, &mut scratch.ops, &mut scratch.blocks, &mut scratch.regions);
        scratch.mark_ops();
        // No result anywhere in the subtree may be used outside it. (Uses
        // from outside a region are invalid IR, but the guard keeps a
        // mis-built context from leaving dangling references.)
        for &o in &scratch.ops {
            let num_results = self.op_data(o).result_first_use.len();
            for i in 0..num_results {
                let mut next = self.op_data(o).result_first_use[i];
                while let Some(u) = next {
                    assert!(
                        scratch.is_marked(u.op),
                        "erasing operation whose results still have uses"
                    );
                    next = self.op_data(u.op).operand_links[u.operand_index as usize].next;
                }
            }
        }
        // Drop operand uses originating from the subtree, so that internal
        // def-use edges do not block destruction.
        for i in 0..scratch.ops.len() {
            self.unlink_all_operands(scratch.ops[i]);
        }
        self.detach_op(op);
        for &o in &scratch.ops {
            let data = self.ops_mut().erase(o.0);
            self.recycle_op_data(data);
        }
        for &b in &scratch.blocks {
            self.blocks_mut().erase(b.0);
        }
        for &r in &scratch.regions {
            self.regions_mut().erase(r.0);
        }
        scratch.clear();
        *self.erase_scratch_mut() = scratch;
    }

    /// Unlinks every operand use of `op` from its value's use-chain.
    fn unlink_all_operands(&mut self, op: OpRef) {
        let num_operands = self.op_data(op).operands.len();
        for index in 0..num_operands {
            let operand = self.op_data(op).operands[index];
            self.unlink_use(operand, Use { op, operand_index: index as u32 });
        }
    }

    fn collect_subtree(
        &self,
        op: OpRef,
        ops: &mut Vec<OpRef>,
        blocks: &mut Vec<BlockRef>,
        regions: &mut Vec<RegionRef>,
    ) {
        ops.push(op);
        for &region in self.op_data(op).regions.iter() {
            regions.push(region);
            for &block in self.region_data(region).blocks.iter() {
                blocks.push(block);
                for &nested in self.block_data(block).ops.iter() {
                    self.collect_subtree(nested, ops, blocks, regions);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_op(ctx: &mut Context, name: &str, operands: &[Value], results: usize) -> OpRef {
        let f32 = ctx.f32_type();
        let name = ctx.op_name("test", name);
        ctx.create_op(
            OperationState::new(name)
                .add_operands(operands.iter().copied())
                .add_result_types(std::iter::repeat_n(f32, results)),
        )
    }

    #[test]
    fn use_lists_track_operands() {
        let mut ctx = Context::new();
        let a = test_op(&mut ctx, "a", &[], 1);
        let va = a.result(&ctx, 0);
        let b = test_op(&mut ctx, "b", &[va, va], 1);
        assert_eq!(va.uses(&ctx).count(), 2);
        assert!(va.uses(&ctx).all(|u| u.op == b));
    }

    #[test]
    fn replace_all_uses_moves_edges() {
        let mut ctx = Context::new();
        let a = test_op(&mut ctx, "a", &[], 1);
        let c = test_op(&mut ctx, "c", &[], 1);
        let va = a.result(&ctx, 0);
        let vc = c.result(&ctx, 0);
        let b = test_op(&mut ctx, "b", &[va], 1);
        ctx.replace_all_uses(va, vc);
        assert!(va.is_unused(&ctx));
        assert_eq!(vc.uses(&ctx).count(), 1);
        assert_eq!(b.operand(&ctx, 0), vc);
    }

    #[test]
    fn attributes_sorted_and_deduped() {
        let mut ctx = Context::new();
        let k1 = ctx.symbol("zeta");
        let k2 = ctx.symbol("alpha");
        let v1 = ctx.i32_attr(1);
        let v2 = ctx.i32_attr(2);
        let v3 = ctx.i32_attr(3);
        let name = ctx.op_name("test", "attrs");
        let op = ctx.create_op(
            OperationState::new(name)
                .add_attribute(k1, v1)
                .add_attribute(k2, v2)
                .add_attribute(k1, v3),
        );
        assert_eq!(op.attr_sym(&ctx, k1), Some(v3), "last write wins");
        assert_eq!(op.attr_sym(&ctx, k2), Some(v2));
        assert_eq!(op.attributes(&ctx).len(), 2);
    }

    #[test]
    fn insertion_and_detach() {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let a = test_op(&mut ctx, "a", &[], 0);
        let b = test_op(&mut ctx, "b", &[], 0);
        let c = test_op(&mut ctx, "c", &[], 0);
        ctx.append_op(block, a);
        ctx.append_op(block, c);
        ctx.insert_op_before(c, b);
        let names: Vec<String> =
            block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
        assert_eq!(names, ["test.a", "test.b", "test.c"]);
        ctx.detach_op(b);
        assert_eq!(block.ops(&ctx).len(), 2);
        assert_eq!(b.parent_block(&ctx), None);
        ctx.insert_op_after(a, b);
        let names: Vec<String> =
            block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
        assert_eq!(names, ["test.a", "test.b", "test.c"]);
    }

    #[test]
    fn erase_op_releases_operand_uses() {
        let mut ctx = Context::new();
        let a = test_op(&mut ctx, "a", &[], 1);
        let va = a.result(&ctx, 0);
        let b = test_op(&mut ctx, "b", &[va], 0);
        assert_eq!(va.uses(&ctx).count(), 1);
        ctx.erase_op(b);
        assert!(va.is_unused(&ctx));
        assert!(!b.is_live(&ctx));
    }

    #[test]
    fn order_keys_track_block_position() {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let a = test_op(&mut ctx, "a", &[], 0);
        let b = test_op(&mut ctx, "b", &[], 0);
        ctx.append_op(block, a);
        ctx.append_op(block, b);
        assert!(a.is_before_in_block(&ctx, b));
        assert!(!b.is_before_in_block(&ctx, a));
        // Exhaust the gap between a and b: every insertion must keep the
        // whole block strictly ordered, forcing renumbering on the way.
        let mut anchor = b;
        for i in 0..32 {
            let mid = test_op(&mut ctx, &format!("m{i}"), &[], 0);
            ctx.insert_op_before(anchor, mid);
            anchor = mid;
        }
        let ops = block.ops(&ctx).to_vec();
        for pair in ops.windows(2) {
            assert!(pair[0].is_before_in_block(&ctx, pair[1]));
        }
        // Detach + reinsert refreshes the key.
        ctx.detach_op(a);
        ctx.append_op(block, a);
        assert!(b.is_before_in_block(&ctx, a));
    }

    #[test]
    #[should_panic(expected = "results still have uses")]
    fn erase_used_op_panics() {
        let mut ctx = Context::new();
        let a = test_op(&mut ctx, "a", &[], 1);
        let va = a.result(&ctx, 0);
        let _b = test_op(&mut ctx, "b", &[va], 0);
        ctx.erase_op(a);
    }
}
