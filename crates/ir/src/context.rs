//! The [`Context`]: owner of all IR state.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::attrs::{AttrData, Attribute};
use crate::block::{BlockData, BlockRef};
use crate::dialect::DialectRegistry;
use crate::entity::{EntityArena, UniqueArena};
use crate::op::{OpRef, OperationData, OperationState, UseLink};
use crate::region::{RegionData, RegionRef};
use crate::symbol::Symbol;
use crate::types::{Type, TypeData};
use crate::value::{Use, Value};

/// Owns every piece of IR state: interned symbols, types and attributes,
/// the operation/block/region arenas, and the dialect registry.
///
/// All handles ([`Type`], [`Attribute`], [`OpRef`], ...) are indices into
/// this context; using a handle with a different context is a logic error.
pub struct Context {
    symbols: UniqueArena<String>,
    types: UniqueArena<TypeData>,
    attrs: UniqueArena<AttrData>,
    ops: EntityArena<OperationData>,
    blocks: EntityArena<BlockData>,
    regions: EntityArena<RegionData>,
    registry: DialectRegistry,
    allow_unregistered: bool,
    /// Memoized constraint verdicts, keyed by an opaque `u64` composed by
    /// the verifier compiler from a *verdict domain* (see
    /// [`Context::reserve_verdict_domains`]) and a uniqued type/attribute
    /// index. Sound because interned values are immutable and append-only:
    /// a verdict computed once holds for the lifetime of the context.
    /// Interior-mutable (and sharded, see [`VerdictCache`]) so verifier
    /// hooks — which only see `&Context`, possibly from several worker
    /// threads at once — can fill it.
    verdict_cache: VerdictCache,
    verdict_hits: AtomicU64,
    verdict_misses: AtomicU64,
    next_verdict_domain: u32,
    /// Per-context evaluation scratch parked here between verifier runs so
    /// shared (`Arc`'d, stateless) verifier objects stay `Sync`. Type-erased
    /// because the scratch type lives in a downstream crate; a pool (not a
    /// single slot) so N parallel verification workers each get a reusable
    /// scratch instead of allocating fresh ones on every op.
    eval_scratch: Mutex<Vec<Box<dyn Any + Send>>>,
    /// Recycled spill buffers for oversized [`OperationData`] lists.
    /// `erase_op` harvests spilled buffers here instead of freeing them;
    /// `create_op` draws from here instead of allocating — so steady-state
    /// create/erase churn (the rewrite driver's workload) never touches the
    /// allocator. Plain fields, not `Mutex`ed: both ends take `&mut self`.
    spill_pool: SpillPool,
    /// Reusable traversal buffers for `erase_op`'s subtree walk.
    erase_scratch: EraseScratch,
}

/// Capacity cap per spill-pool bucket: enough to absorb any realistic
/// create/erase burst, small enough that a pathological module can't pin
/// unbounded memory after it is erased.
const SPILL_POOL_CAP: usize = 32;

/// Buckets of recycled spill buffers, one per `OperationData` list type.
#[derive(Debug, Default)]
pub(crate) struct SpillPool {
    pub(crate) operands: Vec<Vec<Value>>,
    pub(crate) links: Vec<Vec<UseLink>>,
    pub(crate) types: Vec<Vec<Type>>,
    pub(crate) heads: Vec<Vec<Option<Use>>>,
    pub(crate) attrs: Vec<Vec<(Symbol, Attribute)>>,
    pub(crate) successors: Vec<Vec<BlockRef>>,
    pub(crate) regions: Vec<Vec<RegionRef>>,
}

impl SpillPool {
    /// Parks a harvested spill buffer in `bucket` (drops it past the cap).
    fn stash<T>(bucket: &mut Vec<Vec<T>>, buf: Option<Vec<T>>) {
        if let Some(mut buf) = buf {
            if bucket.len() < SPILL_POOL_CAP {
                buf.clear();
                bucket.push(buf);
            }
        }
    }
}

/// Reusable buffers for `erase_op`'s subtree collection.
#[derive(Debug, Default)]
pub(crate) struct EraseScratch {
    pub(crate) ops: Vec<OpRef>,
    pub(crate) blocks: Vec<BlockRef>,
    pub(crate) regions: Vec<RegionRef>,
    /// Generation-stamped subtree membership, indexed by op arena slot:
    /// slot `i` is in the current subtree iff `marks[i] == generation`.
    /// Bumping the generation invalidates every mark in O(1), so the
    /// buffer is never cleared and membership tests never hash.
    pub(crate) marks: Vec<u64>,
    pub(crate) generation: u64,
}

impl EraseScratch {
    pub(crate) fn clear(&mut self) {
        self.ops.clear();
        self.blocks.clear();
        self.regions.clear();
    }

    /// Starts a new subtree: stamps `ops` under a fresh generation.
    pub(crate) fn mark_ops(&mut self) {
        self.generation += 1;
        if let Some(max) = self.ops.iter().map(|o| o.index()).max() {
            if max >= self.marks.len() {
                self.marks.resize(max + 1, 0);
            }
        }
        for op in &self.ops {
            self.marks[op.index()] = self.generation;
        }
    }

    /// Whether `op` was stamped by the most recent [`Self::mark_ops`].
    pub(crate) fn is_marked(&self, op: OpRef) -> bool {
        self.marks.get(op.index()).copied() == Some(self.generation)
    }
}

/// Iterator over the uses of a value (see [`Context::value_uses`]).
///
/// Walks the intrusive use-chain; most-recently-linked uses come first.
/// Allocation-free. The chain must not be mutated while iterating (the
/// borrow on the context enforces this).
#[derive(Clone)]
pub struct UseIter<'c> {
    ctx: &'c Context,
    next: Option<Use>,
}

impl Iterator for UseIter<'_> {
    type Item = Use;

    fn next(&mut self) -> Option<Use> {
        let u = self.next?;
        self.next = self.ctx.op_data(u.op).operand_links[u.operand_index as usize].next;
        Some(u)
    }
}

/// Number of independent verdict-cache shards. A power of two; 16 keeps
/// lock contention negligible for any realistic worker count while the
/// per-shard maps stay dense.
const VERDICT_SHARDS: usize = 16;

/// The memoized-verdict store, sharded by key so concurrent verification
/// workers sharing one `&Context` never serialize on a single lock.
///
/// Every shard is an independent `Mutex<HashMap>`; a key's shard is a
/// multiplicative hash of the key, so the (domain, uniqued-index) keys the
/// verifier compiler composes spread evenly. Uncontended mutex acquisition
/// is a single atomic op, so the sequential fast path stays fast.
#[derive(Debug, Default)]
struct VerdictCache {
    shards: [Mutex<HashMap<u64, bool>>; VERDICT_SHARDS],
}

impl VerdictCache {
    #[inline]
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, bool>> {
        // Fibonacci hashing: the top bits of a multiplicative hash are
        // well-mixed even for sequential keys.
        let index = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize;
        &self.shards[index & (VERDICT_SHARDS - 1)]
    }

    fn get(&self, key: u64) -> Option<bool> {
        self.shard(key).lock().unwrap().get(&key).copied()
    }

    fn insert(&self, key: u64, verdict: bool) {
        self.shard(key).lock().unwrap().insert(key, verdict);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

impl Clone for VerdictCache {
    fn clone(&self) -> Self {
        VerdictCache {
            shards: std::array::from_fn(|i| Mutex::new(self.shards[i].lock().unwrap().clone())),
        }
    }
}

impl Clone for Context {
    /// Clones the full context: interned tables, entity arenas, registry
    /// (hook objects are `Arc`-shared, not deep-copied), and the verdict
    /// cache. Because the uniquing tables are append-only, every index in
    /// the clone resolves to the same value as in the original — so compiled
    /// artifacts built against the original remain valid in the clone, and
    /// the cloned verdict cache is warm *and* sound. Hit/miss counters reset
    /// to zero; evaluation scratch starts empty.
    fn clone(&self) -> Self {
        Context {
            symbols: self.symbols.clone(),
            types: self.types.clone(),
            attrs: self.attrs.clone(),
            ops: self.ops.clone(),
            blocks: self.blocks.clone(),
            regions: self.regions.clone(),
            registry: self.registry.clone(),
            allow_unregistered: self.allow_unregistered,
            verdict_cache: self.verdict_cache.clone(),
            verdict_hits: AtomicU64::new(0),
            verdict_misses: AtomicU64::new(0),
            next_verdict_domain: self.next_verdict_domain,
            eval_scratch: Mutex::new(Vec::new()),
            spill_pool: SpillPool::default(),
            erase_scratch: EraseScratch::default(),
        }
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("symbols", &self.symbols.len())
            .field("types", &self.types.len())
            .field("attrs", &self.attrs.len())
            .field("ops", &self.ops.len())
            .field("blocks", &self.blocks.len())
            .field("regions", &self.regions.len())
            .field("dialects", &self.registry.len())
            .finish()
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// Creates a fresh context with the `builtin` dialect registered and
    /// unregistered dialects allowed.
    pub fn new() -> Self {
        let mut ctx = Context {
            symbols: UniqueArena::new(),
            types: UniqueArena::new(),
            attrs: UniqueArena::new(),
            ops: EntityArena::new(),
            blocks: EntityArena::new(),
            regions: EntityArena::new(),
            registry: DialectRegistry::new(),
            allow_unregistered: true,
            verdict_cache: VerdictCache::default(),
            verdict_hits: AtomicU64::new(0),
            verdict_misses: AtomicU64::new(0),
            next_verdict_domain: 0,
            eval_scratch: Mutex::new(Vec::new()),
            spill_pool: SpillPool::default(),
            erase_scratch: EraseScratch::default(),
        };
        crate::builtin::register_builtin_dialect(&mut ctx);
        ctx
    }

    // ----- Symbols ---------------------------------------------------------

    /// Interns a string, returning its [`Symbol`].
    ///
    /// A single hash lookup on the hit path; the string is copied into the
    /// table only when it has never been seen before.
    pub fn symbol(&mut self, s: &str) -> Symbol {
        Symbol(self.symbols.intern_with(s, str::to_string))
    }

    /// Returns the symbol for `s` if it has been interned.
    pub fn symbol_lookup(&self, s: &str) -> Option<Symbol> {
        self.symbols.lookup_str(s).map(Symbol)
    }

    /// Resolves a symbol back to its string.
    pub fn symbol_str(&self, sym: Symbol) -> &str {
        self.symbols.get(sym.0)
    }

    // ----- Uniquing tables -------------------------------------------------

    pub(crate) fn types_mut(&mut self) -> &mut UniqueArena<TypeData> {
        &mut self.types
    }

    pub(crate) fn attrs_mut(&mut self) -> &mut UniqueArena<AttrData> {
        &mut self.attrs
    }

    /// Returns the structural payload of an interned type.
    pub fn type_data(&self, ty: Type) -> &TypeData {
        self.types.get(ty.0)
    }

    /// Returns the structural payload of an interned attribute.
    pub fn attr_data(&self, attr: Attribute) -> &AttrData {
        self.attrs.get(attr.0)
    }

    /// Number of distinct interned types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of distinct interned attributes.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    // ----- Verdict cache ---------------------------------------------------
    //
    // Compiled verifiers memoize the outcome of *pure* (variable-free,
    // native-free) constraint subprograms per uniqued type/attribute. The
    // context hands out disjoint key domains so independent programs can
    // never collide, and stores verdicts behind interior mutability because
    // verification only sees `&Context`. Soundness rests on the uniquing
    // tables being append-only and immutable: the value behind a given
    // index never changes, so neither does its verdict.

    /// Reserves `count` fresh verdict-cache key domains, returning the first.
    ///
    /// Each domain is a namespace for one memoizable subprogram; callers
    /// compose full keys from `(domain, uniqued index)`.
    pub fn reserve_verdict_domains(&mut self, count: u32) -> u32 {
        let base = self.next_verdict_domain;
        self.next_verdict_domain = base.checked_add(count).expect("verdict domain overflow");
        base
    }

    /// Looks up a memoized verdict, counting the hit or miss.
    pub fn cached_verdict(&self, key: u64) -> Option<bool> {
        let hit = self.verdict_cache.get(key);
        match hit {
            Some(_) => self.verdict_hits.fetch_add(1, Ordering::Relaxed),
            None => self.verdict_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Records a verdict for `key`.
    pub fn cache_verdict(&self, key: u64, verdict: bool) {
        self.verdict_cache.insert(key, verdict);
    }

    /// Number of memoized verdicts (observability / tests).
    pub fn verdict_cache_len(&self) -> usize {
        self.verdict_cache.len()
    }

    /// `(hits, misses)` counters for the verdict cache.
    pub fn verdict_cache_stats(&self) -> (u64, u64) {
        (
            self.verdict_hits.load(Ordering::Relaxed),
            self.verdict_misses.load(Ordering::Relaxed),
        )
    }

    /// Zeroes the verdict hit/miss counters (the cache itself is kept).
    ///
    /// Lets callers measure hit rates over a window — e.g. per worker in
    /// the batch pipeline — instead of since context creation.
    pub fn reset_verdict_stats(&self) {
        self.verdict_hits.store(0, Ordering::Relaxed);
        self.verdict_misses.store(0, Ordering::Relaxed);
    }

    /// Drops every memoized verdict (counters are kept).
    ///
    /// Verification after a clear re-evaluates every constraint from
    /// scratch, which is what differential cache oracles compare against
    /// the memoized path.
    pub fn clear_verdict_cache(&self) {
        self.verdict_cache.clear();
    }

    // ----- Evaluation scratch ----------------------------------------------

    /// Takes one parked evaluation scratch from the pool, if any.
    ///
    /// Verifier implementations park reusable evaluation buffers here so
    /// the verifier objects themselves can be shared across threads. The
    /// pool is type-erased; callers downcast to their own scratch type and
    /// fall back to a fresh value on mismatch or when the pool is empty
    /// (which also makes nested verification re-entrant). Holding a pool
    /// rather than a single slot means each of N parallel verification
    /// workers acquires its own reusable scratch.
    pub fn take_eval_scratch(&self) -> Option<Box<dyn Any + Send>> {
        self.eval_scratch.lock().unwrap().pop()
    }

    /// Parks evaluation scratch for the next verifier run.
    pub fn put_eval_scratch(&self, scratch: Box<dyn Any + Send>) {
        let mut pool = self.eval_scratch.lock().unwrap();
        // Bound the pool: steady state needs one entry per concurrent
        // verification worker; anything beyond a generous cap is churn.
        if pool.len() < 64 {
            pool.push(scratch);
        }
    }

    // ----- Entity arenas ---------------------------------------------------

    pub(crate) fn ops_mut(&mut self) -> &mut EntityArena<OperationData> {
        &mut self.ops
    }

    pub(crate) fn blocks_mut(&mut self) -> &mut EntityArena<BlockData> {
        &mut self.blocks
    }

    pub(crate) fn regions_mut(&mut self) -> &mut EntityArena<RegionData> {
        &mut self.regions
    }

    /// Returns the payload of a live operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` was erased.
    pub fn op_data(&self, op: OpRef) -> &OperationData {
        self.ops.get(op.0)
    }

    pub(crate) fn op_data_mut(&mut self, op: OpRef) -> &mut OperationData {
        self.ops.get_mut(op.0)
    }

    /// Returns the payload of a live block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was erased.
    pub fn block_data(&self, block: BlockRef) -> &BlockData {
        self.blocks.get(block.0)
    }

    pub(crate) fn block_data_mut(&mut self, block: BlockRef) -> &mut BlockData {
        self.blocks.get_mut(block.0)
    }

    /// Returns the payload of a live region.
    ///
    /// # Panics
    ///
    /// Panics if `region` was erased.
    pub fn region_data(&self, region: RegionRef) -> &RegionData {
        self.regions.get(region.0)
    }

    pub(crate) fn region_data_mut(&mut self, region: RegionRef) -> &mut RegionData {
        self.regions.get_mut(region.0)
    }

    pub(crate) fn op_is_live(&self, op: OpRef) -> bool {
        self.ops.is_live(op.0)
    }

    pub(crate) fn block_is_live(&self, block: BlockRef) -> bool {
        self.blocks.is_live(block.0)
    }

    pub(crate) fn region_is_live(&self, region: RegionRef) -> bool {
        self.regions.is_live(region.0)
    }

    /// Number of live operations in the context.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    // ----- Def-use chains --------------------------------------------------
    //
    // Uses are stored as an intrusive doubly-linked chain threaded through
    // the operand slots: each value's defining entity holds the head
    // (`first_use`), and every operand slot carries `prev`/`next` links for
    // the use it currently represents. Links are index-based (`Use`
    // handles), so cloning the context clones valid chains, and linking/
    // unlinking is O(1) with zero allocation. New uses are pushed at the
    // front, so iteration order is most-recently-linked first.

    /// The current uses of `value`, walking the intrusive use-chain.
    pub fn value_uses(&self, value: Value) -> UseIter<'_> {
        UseIter { ctx: self, next: self.first_use(value) }
    }

    /// The head of `value`'s use-chain, if it has any uses.
    pub fn first_use(&self, value: Value) -> Option<Use> {
        match value {
            Value::OpResult { op, index } => self.op_data(op).result_first_use[index as usize],
            Value::BlockArg { block, index } => {
                self.block_data(block).arg_first_use[index as usize]
            }
        }
    }

    fn set_first_use(&mut self, value: Value, u: Option<Use>) {
        match value {
            Value::OpResult { op, index } => {
                self.op_data_mut(op).result_first_use[index as usize] = u;
            }
            Value::BlockArg { block, index } => {
                self.block_data_mut(block).arg_first_use[index as usize] = u;
            }
        }
    }

    /// Pushes `u` onto the front of `value`'s use-chain.
    ///
    /// `u`'s operand slot must already hold `value` and must not currently
    /// be linked into any chain.
    pub(crate) fn link_use(&mut self, value: Value, u: Use) {
        let head = self.first_use(value);
        if let Some(h) = head {
            self.op_data_mut(h.op).operand_links[h.operand_index as usize].prev = Some(u);
        }
        let link = &mut self.op_data_mut(u.op).operand_links[u.operand_index as usize];
        link.prev = None;
        link.next = head;
        self.set_first_use(value, Some(u));
    }

    /// Removes `u` from `value`'s use-chain; `u` must be linked into it.
    pub(crate) fn unlink_use(&mut self, value: Value, u: Use) {
        let UseLink { prev, next } =
            self.op_data(u.op).operand_links[u.operand_index as usize];
        match prev {
            Some(p) => {
                self.op_data_mut(p.op).operand_links[p.operand_index as usize].next = next;
            }
            None => self.set_first_use(value, next),
        }
        if let Some(n) = next {
            self.op_data_mut(n.op).operand_links[n.operand_index as usize].prev = prev;
        }
        let link = &mut self.op_data_mut(u.op).operand_links[u.operand_index as usize];
        link.prev = None;
        link.next = None;
    }

    // ----- Storage recycling -----------------------------------------------

    pub(crate) fn spill_pool_mut(&mut self) -> &mut SpillPool {
        &mut self.spill_pool
    }

    pub(crate) fn erase_scratch_mut(&mut self) -> &mut EraseScratch {
        &mut self.erase_scratch
    }

    /// Harvests the spill buffers of an erased operation's payload into
    /// the pool, so the next oversized `create_op` allocates nothing.
    pub(crate) fn recycle_op_data(&mut self, mut data: OperationData) {
        let pool = &mut self.spill_pool;
        SpillPool::stash(&mut pool.operands, data.operands.take_spill());
        SpillPool::stash(&mut pool.links, data.operand_links.take_spill());
        SpillPool::stash(&mut pool.types, data.result_types.take_spill());
        SpillPool::stash(&mut pool.heads, data.result_first_use.take_spill());
        SpillPool::stash(&mut pool.attrs, data.attributes.take_spill());
        SpillPool::stash(&mut pool.successors, data.successors.take_spill());
        SpillPool::stash(&mut pool.regions, data.regions.take_spill());
    }

    // ----- Registry --------------------------------------------------------

    /// The dialect registry.
    pub fn registry(&self) -> &DialectRegistry {
        &self.registry
    }

    /// Mutable access to the dialect registry.
    pub fn registry_mut(&mut self) -> &mut DialectRegistry {
        &mut self.registry
    }

    /// Whether operations of unregistered dialects are accepted (default:
    /// `true`, as in MLIR's `allowUnregisteredDialects`).
    pub fn allows_unregistered(&self) -> bool {
        self.allow_unregistered
    }

    /// Toggles acceptance of unregistered dialects.
    pub fn set_allow_unregistered(&mut self, allow: bool) {
        self.allow_unregistered = allow;
    }

    // ----- Module convenience ----------------------------------------------

    /// Creates a `builtin.module` operation with a single-block region.
    pub fn create_module(&mut self) -> OpRef {
        let (region, _entry) = self.create_region_with_entry([]);
        let name = self.op_name("builtin", "module");
        self.create_op(OperationState::new(name).add_regions([region]))
    }

    /// The body block of a `builtin.module` created by
    /// [`Context::create_module`].
    ///
    /// # Panics
    ///
    /// Panics if `module` has no region or an empty region.
    pub fn module_block(&self, module: OpRef) -> BlockRef {
        module
            .region(self, 0)
            .entry_block(self)
            .expect("module region has no entry block")
    }
}

impl UniqueArena<String> {
    /// String-keyed lookup that avoids allocating when the value is already
    /// interned.
    fn lookup_str(&self, s: &str) -> Option<u32> {
        // UniqueArena's map is keyed by String; this helper exists so the
        // fast path does not allocate for hits.
        self.lookup_with(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_roundtrip() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        assert_eq!(block.ops(&ctx).len(), 0);
        assert_eq!(module.name(&ctx).display(&ctx), "builtin.module");
    }

    /// Parallel verification shares one `&Context` across worker threads;
    /// this pin makes losing `Sync` (e.g. by reintroducing a `RefCell`
    /// field) a compile error rather than a runtime surprise.
    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Context>();
    }

    #[test]
    fn verdict_cache_is_shared_across_threads() {
        let ctx = Context::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ctx = &ctx;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        ctx.cache_verdict(t * 64 + i, i % 2 == 0);
                    }
                });
            }
        });
        assert_eq!(ctx.verdict_cache_len(), 256);
        for key in 0..256u64 {
            assert_eq!(ctx.cached_verdict(key), Some(key % 64 % 2 == 0));
        }
    }

    #[test]
    fn symbol_lookup_without_interning() {
        let mut ctx = Context::new();
        assert_eq!(ctx.symbol_lookup("never-seen"), None);
        let s = ctx.symbol("seen");
        assert_eq!(ctx.symbol_lookup("seen"), Some(s));
    }
}
