//! The IRDL bytecode substrate: a compact, versioned binary encoding for
//! modules, plus the reusable primitives (varints, string table, type/attr
//! constant pool, section framing) the other crates build their own
//! artifact encodings on.
//!
//! # Wire layout
//!
//! Every bytecode file is `magic(4) version(u8) section*`, where a section
//! is `tag(u8) length(varint) payload`. Length-prefixed sections make the
//! format skippable: a reader can map the file without decoding payloads
//! it does not care about (and `irdl-bc inspect` does exactly that).
//! Unknown section tags are skipped, which is the forward-compatibility
//! policy: readers reject a different *version* byte, but tolerate extra
//! sections within their version.
//!
//! A module file ([`MODULE_MAGIC`]) carries three sections:
//!
//! 1. **strings** — every string the module needs, length-prefixed,
//!    deduplicated, followed by the symbol intern order (see below);
//! 2. **pool** — a flat constant pool of types and attributes. Entries
//!    reference strings and *earlier* pool entries only, so the decoder
//!    materializes the pool in one forward pass with no recursion and no
//!    fixups;
//! 3. **ops** — the operation tree. Each operation is its name, operand
//!    value ids, result type pool ids, attribute (key, pool id) pairs,
//!    successor block indices, and length-prefixed nested regions.
//!
//! # Zero-copy rules
//!
//! Decoding works straight off the input `&[u8]`: no token stream, no
//! intermediate AST. Strings are interned once each via the string table
//! (`&str` subslices of the input go directly into the interner), pool
//! entries intern once each into the context's uniquing tables, and
//! operations are built through the ordinary [`OperationState`] builder
//! API — the decoded module is indistinguishable from a parsed one.
//!
//! Symbol-backed strings record their *intern order* (ascending symbol
//! index in the encoding context). The decoder pre-interns symbols in that
//! order, so two contexts that share an interning prefix (e.g. instances
//! of one `DialectBundle`) assign new symbols the same relative indices —
//! which keeps attribute dictionaries, sorted by symbol index, printing
//! byte-identically after a round-trip.
//!
//! Decoding is corruption-safe: malformed input produces a
//! [`Diagnostic`] naming the file offset, never a panic, and never an
//! allocation proportional to a corrupt count field (counts are validated
//! against the bytes actually remaining). Parametric type/attr verifiers
//! are *not* re-run during decode — verification stays a separate,
//! explicit pass, exactly as it is after parsing.

use std::collections::HashMap;

use crate::attrs::{AttrData, Attribute};
use crate::block::BlockRef;
use crate::context::Context;
use crate::diag::{Diagnostic, Result};
use crate::op::{OpName, OpRef, OperationState};
use crate::symbol::Symbol;
use crate::types::{FloatKind, Signedness, Type, TypeData};
use crate::value::Value;

/// Magic bytes of a module bytecode file (`.mlirbc`).
pub const MODULE_MAGIC: [u8; 4] = *b"IRBC";
/// Current bytecode format version (shared by modules and artifacts).
pub const VERSION: u8 = 1;

/// Section tags of a module file.
pub const SECTION_STRINGS: u8 = 1;
/// The type/attribute constant pool section.
pub const SECTION_POOL: u8 = 2;
/// The operation tree section.
pub const SECTION_OPS: u8 = 3;

/// Returns `true` when `bytes` starts with the module bytecode magic.
pub fn is_module_bytecode(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MODULE_MAGIC
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// An append-only byte buffer with varint primitives.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u64`.
    pub fn u64le(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an LEB128 varint.
    pub fn varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn zigzag(&mut self, value: i64) {
        self.varint(((value << 1) ^ (value >> 63)) as u64);
    }

    /// Appends a zigzag-encoded `i128` (LEB128 over the 128-bit pattern).
    pub fn zigzag128(&mut self, value: i128) {
        let mut v = ((value << 1) ^ (value >> 127)) as u128;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends `tag length payload` as one section.
    pub fn section(&mut self, tag: u8, payload: &ByteWriter) {
        self.u8(tag);
        self.varint(payload.buf.len() as u64);
        self.buf.extend_from_slice(&payload.buf);
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked forward reader over `&[u8]`.
///
/// Every read returns a [`Diagnostic`] (with the byte offset of the
/// failure) instead of panicking when the input is truncated or malformed.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    /// Offset of `buf[0]` in the whole file, for error messages of nested
    /// (section / region) readers.
    base: usize,
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole of `bytes`.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf: bytes, base: 0, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The absolute file offset of the next byte.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// A decode error at the current offset.
    pub fn error(&self, message: impl std::fmt::Display) -> Diagnostic {
        Diagnostic::new(format!("bytecode: {message} (at byte {})", self.offset()))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let Some(&byte) = self.buf.get(self.pos) else {
            return Err(self.error("unexpected end of input"));
        };
        self.pos += 1;
        Ok(byte)
    }

    /// Reads a little-endian `u64`.
    pub fn u64le(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(self.error("varint overflows 64 bits"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn zigzag(&mut self) -> Result<i64> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a zigzag-encoded `i128`.
    pub fn zigzag128(&mut self) -> Result<i128> {
        let mut value = 0u128;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 128 || (shift == 127 && byte > 1) {
                return Err(self.error("varint overflows 128 bits"));
            }
            value |= u128::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(((value >> 1) as i128) ^ -((value & 1) as i128));
            }
            shift += 7;
        }
    }

    /// Reads `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(self.error(format!(
                "truncated: need {len} byte(s), {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a length-prefixed UTF-8 string as a subslice of the input.
    pub fn str(&mut self) -> Result<&'a str> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| self.error("string is not valid UTF-8"))
    }

    /// Reads an element count and validates it against the bytes that
    /// remain (every element occupies at least `min_bytes` bytes), so a
    /// corrupt count cannot drive a giant allocation.
    pub fn count(&mut self, min_bytes: usize) -> Result<usize> {
        let count = self.varint()? as usize;
        if count.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(self.error(format!(
                "count {count} exceeds the {} byte(s) remaining",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Splits off a length-prefixed sub-reader (section / region payload).
    pub fn sub_reader(&mut self) -> Result<ByteReader<'a>> {
        let len = self.varint()? as usize;
        let base = self.offset();
        let bytes = self.take(len)?;
        Ok(ByteReader { buf: bytes, base, pos: 0 })
    }
}

// ---------------------------------------------------------------------------
// String table + constant pool (encoder)
// ---------------------------------------------------------------------------

/// Pool entry tags. Types and attributes share one id space; the tag
/// distinguishes them.
const T_INTEGER: u8 = 0;
const T_FLOAT: u8 = 1;
const T_INDEX: u8 = 2;
const T_FUNCTION: u8 = 3;
const T_VECTOR: u8 = 4;
const T_TENSOR: u8 = 5;
const T_MEMREF: u8 = 6;
const T_PARAMETRIC: u8 = 7;
const A_UNIT: u8 = 16;
const A_BOOL: u8 = 17;
const A_INTEGER: u8 = 18;
const A_FLOAT: u8 = 19;
const A_STRING: u8 = 20;
const A_ARRAY: u8 = 21;
const A_TYPE: u8 = 22;
const A_SYMBOL_REF: u8 = 23;
const A_ENUM: u8 = 24;
const A_LOCATION: u8 = 25;
const A_TYPE_ID: u8 = 26;
const A_NATIVE: u8 = 27;
const A_PARAMETRIC: u8 = 28;

fn float_kind_tag(kind: FloatKind) -> u8 {
    match kind {
        FloatKind::BF16 => 0,
        FloatKind::F16 => 1,
        FloatKind::F32 => 2,
        FloatKind::F64 => 3,
    }
}

fn float_kind_from(tag: u8) -> Option<FloatKind> {
    match tag {
        0 => Some(FloatKind::BF16),
        1 => Some(FloatKind::F16),
        2 => Some(FloatKind::F32),
        3 => Some(FloatKind::F64),
        _ => None,
    }
}

fn signedness_tag(s: Signedness) -> u8 {
    match s {
        Signedness::Signless => 0,
        Signedness::Signed => 1,
        Signedness::Unsigned => 2,
    }
}

fn signedness_from(tag: u8) -> Option<Signedness> {
    match tag {
        0 => Some(Signedness::Signless),
        1 => Some(Signedness::Signed),
        2 => Some(Signedness::Unsigned),
        _ => None,
    }
}

/// Builds the deduplicated string table and the type/attribute constant
/// pool while a body is being encoded against it.
///
/// Pool entries are emitted children-first, so every entry references only
/// strings and strictly earlier entries — the invariant that lets the
/// decoder materialize the pool in one forward pass.
#[derive(Default)]
pub struct Pool {
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    /// `(symbol index in the encoding context, string id)` for every
    /// symbol-backed string: emitted sorted so the decoder re-interns
    /// symbols in the encoder's relative order.
    symbol_order: Vec<(u32, u32)>,
    entries: Vec<Vec<u8>>,
    type_ids: HashMap<Type, u32>,
    attr_ids: HashMap<Attribute, u32>,
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Interns `s` into the string table.
    pub fn str_id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    /// Interns the string behind `sym`, recording its intern order.
    pub fn symbol_id(&mut self, ctx: &Context, sym: Symbol) -> u32 {
        let s = ctx.symbol_str(sym);
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.str_id(s);
        self.symbol_order.push((sym.index() as u32, id));
        id
    }

    /// Interns both halves of an operation name.
    pub fn op_name_ids(&mut self, ctx: &Context, name: OpName) -> (u32, u32) {
        (self.symbol_id(ctx, name.dialect), self.symbol_id(ctx, name.name))
    }

    /// Returns the pool id of `ty`, encoding it (and its children) on
    /// first use.
    pub fn type_id(&mut self, ctx: &Context, ty: Type) -> u32 {
        if let Some(&id) = self.type_ids.get(&ty) {
            return id;
        }
        let mut w = ByteWriter::new();
        match ctx.type_data(ty).clone() {
            TypeData::Integer { width, signedness } => {
                w.u8(T_INTEGER);
                w.varint(u64::from(width));
                w.u8(signedness_tag(signedness));
            }
            TypeData::Float(kind) => {
                w.u8(T_FLOAT);
                w.u8(float_kind_tag(kind));
            }
            TypeData::Index => w.u8(T_INDEX),
            TypeData::Function { inputs, results } => {
                w.u8(T_FUNCTION);
                w.varint(inputs.len() as u64);
                for input in inputs {
                    let id = self.type_id(ctx, input);
                    w.varint(u64::from(id));
                }
                w.varint(results.len() as u64);
                for result in results {
                    let id = self.type_id(ctx, result);
                    w.varint(u64::from(id));
                }
            }
            TypeData::Vector { dims, elem } => {
                w.u8(T_VECTOR);
                w.varint(dims.len() as u64);
                for dim in dims {
                    w.varint(dim);
                }
                let id = self.type_id(ctx, elem);
                w.varint(u64::from(id));
            }
            TypeData::Tensor { dims, elem } | TypeData::MemRef { dims, elem } => {
                w.u8(if matches!(ctx.type_data(ty), TypeData::Tensor { .. }) {
                    T_TENSOR
                } else {
                    T_MEMREF
                });
                w.varint(dims.len() as u64);
                for dim in dims {
                    w.zigzag(dim);
                }
                let id = self.type_id(ctx, elem);
                w.varint(u64::from(id));
            }
            TypeData::Parametric { dialect, name, params } => {
                w.u8(T_PARAMETRIC);
                let d = self.symbol_id(ctx, dialect);
                let n = self.symbol_id(ctx, name);
                w.varint(u64::from(d));
                w.varint(u64::from(n));
                w.varint(params.len() as u64);
                for param in params {
                    let id = self.attr_id(ctx, param);
                    w.varint(u64::from(id));
                }
            }
        }
        let id = self.entries.len() as u32;
        self.entries.push(w.into_vec());
        self.type_ids.insert(ty, id);
        id
    }

    /// Returns the pool id of `attr`, encoding it (and its children) on
    /// first use.
    pub fn attr_id(&mut self, ctx: &Context, attr: Attribute) -> u32 {
        if let Some(&id) = self.attr_ids.get(&attr) {
            return id;
        }
        let mut w = ByteWriter::new();
        match ctx.attr_data(attr).clone() {
            AttrData::Unit => w.u8(A_UNIT),
            AttrData::Bool(b) => {
                w.u8(A_BOOL);
                w.u8(u8::from(b));
            }
            AttrData::Integer { value, ty } => {
                w.u8(A_INTEGER);
                w.zigzag128(value);
                let id = self.type_id(ctx, ty);
                w.varint(u64::from(id));
            }
            AttrData::Float { bits, kind } => {
                w.u8(A_FLOAT);
                w.u64le(bits);
                w.u8(float_kind_tag(kind));
            }
            AttrData::String(s) => {
                w.u8(A_STRING);
                let id = self.str_id(&s);
                w.varint(u64::from(id));
            }
            AttrData::Array(items) => {
                w.u8(A_ARRAY);
                w.varint(items.len() as u64);
                for item in items {
                    let id = self.attr_id(ctx, item);
                    w.varint(u64::from(id));
                }
            }
            AttrData::TypeAttr(ty) => {
                w.u8(A_TYPE);
                let id = self.type_id(ctx, ty);
                w.varint(u64::from(id));
            }
            AttrData::SymbolRef(sym) => {
                w.u8(A_SYMBOL_REF);
                let id = self.symbol_id(ctx, sym);
                w.varint(u64::from(id));
            }
            AttrData::EnumValue { dialect, enum_name, variant } => {
                w.u8(A_ENUM);
                for sym in [dialect, enum_name, variant] {
                    let id = self.symbol_id(ctx, sym);
                    w.varint(u64::from(id));
                }
            }
            AttrData::Location { file, line, col } => {
                w.u8(A_LOCATION);
                let id = self.str_id(&file);
                w.varint(u64::from(id));
                w.varint(u64::from(line));
                w.varint(u64::from(col));
            }
            AttrData::TypeId(sym) => {
                w.u8(A_TYPE_ID);
                let id = self.symbol_id(ctx, sym);
                w.varint(u64::from(id));
            }
            AttrData::Native { kind, text } => {
                w.u8(A_NATIVE);
                let k = self.symbol_id(ctx, kind);
                let t = self.str_id(&text);
                w.varint(u64::from(k));
                w.varint(u64::from(t));
            }
            AttrData::Parametric { dialect, name, params } => {
                w.u8(A_PARAMETRIC);
                let d = self.symbol_id(ctx, dialect);
                let n = self.symbol_id(ctx, name);
                w.varint(u64::from(d));
                w.varint(u64::from(n));
                w.varint(params.len() as u64);
                for param in params {
                    let id = self.attr_id(ctx, param);
                    w.varint(u64::from(id));
                }
            }
        }
        let id = self.entries.len() as u32;
        self.entries.push(w.into_vec());
        self.attr_ids.insert(attr, id);
        id
    }

    /// Emits the strings and pool sections into `out`.
    pub fn emit_sections(&mut self, out: &mut ByteWriter) {
        let mut strings = ByteWriter::new();
        strings.varint(self.strings.len() as u64);
        for s in &self.strings {
            strings.str(s);
        }
        self.symbol_order.sort_unstable();
        strings.varint(self.symbol_order.len() as u64);
        for &(_, id) in &self.symbol_order {
            strings.varint(u64::from(id));
        }
        out.section(SECTION_STRINGS, &strings);

        let mut pool = ByteWriter::new();
        pool.varint(self.entries.len() as u64);
        for entry in &self.entries {
            pool.bytes(entry);
        }
        out.section(SECTION_POOL, &pool);
    }
}

// ---------------------------------------------------------------------------
// String table + constant pool (decoder)
// ---------------------------------------------------------------------------

/// One materialized pool value.
#[derive(Clone, Copy)]
enum PoolValue {
    Type(Type),
    Attr(Attribute),
}

/// The decoded string table and constant pool of one bytecode file.
pub struct DecodedPool<'a> {
    strings: Vec<&'a str>,
    symbols: Vec<Option<Symbol>>,
    values: Vec<PoolValue>,
}

impl<'a> DecodedPool<'a> {
    /// An empty pool (for files without pool sections).
    pub fn empty() -> DecodedPool<'a> {
        DecodedPool { strings: Vec::new(), symbols: Vec::new(), values: Vec::new() }
    }

    /// Decodes a strings section payload. Symbol-order entries are
    /// interned into `ctx` immediately, reproducing the encoder's relative
    /// symbol order.
    pub fn read_strings(&mut self, ctx: &mut Context, r: &mut ByteReader<'a>) -> Result<()> {
        let count = r.count(1)?;
        self.strings = Vec::with_capacity(count);
        for _ in 0..count {
            self.strings.push(r.str()?);
        }
        self.symbols = vec![None; self.strings.len()];
        let order = r.count(1)?;
        for _ in 0..order {
            let id = r.varint()? as usize;
            let Some(&s) = self.strings.get(id) else {
                return Err(r.error(format!("symbol order references string {id} of {}", self.strings.len())));
            };
            self.symbols[id] = Some(ctx.symbol(s));
        }
        Ok(())
    }

    /// Decodes a pool section payload, interning every entry into `ctx`.
    pub fn read_pool(&mut self, ctx: &mut Context, r: &mut ByteReader<'a>) -> Result<()> {
        let count = r.count(1)?;
        self.values = Vec::with_capacity(count);
        for index in 0..count {
            let tag = r.u8()?;
            let value = match tag {
                T_INTEGER => {
                    let width = r.varint()? as u32;
                    let signedness = signedness_from(r.u8()?)
                        .ok_or_else(|| r.error("invalid signedness tag"))?;
                    PoolValue::Type(ctx.intern_type(TypeData::Integer { width, signedness }))
                }
                T_FLOAT => {
                    let kind = float_kind_from(r.u8()?)
                        .ok_or_else(|| r.error("invalid float kind tag"))?;
                    PoolValue::Type(ctx.intern_type(TypeData::Float(kind)))
                }
                T_INDEX => PoolValue::Type(ctx.intern_type(TypeData::Index)),
                T_FUNCTION => {
                    let inputs = self.type_list(index, r)?;
                    let results = self.type_list(index, r)?;
                    PoolValue::Type(ctx.intern_type(TypeData::Function { inputs, results }))
                }
                T_VECTOR => {
                    let n = r.count(1)?;
                    let mut dims = Vec::with_capacity(n);
                    for _ in 0..n {
                        dims.push(r.varint()?);
                    }
                    let elem = self.type_ref(index, r)?;
                    PoolValue::Type(ctx.intern_type(TypeData::Vector { dims, elem }))
                }
                T_TENSOR | T_MEMREF => {
                    let n = r.count(1)?;
                    let mut dims = Vec::with_capacity(n);
                    for _ in 0..n {
                        dims.push(r.zigzag()?);
                    }
                    let elem = self.type_ref(index, r)?;
                    let data = if tag == T_TENSOR {
                        TypeData::Tensor { dims, elem }
                    } else {
                        TypeData::MemRef { dims, elem }
                    };
                    PoolValue::Type(ctx.intern_type(data))
                }
                T_PARAMETRIC => {
                    let dialect = self.symbol(ctx, r)?;
                    let name = self.symbol(ctx, r)?;
                    let params = self.attr_list(index, r)?;
                    PoolValue::Type(ctx.intern_type(TypeData::Parametric { dialect, name, params }))
                }
                A_UNIT => PoolValue::Attr(ctx.intern_attr(AttrData::Unit)),
                A_BOOL => PoolValue::Attr(ctx.intern_attr(AttrData::Bool(r.u8()? != 0))),
                A_INTEGER => {
                    let value = r.zigzag128()?;
                    let ty = self.type_ref(index, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::Integer { value, ty }))
                }
                A_FLOAT => {
                    let bits = r.u64le()?;
                    let kind = float_kind_from(r.u8()?)
                        .ok_or_else(|| r.error("invalid float kind tag"))?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::Float { bits, kind }))
                }
                A_STRING => {
                    let s = self.string(r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::String(s.into())))
                }
                A_ARRAY => {
                    let items = self.attr_list(index, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::Array(items)))
                }
                A_TYPE => {
                    let ty = self.type_ref(index, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::TypeAttr(ty)))
                }
                A_SYMBOL_REF => {
                    let sym = self.symbol(ctx, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::SymbolRef(sym)))
                }
                A_ENUM => {
                    let dialect = self.symbol(ctx, r)?;
                    let enum_name = self.symbol(ctx, r)?;
                    let variant = self.symbol(ctx, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::EnumValue {
                        dialect,
                        enum_name,
                        variant,
                    }))
                }
                A_LOCATION => {
                    let file = self.string(r)?.into();
                    let line = r.varint()? as u32;
                    let col = r.varint()? as u32;
                    PoolValue::Attr(ctx.intern_attr(AttrData::Location { file, line, col }))
                }
                A_TYPE_ID => {
                    let sym = self.symbol(ctx, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::TypeId(sym)))
                }
                A_NATIVE => {
                    let kind = self.symbol(ctx, r)?;
                    let text = self.string(r)?.into();
                    PoolValue::Attr(ctx.intern_attr(AttrData::Native { kind, text }))
                }
                A_PARAMETRIC => {
                    let dialect = self.symbol(ctx, r)?;
                    let name = self.symbol(ctx, r)?;
                    let params = self.attr_list(index, r)?;
                    PoolValue::Attr(ctx.intern_attr(AttrData::Parametric { dialect, name, params }))
                }
                other => return Err(r.error(format!("unknown pool entry tag {other}"))),
            };
            self.values.push(value);
        }
        Ok(())
    }

    /// The string behind table id read from `r`.
    pub fn string(&self, r: &mut ByteReader<'_>) -> Result<&'a str> {
        let id = r.varint()? as usize;
        self.strings
            .get(id)
            .copied()
            .ok_or_else(|| r.error(format!("string id {id} out of range ({})", self.strings.len())))
    }

    /// The symbol behind a string-table id read from `r`, interning on
    /// first use.
    pub fn symbol(&mut self, ctx: &mut Context, r: &mut ByteReader<'_>) -> Result<Symbol> {
        let id = r.varint()? as usize;
        let Some(slot) = self.symbols.get_mut(id) else {
            return Err(r.error(format!("string id {id} out of range ({})", self.strings.len())));
        };
        if let Some(sym) = *slot {
            return Ok(sym);
        }
        let sym = ctx.symbol(self.strings[id]);
        *slot = Some(sym);
        Ok(sym)
    }

    /// The type behind a pool id read from `r`. `limit` bounds the ids a
    /// pool entry under construction may reference (its own index);
    /// `usize::MAX` for body readers.
    fn type_at(&self, limit: usize, r: &mut ByteReader<'_>) -> Result<Type> {
        let id = r.varint()? as usize;
        if id >= limit.min(self.values.len()) {
            return Err(r.error(format!("pool id {id} out of range ({})", self.values.len())));
        }
        match self.values[id] {
            PoolValue::Type(ty) => Ok(ty),
            PoolValue::Attr(_) => Err(r.error(format!("pool id {id} is an attribute, expected a type"))),
        }
    }

    fn attr_at(&self, limit: usize, r: &mut ByteReader<'_>) -> Result<Attribute> {
        let id = r.varint()? as usize;
        if id >= limit.min(self.values.len()) {
            return Err(r.error(format!("pool id {id} out of range ({})", self.values.len())));
        }
        match self.values[id] {
            PoolValue::Attr(attr) => Ok(attr),
            PoolValue::Type(_) => Err(r.error(format!("pool id {id} is a type, expected an attribute"))),
        }
    }

    /// Reads a type pool reference from a body section.
    pub fn body_type(&self, r: &mut ByteReader<'_>) -> Result<Type> {
        self.type_at(usize::MAX, r)
    }

    /// Reads an attribute pool reference from a body section.
    pub fn body_attr(&self, r: &mut ByteReader<'_>) -> Result<Attribute> {
        self.attr_at(usize::MAX, r)
    }

    fn type_ref(&self, entry_index: usize, r: &mut ByteReader<'_>) -> Result<Type> {
        self.type_at(entry_index, r)
    }

    fn type_list(&self, entry_index: usize, r: &mut ByteReader<'_>) -> Result<Vec<Type>> {
        let n = r.count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.type_at(entry_index, r)?);
        }
        Ok(out)
    }

    fn attr_list(&self, entry_index: usize, r: &mut ByteReader<'_>) -> Result<Vec<Attribute>> {
        let n = r.count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.attr_at(entry_index, r)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Module encoding
// ---------------------------------------------------------------------------

struct ModuleEncoder<'c> {
    ctx: &'c Context,
    pool: Pool,
    /// Dense value numbering in definition order.
    value_ids: HashMap<Value, u32>,
}

impl<'c> ModuleEncoder<'c> {
    fn value_id(&self, w: &ByteWriter, value: Value) -> Result<u32> {
        self.value_ids.get(&value).copied().ok_or_else(|| {
            Diagnostic::new(format!(
                "bytecode: operand uses a value before its definition (at byte {})",
                w.len()
            ))
        })
    }

    fn encode_op(
        &mut self,
        w: &mut ByteWriter,
        op: OpRef,
        blocks: &HashMap<BlockRef, u32>,
    ) -> Result<()> {
        let ctx = self.ctx;
        let name = op.name(ctx);
        let (d, n) = self.pool.op_name_ids(ctx, name);
        w.varint(u64::from(d));
        w.varint(u64::from(n));

        let operands = op.operands(ctx).to_vec();
        w.varint(operands.len() as u64);
        for operand in operands {
            let id = self.value_id(w, operand)?;
            w.varint(u64::from(id));
        }

        let result_types = op.result_types(ctx).to_vec();
        w.varint(result_types.len() as u64);
        for ty in result_types {
            let id = self.pool.type_id(ctx, ty);
            w.varint(u64::from(id));
        }

        let attributes = op.attributes(ctx).to_vec();
        w.varint(attributes.len() as u64);
        for (key, value) in attributes {
            let k = self.pool.symbol_id(ctx, key);
            let v = self.pool.attr_id(ctx, value);
            w.varint(u64::from(k));
            w.varint(u64::from(v));
        }

        let successors = op.successors(ctx).to_vec();
        w.varint(successors.len() as u64);
        for successor in successors {
            let Some(&index) = blocks.get(&successor) else {
                return Err(Diagnostic::new(
                    "bytecode: successor references a block outside the enclosing region",
                ));
            };
            w.varint(u64::from(index));
        }

        let regions = op.regions(ctx).to_vec();
        w.varint(regions.len() as u64);
        for region in regions {
            let mut body = ByteWriter::new();
            self.encode_region(&mut body, region)?;
            w.varint(body.len() as u64);
            w.bytes(&body.into_vec());
        }

        // Results are numbered after the regions, mirroring the text
        // parser (a region body cannot reference its enclosing op's
        // results).
        for (index, value) in op.results(ctx).enumerate() {
            let id = self.value_ids.len() as u32;
            debug_assert!(matches!(value, Value::OpResult { index: i, .. } if i as usize == index));
            self.value_ids.insert(value, id);
        }
        Ok(())
    }

    fn encode_region(&mut self, w: &mut ByteWriter, region: crate::RegionRef) -> Result<()> {
        let ctx = self.ctx;
        let block_list = ctx.region_data(region).blocks.clone();
        let mut blocks = HashMap::with_capacity(block_list.len());
        w.varint(block_list.len() as u64);
        for (index, &block) in block_list.iter().enumerate() {
            blocks.insert(block, index as u32);
            let args = ctx.block_data(block).arg_types.clone();
            w.varint(args.len() as u64);
            for (arg_index, ty) in args.into_iter().enumerate() {
                let id = self.pool.type_id(ctx, ty);
                w.varint(u64::from(id));
                let value = Value::BlockArg { block, index: arg_index as u32 };
                let vid = self.value_ids.len() as u32;
                self.value_ids.insert(value, vid);
            }
        }
        for &block in &block_list {
            let ops = ctx.block_data(block).ops.clone();
            w.varint(ops.len() as u64);
            for op in ops {
                self.encode_op(w, op, &blocks)?;
            }
        }
        Ok(())
    }
}

/// Encodes `module` (any operation tree) into bytecode.
///
/// # Errors
///
/// Returns a diagnostic when the module is not encodable — an operand used
/// before its definition in structural order, or a successor outside its
/// enclosing region (both are un-printable IR as well).
pub fn encode_module(ctx: &Context, module: OpRef) -> Result<Vec<u8>> {
    let mut enc = ModuleEncoder { ctx, pool: Pool::new(), value_ids: HashMap::new() };
    let mut body = ByteWriter::new();
    enc.encode_op(&mut body, module, &HashMap::new())?;

    let mut out = ByteWriter::new();
    out.bytes(&MODULE_MAGIC);
    out.u8(VERSION);
    enc.pool.emit_sections(&mut out);
    out.section(SECTION_OPS, &body);
    Ok(out.into_vec())
}

// ---------------------------------------------------------------------------
// Module decoding
// ---------------------------------------------------------------------------

struct ModuleDecoder<'c, 'a> {
    ctx: &'c mut Context,
    pool: DecodedPool<'a>,
    values: Vec<Value>,
}

impl<'c, 'a> ModuleDecoder<'c, 'a> {
    fn decode_op(&mut self, r: &mut ByteReader<'a>, blocks: &[BlockRef]) -> Result<OpRef> {
        let dialect = self.pool.symbol(self.ctx, r)?;
        let name = self.pool.symbol(self.ctx, r)?;
        let op_name = OpName { dialect, name };

        // Decode straight into the state's inline lists: small ops (the
        // common case) build without a single heap allocation here.
        let mut state = OperationState::new(op_name);

        let n_operands = r.count(1)?;
        for _ in 0..n_operands {
            let id = r.varint()? as usize;
            let Some(&value) = self.values.get(id) else {
                return Err(r.error(format!(
                    "operand value id {id} out of range ({})",
                    self.values.len()
                )));
            };
            state.operands.push(value);
        }

        let n_results = r.count(1)?;
        for _ in 0..n_results {
            state.result_types.push(self.pool.body_type(r)?);
        }

        let n_attrs = r.count(1)?;
        for _ in 0..n_attrs {
            let key = self.pool.symbol(self.ctx, r)?;
            let value = self.pool.body_attr(r)?;
            state.attributes.push((key, value));
        }

        let n_successors = r.count(1)?;
        for _ in 0..n_successors {
            let index = r.varint()? as usize;
            let Some(&block) = blocks.get(index) else {
                return Err(r.error(format!(
                    "successor block index {index} out of range ({})",
                    blocks.len()
                )));
            };
            state.successors.push(block);
        }

        let n_regions = r.count(1)?;
        for _ in 0..n_regions {
            let mut body = r.sub_reader()?;
            let region = self.decode_region(&mut body)?;
            state.regions.push(region);
            if !body.is_empty() {
                return Err(body.error("trailing bytes after region payload"));
            }
        }

        let op = self.ctx.create_op(state);
        for value in op.results(self.ctx) {
            self.values.push(value);
        }
        Ok(op)
    }

    fn decode_region(&mut self, r: &mut ByteReader<'a>) -> Result<crate::RegionRef> {
        let region = self.ctx.create_region();
        let n_blocks = r.count(1)?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let n_args = r.count(1)?;
            let mut arg_types = Vec::with_capacity(n_args);
            for _ in 0..n_args {
                arg_types.push(self.pool.body_type(r)?);
            }
            let n_args = arg_types.len();
            let block = self.ctx.create_block(arg_types);
            for index in 0..n_args {
                self.values.push(Value::BlockArg { block, index: index as u32 });
            }
            self.ctx.append_block(region, block);
            blocks.push(block);
        }
        for &block in &blocks {
            let n_ops = r.count(1)?;
            for _ in 0..n_ops {
                let op = self.decode_op(r, &blocks)?;
                self.ctx.append_op(block, op);
            }
        }
        Ok(region)
    }
}

/// Decodes a module encoded by [`encode_module`] into `ctx`, returning the
/// root operation (detached, like [`crate::parse::parse_module`]'s result).
///
/// # Errors
///
/// Returns a diagnostic (never panics) on bad magic, an unsupported
/// version, truncated or trailing bytes, unknown tags, or out-of-range
/// string / pool / value / block references.
pub fn decode_module(ctx: &mut Context, bytes: &[u8]) -> Result<OpRef> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4).map_err(|_| Diagnostic::new("bytecode: input shorter than magic"))?;
    if magic != MODULE_MAGIC {
        return Err(Diagnostic::new(format!(
            "bytecode: bad magic {magic:?} (expected {MODULE_MAGIC:?}; not a module bytecode file)"
        )));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(Diagnostic::new(format!(
            "bytecode: unsupported version {version} (this reader supports {VERSION})"
        )));
    }

    let mut dec = ModuleDecoder { ctx, pool: DecodedPool::empty(), values: Vec::new() };
    let mut seen_strings = false;
    let mut seen_pool = false;
    let mut root = None;
    while !r.is_empty() {
        let tag = r.u8()?;
        let mut section = r.sub_reader()?;
        match tag {
            SECTION_STRINGS => {
                dec.pool.read_strings(dec.ctx, &mut section)?;
                seen_strings = true;
            }
            SECTION_POOL => {
                if !seen_strings {
                    return Err(section.error("pool section precedes strings section"));
                }
                dec.pool.read_pool(dec.ctx, &mut section)?;
                seen_pool = true;
            }
            SECTION_OPS => {
                if !seen_pool {
                    return Err(section.error("ops section precedes pool section"));
                }
                let op = dec.decode_op(&mut section, &[])?;
                if !section.is_empty() {
                    return Err(section.error("trailing bytes after root operation"));
                }
                root = Some(op);
            }
            // Unknown sections are skippable by design.
            _ => {}
        }
    }
    root.ok_or_else(|| Diagnostic::new("bytecode: no ops section"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::op_to_string;

    #[test]
    fn varint_roundtrip() {
        let mut w = ByteWriter::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        w.zigzag(-1);
        w.zigzag(i64::MIN);
        w.zigzag128(i128::MIN);
        w.zigzag128(170_141_183_460_469_231_731_687_303_715_884_105_727);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert_eq!(r.zigzag().unwrap(), -1);
        assert_eq!(r.zigzag().unwrap(), i64::MIN);
        assert_eq!(r.zigzag128().unwrap(), i128::MIN);
        assert_eq!(r.zigzag128().unwrap(), i128::MAX);
        assert!(r.is_empty());
    }

    fn sample_module(ctx: &mut Context) -> OpRef {
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let name = ctx.op_name("test", "const");
        let key = ctx.symbol("value");
        let ty = ctx.type_attr(f32);
        let op = ctx.create_op(
            OperationState::new(name).add_result_types([f32, i32]).add_attribute(key, ty),
        );
        ctx.append_op(block, op);
        let use_name = ctx.op_name("test", "use");
        let use_op = ctx.create_op(
            OperationState::new(use_name).add_operands([op.result(ctx, 1), op.result(ctx, 0)]),
        );
        ctx.append_op(block, use_op);
        module
    }

    #[test]
    fn module_roundtrip_is_print_identical() {
        let mut ctx = Context::new();
        let module = sample_module(&mut ctx);
        let printed = op_to_string(&ctx, module);
        let bytes = encode_module(&ctx, module).unwrap();

        let mut ctx2 = Context::new();
        let module2 = decode_module(&mut ctx2, &bytes).unwrap();
        assert_eq!(op_to_string(&ctx2, module2), printed);
    }

    #[test]
    fn bad_magic_version_and_truncation_are_diagnostics() {
        let mut ctx = Context::new();
        let module = sample_module(&mut ctx);
        let bytes = encode_module(&ctx, module).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let mut ctx2 = Context::new();
        let err = decode_module(&mut ctx2, &bad_magic).unwrap_err();
        assert!(err.message().contains("bad magic"), "{err}");

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xfe;
        let err = decode_module(&mut ctx2, &bad_version).unwrap_err();
        assert!(err.message().contains("unsupported version"), "{err}");

        // Every truncation must fail cleanly (no panic, no success: a
        // shorter file always loses the ops section or part of it).
        for len in 0..bytes.len() {
            let mut ctx3 = Context::new();
            assert!(
                decode_module(&mut ctx3, &bytes[..len]).is_err(),
                "truncation to {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let mut ctx = Context::new();
        let module = sample_module(&mut ctx);
        let bytes = encode_module(&ctx, module).unwrap();
        for index in 5..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = bytes.clone();
                corrupt[index] ^= flip;
                let mut ctx2 = Context::new();
                // Either outcome is fine; panicking is not.
                let _ = decode_module(&mut ctx2, &corrupt);
            }
        }
    }
}
