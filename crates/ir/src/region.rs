//! Regions: control-flow graphs nested inside operations.

use crate::block::BlockRef;
use crate::context::Context;
use crate::entity::entity_handle;
use crate::op::OpRef;

entity_handle! {
    /// A handle to a region stored in a [`Context`].
    RegionRef
}

/// The payload of a region: an ordered list of blocks, the first being the
/// entry block.
#[derive(Debug, Clone, Default)]
pub struct RegionData {
    pub(crate) blocks: Vec<BlockRef>,
    pub(crate) parent_op: Option<OpRef>,
}

impl RegionRef {
    /// The blocks of the region, entry block first.
    pub fn blocks(self, ctx: &Context) -> &[BlockRef] {
        &ctx.region_data(self).blocks
    }

    /// The entry block, if the region is non-empty.
    pub fn entry_block(self, ctx: &Context) -> Option<BlockRef> {
        ctx.region_data(self).blocks.first().copied()
    }

    /// The operation owning this region, if attached.
    pub fn parent_op(self, ctx: &Context) -> Option<OpRef> {
        ctx.region_data(self).parent_op
    }

    /// Returns `true` if the region contains no blocks.
    pub fn is_empty(self, ctx: &Context) -> bool {
        ctx.region_data(self).blocks.is_empty()
    }

    /// Returns `true` if this region is still live in the context.
    pub fn is_live(self, ctx: &Context) -> bool {
        ctx.region_is_live(self)
    }
}

impl Context {
    /// Creates a detached, empty region.
    pub fn create_region(&mut self) -> RegionRef {
        RegionRef(self.regions_mut().alloc(RegionData::default()))
    }

    /// Convenience: creates a region with a single empty entry block.
    pub fn create_region_with_entry(
        &mut self,
        arg_types: impl IntoIterator<Item = crate::Type>,
    ) -> (RegionRef, BlockRef) {
        let region = self.create_region();
        let entry = self.create_block(arg_types);
        self.append_block(region, entry);
        (region, entry)
    }
}

#[cfg(test)]
mod tests {
    use crate::Context;

    #[test]
    fn region_with_entry() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        let (region, entry) = ctx.create_region_with_entry([i32]);
        assert_eq!(region.entry_block(&ctx), Some(entry));
        assert!(!region.is_empty(&ctx));
        assert_eq!(entry.num_args(&ctx), 1);
    }
}
