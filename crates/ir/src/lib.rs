//! An extensible SSA intermediate-representation substrate, modeled after
//! MLIR's core IR (operations, regions, blocks, values, interned types and
//! attributes, dynamically registered dialects).
//!
//! This crate is the substrate on which the IRDL definition language is
//! built: dialects, operations, types, and attributes are *data* registered
//! at runtime in a [`Context`], not Rust types fixed at compile time. An
//! IRDL specification compiles down to [`dialect::OpInfo`] /
//! [`dialect::TypeDefInfo`] / [`dialect::AttrDefInfo`] records holding
//! verifier and syntax hooks, and this crate evaluates those hooks during
//! [`verify::verify_op`] and textual round-tripping.
//!
//! # Architecture
//!
//! - [`Context`] owns append-only uniquing tables for [`Symbol`]s, [`Type`]s,
//!   and [`Attribute`]s, slot-map arenas for operations / blocks / regions,
//!   and the [`dialect::DialectRegistry`]. All entity handles are `Copy`
//!   indices into the context; reads take `&Context` and mutation takes
//!   `&mut Context`.
//! - Operations form a tree: an operation holds regions, a region holds
//!   blocks, a block holds operations. SSA values are either operation
//!   results or block arguments, and def-use chains are maintained on every
//!   mutation.
//! - [`mod@print`] and [`parse`] implement the generic textual format (a close
//!   cousin of MLIR's `"dialect.op"(%a, %b) : (T, T) -> T` syntax), with
//!   hooks for dialect-defined custom syntax.
//!
//! # Example
//!
//! ```
//! use irdl_ir::{Context, OperationState};
//!
//! let mut ctx = Context::new();
//! let f32 = ctx.f32_type();
//! let module = ctx.create_module();
//! let body = ctx.module_block(module);
//! // Create an unregistered constant-like operation with one result.
//! let name = ctx.op_name("test", "const");
//! let op = ctx.create_op(OperationState::new(name).add_result_types([f32]));
//! ctx.append_op(body, op);
//! assert_eq!(op.num_results(&ctx), 1);
//! ```

pub mod attrs;
pub mod block;
pub mod builder;
pub mod bytecode;
pub mod builtin;
pub mod context;
pub mod diag;
pub mod dialect;
pub mod dominance;
pub mod entity;
pub mod fasthash;
pub mod inline_vec;
pub mod journal;
pub mod lexer;
pub mod op;
pub mod parse;
pub mod print;
pub mod region;
pub mod symbol;
pub mod types;
pub mod value;
pub mod verify;
pub mod walk;

pub use attrs::{AttrData, Attribute};
pub use block::{BlockData, BlockRef};
pub use builder::OpBuilder;
pub use context::{Context, UseIter};
pub use diag::{Diagnostic, Result};
pub use inline_vec::InlineVec;
pub use dialect::{
    AttrDefInfo, DialectInfo, DialectRegistry, EnumInfo, OpInfo, OpSyntax, OpVerifier, ParamKind,
    ParamsVerifier, TypeDefInfo,
};
pub use dominance::DominanceCache;
pub use journal::ChangeJournal;
pub use op::{
    AttrList, OpName, OpRef, OperandList, OperationData, OperationState, RegionList, ResultValues,
    SuccessorList, TypeList,
};
pub use verify::{IncrementalVerifier, ModuleVerifier};
pub use region::{RegionData, RegionRef};
pub use symbol::Symbol;
pub use types::{FloatKind, Signedness, Type, TypeData};
pub use value::{Use, Value};
