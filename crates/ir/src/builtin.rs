//! The `builtin` dialect: the minimal set of operations the substrate
//! itself needs (as in MLIR, the builtin dialect is deliberately tiny; the
//! paper counts it among the three smallest dialects).

use std::sync::Arc;

use crate::context::Context;
use crate::diag::Diagnostic;
use crate::dialect::{DialectInfo, OpInfo};
use crate::op::OpRef;

/// Registers the builtin dialect into `ctx`.
///
/// Registered operations:
/// - `builtin.module`: a no-operand, no-result operation with a single
///   region holding the top-level IR.
/// - `builtin.unrealized_conversion_cast`: an N-to-M value cast used while
///   converting between dialects.
pub fn register_builtin_dialect(ctx: &mut Context) {
    let name = ctx.symbol("builtin");
    let mut dialect = DialectInfo::new(name);
    dialect.summary = "MLIR-style builtin operations".to_string();

    let module = ctx.symbol("module");
    dialect.add_op(OpInfo {
        name: module,
        summary: "A top-level container operation".to_string(),
        is_terminator: false,
        verifier: Some(Arc::new(verify_module)),
        syntax: None,
        decl: crate::dialect::OpDeclStats {
            region_defs: 1,
            ..Default::default()
        },
    });

    let cast = ctx.symbol("unrealized_conversion_cast");
    dialect.add_op(OpInfo {
        name: cast,
        summary: "An unrealized conversion from one set of types to another".to_string(),
        is_terminator: false,
        verifier: None,
        syntax: None,
        decl: crate::dialect::OpDeclStats {
            operand_defs: 1,
            variadic_operands: 1,
            result_defs: 1,
            variadic_results: 1,
            ..Default::default()
        },
    });

    ctx.register_dialect(dialect);
}

fn verify_module(ctx: &Context, op: OpRef) -> crate::Result<()> {
    if op.num_operands(ctx) != 0 || op.num_results(ctx) != 0 {
        return Err(Diagnostic::new("builtin.module takes no operands and produces no results"));
    }
    if op.num_regions(ctx) != 1 {
        return Err(Diagnostic::new("builtin.module expects exactly one region"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperationState;

    #[test]
    fn builtin_is_registered_by_default() {
        let mut ctx = Context::new();
        let builtin = ctx.symbol("builtin");
        let module = ctx.symbol("module");
        assert!(ctx.registry().op_info(builtin, module).is_some());
    }

    #[test]
    fn module_verifier_rejects_results() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let (region, _) = ctx.create_region_with_entry([]);
        let name = ctx.op_name("builtin", "module");
        let bad = ctx.create_op(
            OperationState::new(name).add_result_types([f32]).add_regions([region]),
        );
        let info = ctx.op_info(bad).unwrap();
        let verifier = info.verifier.clone().unwrap();
        assert!(verifier.verify(&ctx, bad).is_err());
    }
}
