//! SSA values: operation results and block arguments.

use crate::block::BlockRef;
use crate::context::Context;
use crate::op::OpRef;
use crate::types::Type;

/// An SSA value: defined exactly once, either as an operation result or as
/// a block argument (the MLIR equivalent of a phi node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Defining operation.
        op: OpRef,
        /// Result position.
        index: u32,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockRef,
        /// Argument position.
        index: u32,
    },
}

/// A single use of a value: the `operand_index`-th operand of `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Use {
    /// The operation using the value.
    pub op: OpRef,
    /// Which operand slot refers to the value.
    pub operand_index: u32,
}

impl Value {
    /// The type of this value.
    pub fn ty(self, ctx: &Context) -> Type {
        match self {
            Value::OpResult { op, index } => op.result_types(ctx)[index as usize],
            Value::BlockArg { block, index } => block.arg_types(ctx)[index as usize],
        }
    }

    /// The operation defining this value, if it is an op result.
    pub fn defining_op(self, ctx: &Context) -> Option<OpRef> {
        let _ = ctx;
        match self {
            Value::OpResult { op, .. } => Some(op),
            Value::BlockArg { .. } => None,
        }
    }

    /// The block this value belongs to: the parent block of the defining
    /// operation, or the owning block for block arguments.
    pub fn parent_block(self, ctx: &Context) -> Option<BlockRef> {
        match self {
            Value::OpResult { op, .. } => op.parent_block(ctx),
            Value::BlockArg { block, .. } => Some(block),
        }
    }

    /// All current uses of this value, as a chain-walking iterator
    /// (allocation-free; most-recently-linked use first).
    pub fn uses(self, ctx: &Context) -> crate::context::UseIter<'_> {
        ctx.value_uses(self)
    }

    /// Returns `true` if the value has no uses. O(1).
    pub fn is_unused(self, ctx: &Context) -> bool {
        ctx.first_use(self).is_none()
    }

    /// Returns `true` if the value has exactly one use. O(1).
    pub fn has_one_use(self, ctx: &Context) -> bool {
        let mut uses = self.uses(ctx);
        uses.next().is_some() && uses.next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Context, OperationState};

    #[test]
    fn value_types_and_defs() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let name = ctx.op_name("test", "two_results");
        let op = ctx.create_op(OperationState::new(name).add_result_types([f32, i32]));
        let r0 = op.result(&ctx, 0);
        let r1 = op.result(&ctx, 1);
        assert_eq!(r0.ty(&ctx), f32);
        assert_eq!(r1.ty(&ctx), i32);
        assert_eq!(r0.defining_op(&ctx), Some(op));
        assert!(r0.is_unused(&ctx));
    }

    #[test]
    fn block_args_have_types() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        let block = ctx.create_block([i32]);
        let arg = block.arg(&ctx, 0);
        assert_eq!(arg.ty(&ctx), i32);
        assert_eq!(arg.defining_op(&ctx), None);
        assert_eq!(arg.parent_block(&ctx), Some(block));
    }
}
