//! Entity arenas and uniquing tables underlying the [`Context`].
//!
//! Two storage primitives are provided:
//!
//! - [`EntityArena`], a slot map with a free list for mutable IR entities
//!   (operations, blocks, regions). Erasing an entity tombstones its slot;
//!   accessing an erased handle panics, catching use-after-erase bugs early.
//! - [`UniqueArena`], an append-only structural-uniquing table for immutable
//!   values (types, attributes, symbols). Interning the same data twice
//!   yields the same index, so handle equality is value equality.
//!
//! [`Context`]: crate::Context

use std::hash::Hash;

/// Defines a `Copy` newtype handle over a `u32` arena index.
macro_rules! entity_handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw arena index of this handle.
            ///
            /// Indices are only meaningful relative to the
            /// [`Context`](crate::Context) that produced them.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Reconstructs a handle from a raw index previously obtained
            /// via [`Self::index`].
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}
pub(crate) use entity_handle;

/// A slot-map arena: stable `u32` handles, O(1) allocation and erasure.
///
/// Erased slots are reused through a free list. The arena deliberately does
/// not use generation counters: IR handles are expected to be managed by the
/// owning [`Context`](crate::Context), and touching an erased handle is a
/// logic error that panics.
#[derive(Debug, Clone, Default)]
pub struct EntityArena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> EntityArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        EntityArena { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Inserts `value` and returns its slot index.
    pub fn alloc(&mut self, value: T) -> u32 {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(value);
            idx
        } else {
            self.slots.push(Some(value));
            (self.slots.len() - 1) as u32
        }
    }

    /// Returns a reference to the entity at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was erased or never allocated.
    pub fn get(&self, idx: u32) -> &T {
        self.slots[idx as usize]
            .as_ref()
            .expect("access to erased IR entity")
    }

    /// Returns a mutable reference to the entity at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was erased or never allocated.
    pub fn get_mut(&mut self, idx: u32) -> &mut T {
        self.slots[idx as usize]
            .as_mut()
            .expect("access to erased IR entity")
    }

    /// Removes and returns the entity at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was already erased.
    pub fn erase(&mut self, idx: u32) -> T {
        let value = self.slots[idx as usize]
            .take()
            .expect("double-erase of IR entity");
        self.free.push(idx);
        self.live -= 1;
        value
    }

    /// Returns `true` if `idx` refers to a live entity.
    pub fn is_live(&self, idx: u32) -> bool {
        (idx as usize) < self.slots.len() && self.slots[idx as usize].is_some()
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if the arena holds no live entities.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(index, entity)` pairs of live entities.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|value| (i as u32, value)))
    }
}

/// An append-only uniquing table: equal values share one index.
///
/// Used for structural interning of types and attributes; the `u32` index is
/// the identity, so comparing two interned values is an integer comparison.
#[derive(Debug, Clone, Default)]
pub struct UniqueArena<T> {
    values: Vec<T>,
    index: crate::fasthash::FastMap<T, u32>,
}

impl<T: Clone + Eq + Hash> UniqueArena<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        UniqueArena { values: Vec::new(), index: crate::fasthash::FastMap::default() }
    }

    /// Interns `value`, returning the index of its unique copy.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&idx) = self.index.get(&value) {
            return idx;
        }
        let idx = self.values.len() as u32;
        self.values.push(value.clone());
        self.index.insert(value, idx);
        idx
    }

    /// Returns the value stored at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn get(&self, idx: u32) -> &T {
        &self.values[idx as usize]
    }

    /// Returns the index of `value` if it has been interned before.
    pub fn lookup(&self, value: &T) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// Borrowed-key lookup (e.g. `&str` against a `String` table), avoiding
    /// an allocation on the hit path.
    pub fn lookup_with<Q>(&self, key: &Q) -> Option<u32>
    where
        T: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.index.get(key).copied()
    }

    /// Borrowed-key interning: a single hash lookup and zero allocations on
    /// the hit path; `make` builds the owned value only on a miss.
    pub fn intern_with<Q>(&mut self, key: &Q, make: impl FnOnce(&Q) -> T) -> u32
    where
        T: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if let Some(&idx) = self.index.get(key) {
            return idx;
        }
        let value = make(key);
        let idx = self.values.len() as u32;
        self.values.push(value.clone());
        self.index.insert(value, idx);
        idx
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_alloc_get_roundtrip() {
        let mut arena = EntityArena::new();
        let a = arena.alloc("a");
        let b = arena.alloc("b");
        assert_eq!(*arena.get(a), "a");
        assert_eq!(*arena.get(b), "b");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn arena_erase_reuses_slots() {
        let mut arena = EntityArena::new();
        let a = arena.alloc(1);
        let _b = arena.alloc(2);
        assert_eq!(arena.erase(a), 1);
        assert!(!arena.is_live(a));
        let c = arena.alloc(3);
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    #[should_panic(expected = "erased IR entity")]
    fn arena_get_after_erase_panics() {
        let mut arena = EntityArena::new();
        let a = arena.alloc(1);
        arena.erase(a);
        arena.get(a);
    }

    #[test]
    fn unique_arena_dedups() {
        let mut arena = UniqueArena::new();
        let a = arena.intern("x".to_string());
        let b = arena.intern("y".to_string());
        let a2 = arena.intern("x".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), "x");
        assert_eq!(arena.lookup(&"y".to_string()), Some(b));
        assert_eq!(arena.lookup(&"z".to_string()), None);
    }

    #[test]
    fn intern_with_is_single_path() {
        let mut arena: UniqueArena<String> = UniqueArena::new();
        let a = arena.intern_with("x", str::to_string);
        let b = arena.intern_with("y", str::to_string);
        let a2 = arena.intern_with("x", str::to_string);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), "x");
        // A hit must not rebuild the owned key.
        let hit = arena.intern_with("x", |_| panic!("hit path must not allocate"));
        assert_eq!(hit, a);
    }

    #[test]
    fn arena_iter_skips_tombstones() {
        let mut arena = EntityArena::new();
        let _a = arena.alloc(1);
        let b = arena.alloc(2);
        let _c = arena.alloc(3);
        arena.erase(b);
        let values: Vec<i32> = arena.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 3]);
    }
}
