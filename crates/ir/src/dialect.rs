//! The dialect registry: runtime-registered IR definitions.
//!
//! A dialect groups operation, type, attribute, and enum definitions under a
//! namespace. Definitions are plain data ([`OpInfo`], [`TypeDefInfo`], ...)
//! carrying hook objects for verification and custom syntax — this is what
//! makes the IR *dynamically extensible*: the IRDL compiler registers new
//! dialects at runtime without any Rust code generation, exactly as the
//! paper registers dialects in MLIR from an IRDL file.

use crate::fasthash::FastMap;
use std::sync::Arc;

use crate::attrs::Attribute;
use crate::context::Context;
use crate::diag::Result;
use crate::op::{OpRef, OperationState};
use crate::symbol::Symbol;

/// Verifies a fully-constructed operation (operands, results, attributes,
/// regions, successors). IRDL compiles declarative constraints into one of
/// these; IRDL-Rust (the IRDL-C++ analog) registers arbitrary closures.
pub trait OpVerifier: Send + Sync {
    /// Checks `op` against this verifier's invariants.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic describing the first violated invariant.
    fn verify(&self, ctx: &Context, op: OpRef) -> Result<()>;
}

impl<F: Fn(&Context, OpRef) -> Result<()> + Send + Sync> OpVerifier for F {
    fn verify(&self, ctx: &Context, op: OpRef) -> Result<()> {
        self(ctx, op)
    }
}

/// Verifies the parameter list of a parametric type or attribute.
pub trait ParamsVerifier: Send + Sync {
    /// Checks the parameter list against the definition's constraints.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic describing the first violated constraint.
    fn verify(&self, ctx: &Context, params: &[Attribute]) -> Result<()>;
}

impl<F: Fn(&Context, &[Attribute]) -> Result<()> + Send + Sync> ParamsVerifier for F {
    fn verify(&self, ctx: &Context, params: &[Attribute]) -> Result<()> {
        self(ctx, params)
    }
}

/// Custom textual syntax for an operation (IRDL `Format` directive or a
/// native Rust implementation for syntaxes beyond the declarative subset).
pub trait OpSyntax: Send + Sync {
    /// Prints `op` after its result list (`%r = `) and name have been
    /// printed by the framework.
    fn print(&self, ctx: &Context, op: OpRef, printer: &mut crate::print::Printer<'_>);

    /// Parses the body of the operation (everything after its name) and
    /// returns the assembled [`OperationState`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic pointing at the offending token.
    fn parse(&self, parser: &mut crate::parse::OpParser<'_, '_, '_>) -> Result<OperationState>;
}

/// Custom textual syntax for the parameter list of a parametric type or
/// attribute (IRDL `Format` on `Type`/`Attribute` definitions, §4.7).
///
/// The framework prints/parses the `!dialect.name<` ... `>` shell; the hook
/// handles everything between the angle brackets.
pub trait ParamsSyntax: Send + Sync {
    /// Prints the parameter list (without the surrounding brackets).
    fn print(&self, ctx: &Context, params: &[Attribute], printer: &mut crate::print::Printer<'_>);

    /// Parses the parameter list (without the surrounding brackets).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic pointing at the offending token.
    fn parse(
        &self,
        parser: &mut crate::parse::ParamParser<'_, '_, '_>,
    ) -> Result<Vec<Attribute>>;
}

/// Validates and normalizes native (IRDL-Rust `TypeOrAttrParam`) parameter
/// values from their textual form.
pub trait NativeParamHandler: Send + Sync {
    /// Checks that `text` is a valid value of this parameter kind.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when `text` is malformed.
    fn validate(&self, text: &str) -> Result<()>;
}

impl<F: Fn(&str) -> Result<()> + Send + Sync> NativeParamHandler for F {
    fn validate(&self, text: &str) -> Result<()> {
        self(text)
    }
}

/// Classification of a type/attribute parameter, used for the paper's
/// Figure 8 analysis (which parameter kinds appear in practice) and filled
/// in by the IRDL compiler.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A type parameter (`!AnyType`, `!f32`, ...).
    Type,
    /// An attribute parameter.
    Attr,
    /// An integer parameter (`int32_t`, `uint8_t`, ...).
    Integer,
    /// A float parameter.
    Float,
    /// A string parameter.
    String,
    /// An enum parameter.
    Enum,
    /// A source-location parameter.
    Location,
    /// A host-type-id parameter.
    TypeId,
    /// An array of parameters.
    Array,
    /// A domain-specific native parameter (IRDL-C++ `TypeOrAttrParam`),
    /// tagged with its registered kind name (e.g. `affine_map`).
    Native(String),
}

impl ParamKind {
    /// Returns `true` for parameters expressible in pure IRDL (everything
    /// except [`ParamKind::Native`]).
    pub fn is_builtin(&self) -> bool {
        !matches!(self, ParamKind::Native(_))
    }
}

/// Declarative statistics about an operation definition, filled by the IRDL
/// compiler and consumed by the evaluation tooling (Figures 5-7, 11, 12).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpDeclStats {
    /// Number of operand definitions (variadic definitions count once).
    pub operand_defs: u32,
    /// Number of operand definitions marked `Variadic` or `Optional`.
    pub variadic_operands: u32,
    /// Number of result definitions.
    pub result_defs: u32,
    /// Number of result definitions marked `Variadic` or `Optional`.
    pub variadic_results: u32,
    /// Number of attribute definitions.
    pub attr_defs: u32,
    /// Number of region definitions.
    pub region_defs: u32,
    /// Number of successor definitions.
    pub successor_defs: u32,
    /// Whether any *local* constraint required a native (IRDL-Rust /
    /// IRDL-C++) escape hatch, and the kinds used (Figure 12 census).
    pub native_local_constraints: Vec<String>,
    /// Whether the op declares a native (global) verifier — the
    /// `CppConstraint` on operations measured at 30% in the paper.
    pub has_native_verifier: bool,
}

/// A registered operation definition.
#[derive(Clone)]
pub struct OpInfo {
    /// Operation name within its dialect.
    pub name: Symbol,
    /// Documentation summary (IRDL `Summary` directive).
    pub summary: String,
    /// Whether the op is a terminator (declared `Successors`, even empty).
    pub is_terminator: bool,
    /// Verifier hook (IRDL-compiled constraints and/or native code).
    pub verifier: Option<Arc<dyn OpVerifier>>,
    /// Custom syntax hook (IRDL `Format` or native).
    pub syntax: Option<Arc<dyn OpSyntax>>,
    /// Declarative statistics for the evaluation tooling.
    pub decl: OpDeclStats,
}

impl std::fmt::Debug for OpInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpInfo")
            .field("name", &self.name)
            .field("is_terminator", &self.is_terminator)
            .field("has_verifier", &self.verifier.is_some())
            .field("has_syntax", &self.syntax.is_some())
            .field("decl", &self.decl)
            .finish()
    }
}

/// A registered type definition.
#[derive(Clone)]
pub struct TypeDefInfo {
    /// Type name within its dialect.
    pub name: Symbol,
    /// Documentation summary.
    pub summary: String,
    /// Declared parameter names, in order.
    pub param_names: Vec<Symbol>,
    /// Parameter kinds, for the Figure 8 analysis.
    pub param_kinds: Vec<ParamKind>,
    /// Parameter-constraint verifier.
    pub verifier: Option<Arc<dyn ParamsVerifier>>,
    /// Custom parameter-list syntax (IRDL `Format` on the definition).
    pub syntax: Option<Arc<dyn ParamsSyntax>>,
    /// Whether a native (IRDL-C++) verifier participates (Figure 9b).
    pub has_native_verifier: bool,
}

impl std::fmt::Debug for TypeDefInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypeDefInfo")
            .field("name", &self.name)
            .field("param_kinds", &self.param_kinds)
            .field("has_custom_syntax", &self.syntax.is_some())
            .field("has_native_verifier", &self.has_native_verifier)
            .finish()
    }
}

/// A registered attribute definition (structurally identical to types,
/// as in the paper: "Besides the keyword, type and attribute definitions
/// are identical in IRDL").
pub type AttrDefInfo = TypeDefInfo;

/// A registered enum definition (IRDL `Enum` directive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumInfo {
    /// Enum name within its dialect.
    pub name: Symbol,
    /// Constructors, in declaration order.
    pub variants: Vec<Symbol>,
}

/// A dialect: a namespace of registered definitions.
#[derive(Debug, Clone, Default)]
pub struct DialectInfo {
    /// Dialect namespace (e.g. `cmath`).
    pub name: Option<Symbol>,
    /// Documentation summary.
    pub summary: String,
    ops: FastMap<Symbol, OpInfo>,
    types: FastMap<Symbol, TypeDefInfo>,
    attrs: FastMap<Symbol, AttrDefInfo>,
    enums: FastMap<Symbol, EnumInfo>,
}

impl DialectInfo {
    /// Creates an empty dialect with the given interned name.
    pub fn new(name: Symbol) -> Self {
        DialectInfo { name: Some(name), ..Default::default() }
    }

    /// Registers an operation definition, replacing any previous definition
    /// of the same name.
    pub fn add_op(&mut self, info: OpInfo) {
        self.ops.insert(info.name, info);
    }

    /// Registers a type definition.
    pub fn add_type(&mut self, info: TypeDefInfo) {
        self.types.insert(info.name, info);
    }

    /// Registers an attribute definition.
    pub fn add_attr(&mut self, info: AttrDefInfo) {
        self.attrs.insert(info.name, info);
    }

    /// Registers an enum definition.
    pub fn add_enum(&mut self, info: EnumInfo) {
        self.enums.insert(info.name, info);
    }

    /// Looks up an operation definition.
    pub fn op(&self, name: Symbol) -> Option<&OpInfo> {
        self.ops.get(&name)
    }

    /// Attaches (or replaces) the custom syntax of a registered operation.
    ///
    /// This is the hook for native syntaxes beyond the declarative format
    /// language. Returns `false` if no operation named `name` exists.
    pub fn set_op_syntax(&mut self, name: Symbol, syntax: Arc<dyn OpSyntax>) -> bool {
        match self.ops.get_mut(&name) {
            Some(info) => {
                info.syntax = Some(syntax);
                true
            }
            None => false,
        }
    }

    /// Looks up a type definition.
    pub fn type_def(&self, name: Symbol) -> Option<&TypeDefInfo> {
        self.types.get(&name)
    }

    /// Looks up an attribute definition.
    pub fn attr_def(&self, name: Symbol) -> Option<&AttrDefInfo> {
        self.attrs.get(&name)
    }

    /// Looks up an enum definition.
    pub fn enum_def(&self, name: Symbol) -> Option<&EnumInfo> {
        self.enums.get(&name)
    }

    /// Iterates over registered operations (unordered).
    pub fn ops(&self) -> impl Iterator<Item = &OpInfo> {
        self.ops.values()
    }

    /// Iterates over registered types (unordered).
    pub fn types(&self) -> impl Iterator<Item = &TypeDefInfo> {
        self.types.values()
    }

    /// Iterates over registered attributes (unordered).
    pub fn attrs(&self) -> impl Iterator<Item = &AttrDefInfo> {
        self.attrs.values()
    }

    /// Iterates over registered enums (unordered).
    pub fn enums(&self) -> impl Iterator<Item = &EnumInfo> {
        self.enums.values()
    }

    /// Number of registered operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of registered types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of registered attributes.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }
}

/// All dialects registered in a [`Context`], plus the registry of native
/// parameter handlers shared across dialects.
#[derive(Clone, Default)]
pub struct DialectRegistry {
    dialects: FastMap<Symbol, DialectInfo>,
    native_params: FastMap<Symbol, Arc<dyn NativeParamHandler>>,
}

impl std::fmt::Debug for DialectRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DialectRegistry")
            .field("dialects", &self.dialects)
            .field("native_params", &self.native_params.len())
            .finish()
    }
}

impl DialectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a dialect.
    ///
    /// # Panics
    ///
    /// Panics if the dialect has no name.
    pub fn register(&mut self, dialect: DialectInfo) {
        let name = dialect.name.expect("registered dialect must be named");
        self.dialects.insert(name, dialect);
    }

    /// Looks up a dialect by interned name.
    pub fn dialect(&self, name: Symbol) -> Option<&DialectInfo> {
        self.dialects.get(&name)
    }

    /// Mutable lookup, for incremental registration.
    pub fn dialect_mut(&mut self, name: Symbol) -> Option<&mut DialectInfo> {
        self.dialects.get_mut(&name)
    }

    /// Looks up an operation definition by `(dialect, op)` name pair.
    pub fn op_info(&self, dialect: Symbol, op: Symbol) -> Option<&OpInfo> {
        self.dialects.get(&dialect)?.op(op)
    }

    /// Looks up a type definition by `(dialect, type)` name pair.
    pub fn type_def(&self, dialect: Symbol, name: Symbol) -> Option<&TypeDefInfo> {
        self.dialects.get(&dialect)?.type_def(name)
    }

    /// Looks up an attribute definition by `(dialect, attr)` name pair.
    pub fn attr_def(&self, dialect: Symbol, name: Symbol) -> Option<&AttrDefInfo> {
        self.dialects.get(&dialect)?.attr_def(name)
    }

    /// Looks up an enum definition by `(dialect, enum)` name pair.
    pub fn enum_def(&self, dialect: Symbol, name: Symbol) -> Option<&EnumInfo> {
        self.dialects.get(&dialect)?.enum_def(name)
    }

    /// Registers a native parameter handler under `kind`.
    pub fn register_native_param(
        &mut self,
        kind: Symbol,
        handler: Arc<dyn NativeParamHandler>,
    ) {
        self.native_params.insert(kind, handler);
    }

    /// Looks up the handler for a native parameter kind.
    pub fn native_param(&self, kind: Symbol) -> Option<Arc<dyn NativeParamHandler>> {
        self.native_params.get(&kind).cloned()
    }

    /// Iterates over registered dialects (unordered).
    pub fn dialects(&self) -> impl Iterator<Item = &DialectInfo> {
        self.dialects.values()
    }

    /// Number of registered dialects.
    pub fn len(&self) -> usize {
        self.dialects.len()
    }

    /// Returns `true` if no dialect is registered.
    pub fn is_empty(&self) -> bool {
        self.dialects.is_empty()
    }
}

/// Convenience constructor for an [`OpInfo`] with no hooks.
pub fn simple_op_info(name: Symbol, summary: impl Into<String>) -> OpInfo {
    OpInfo {
        name,
        summary: summary.into(),
        is_terminator: false,
        verifier: None,
        syntax: None,
        decl: OpDeclStats::default(),
    }
}

impl Context {
    /// Registers a dialect in this context's registry.
    pub fn register_dialect(&mut self, dialect: DialectInfo) {
        self.registry_mut().register(dialect);
    }

    /// Returns the [`OpInfo`] for `op`'s name, if registered.
    pub fn op_info(&self, op: OpRef) -> Option<&OpInfo> {
        let name = op.name(self);
        self.registry().op_info(name.dialect, name.name)
    }

    /// Returns `true` if `op`'s definition marks it a terminator.
    ///
    /// Unregistered operations are conservatively treated as
    /// non-terminators unless they carry successors.
    pub fn is_terminator(&self, op: OpRef) -> bool {
        match self.op_info(op) {
            Some(info) => info.is_terminator,
            None => !op.successors(self).is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;

    #[test]
    fn register_and_lookup() {
        let mut ctx = Context::new();
        let cmath = ctx.symbol("cmath");
        let mul = ctx.symbol("mul");
        let mut dialect = DialectInfo::new(cmath);
        dialect.add_op(simple_op_info(mul, "Multiply two complex numbers"));
        ctx.register_dialect(dialect);
        let info = ctx.registry().op_info(cmath, mul).unwrap();
        assert_eq!(info.summary, "Multiply two complex numbers");
        assert!(!info.is_terminator);
        assert!(ctx.registry().op_info(cmath, ctx.symbol_lookup("norm").unwrap_or(mul)).is_some());
    }

    #[test]
    fn missing_dialect_lookup_is_none() {
        let mut ctx = Context::new();
        let d = ctx.symbol("nope");
        let o = ctx.symbol("op");
        assert!(ctx.registry().op_info(d, o).is_none());
        assert!(ctx.registry().type_def(d, o).is_none());
    }

    #[test]
    fn native_param_handler_dispatch() {
        let mut ctx = Context::new();
        let kind = ctx.symbol("affine_map");
        ctx.registry_mut().register_native_param(
            kind,
            Arc::new(|text: &str| {
                if text.starts_with('(') {
                    Ok(())
                } else {
                    Err(crate::Diagnostic::new("affine map must start with `(`"))
                }
            }),
        );
        assert!(ctx.native_attr("affine_map", "(d0) -> (d0)").is_ok());
        assert!(ctx.native_attr("affine_map", "d0").is_err());
        // Unregistered kinds pass through unvalidated.
        assert!(ctx.native_attr("unknown_kind", "whatever").is_ok());
    }
}
