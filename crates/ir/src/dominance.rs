//! Dominance analysis over region CFGs, used by the SSA verifier.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominator algorithm on
//! the block graph of one region. Blocks unreachable from the entry are
//! reported as such and treated permissively by the verifier (as in MLIR).

use std::collections::HashMap;

use crate::block::BlockRef;
use crate::context::Context;
use crate::region::RegionRef;

/// Dominator information for one region.
#[derive(Debug, Clone)]
pub struct RegionDominance {
    /// Reverse post-order index of each reachable block.
    rpo_index: HashMap<BlockRef, usize>,
    /// Immediate dominator of each reachable block (entry maps to itself).
    idom: HashMap<BlockRef, BlockRef>,
    entry: Option<BlockRef>,
}

impl RegionDominance {
    /// Computes dominators for `region`.
    pub fn compute(ctx: &Context, region: RegionRef) -> Self {
        let entry = region.entry_block(ctx);
        let Some(entry) = entry else {
            return RegionDominance { rpo_index: HashMap::new(), idom: HashMap::new(), entry: None };
        };

        // Post-order DFS from the entry block. Each frame owns its
        // successor list, so it is computed once per block.
        let mut post_order: Vec<BlockRef> = Vec::new();
        let mut visited: HashMap<BlockRef, bool> = HashMap::new();
        let mut stack: Vec<(BlockRef, Vec<BlockRef>, usize)> =
            vec![(entry, successors(ctx, entry), 0)];
        visited.insert(entry, true);
        while let Some(frame) = stack.last_mut() {
            let block = frame.0;
            if frame.2 < frame.1.len() {
                let succ = frame.1[frame.2];
                frame.2 += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(succ) {
                    e.insert(true);
                    stack.push((succ, successors(ctx, succ), 0));
                }
            } else {
                post_order.push(block);
                stack.pop();
            }
        }
        let rpo: Vec<BlockRef> = post_order.iter().rev().copied().collect();
        let rpo_index: HashMap<BlockRef, usize> =
            rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();

        // Predecessor lists restricted to reachable blocks.
        let mut preds: HashMap<BlockRef, Vec<BlockRef>> =
            rpo.iter().map(|b| (*b, Vec::new())).collect();
        for &block in &rpo {
            for succ in successors(ctx, block) {
                if let Some(list) = preds.get_mut(&succ) {
                    list.push(block);
                }
            }
        }

        // Cooper-Harvey-Kennedy iteration.
        let mut idom: HashMap<BlockRef, BlockRef> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &block in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockRef> = None;
                for &pred in &preds[&block] {
                    if !idom.contains_key(&pred) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => intersect(&idom, &rpo_index, pred, cur),
                    });
                }
                if let Some(new_idom) = new_idom {
                    if idom.get(&block) != Some(&new_idom) {
                        idom.insert(block, new_idom);
                        changed = true;
                    }
                }
            }
        }

        RegionDominance { rpo_index, idom, entry: Some(entry) }
    }

    /// Returns `true` if `block` is reachable from the region entry.
    pub fn is_reachable(&self, block: BlockRef) -> bool {
        self.rpo_index.contains_key(&block)
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Unreachable blocks are conservatively reported as dominated by
    /// everything, matching MLIR's permissive treatment.
    pub fn dominates(&self, a: BlockRef, b: BlockRef) -> bool {
        if a == b {
            return true;
        }
        if !self.is_reachable(b) {
            return true;
        }
        if !self.is_reachable(a) {
            return false;
        }
        let mut cur = b;
        loop {
            let parent = self.idom[&cur];
            if parent == a {
                return true;
            }
            if parent == cur {
                return false; // reached entry
            }
            cur = parent;
        }
    }

    /// The region entry block, if any.
    pub fn entry(&self) -> Option<BlockRef> {
        self.entry
    }
}

/// A cache of per-region dominator analyses with region-granular
/// invalidation.
///
/// The whole-module [`ModuleVerifier`](crate::verify::ModuleVerifier)
/// clears it wholesale at the start of every run; the
/// [`IncrementalVerifier`](crate::verify::IncrementalVerifier) instead
/// invalidates only the regions a change journal names, so dominance for
/// untouched regions is never recomputed.
///
/// Entity arenas reuse slots without generation counters, so an erased
/// region's `RegionRef` can come back identifying a *different* region.
/// Holders of a cache across erasures must therefore evict every erased
/// region (the journal records them for exactly this purpose) — a stale
/// entry under a reused ref would silently answer for the wrong CFG.
#[derive(Debug, Default)]
pub struct DominanceCache {
    regions: HashMap<RegionRef, RegionDominance>,
}

impl DominanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached analysis (capacity is retained).
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    /// Drops the cached analysis for `region`, if any. Used both for
    /// regions whose CFG changed and for erased regions whose slot may be
    /// reused.
    pub fn invalidate(&mut self, region: RegionRef) {
        self.regions.remove(&region);
    }

    /// The dominator analysis for `region`, computing (and caching) it on
    /// first use.
    pub fn get_or_compute(&mut self, ctx: &Context, region: RegionRef) -> &RegionDominance {
        self.regions
            .entry(region)
            .or_insert_with(|| RegionDominance::compute(ctx, region))
    }

    /// Number of cached region analyses.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

fn intersect(
    idom: &HashMap<BlockRef, BlockRef>,
    rpo_index: &HashMap<BlockRef, usize>,
    mut a: BlockRef,
    mut b: BlockRef,
) -> BlockRef {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// The CFG successors of `block`: the successor list of its final
/// operation.
pub fn successors(ctx: &Context, block: BlockRef) -> Vec<BlockRef> {
    match block.last_op(ctx) {
        Some(op) => op.successors(ctx).to_vec(),
        None => Vec::new(),
    }
}

/// The CFG predecessors of `block` within its region.
pub fn predecessors(ctx: &Context, block: BlockRef) -> Vec<BlockRef> {
    let Some(region) = block.parent_region(ctx) else { return Vec::new() };
    let mut preds = Vec::new();
    for &candidate in region.blocks(ctx) {
        if successors(ctx, candidate).contains(&block) {
            preds.push(candidate);
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    /// Builds a diamond CFG: entry -> (left | right) -> merge.
    fn diamond(ctx: &mut Context) -> (RegionRef, [BlockRef; 4]) {
        let region = ctx.create_region();
        let entry = ctx.create_block([]);
        let left = ctx.create_block([]);
        let right = ctx.create_block([]);
        let merge = ctx.create_block([]);
        for b in [entry, left, right, merge] {
            ctx.append_block(region, b);
        }
        let cond_br = ctx.op_name("cf", "cond_br");
        let br = ctx.op_name("cf", "br");
        let ret = ctx.op_name("cf", "return");
        let op = ctx.create_op(OperationState::new(cond_br).add_successors([left, right]));
        ctx.append_op(entry, op);
        let op = ctx.create_op(OperationState::new(br).add_successors([merge]));
        ctx.append_op(left, op);
        let op = ctx.create_op(OperationState::new(br).add_successors([merge]));
        ctx.append_op(right, op);
        let op = ctx.create_op(OperationState::new(ret));
        ctx.append_op(merge, op);
        (region, [entry, left, right, merge])
    }

    #[test]
    fn diamond_dominators() {
        let mut ctx = Context::new();
        let (region, [entry, left, right, merge]) = diamond(&mut ctx);
        let dom = RegionDominance::compute(&ctx, region);
        assert!(dom.dominates(entry, merge));
        assert!(dom.dominates(entry, left));
        assert!(!dom.dominates(left, merge), "merge is reachable around left");
        assert!(!dom.dominates(right, merge));
        assert!(dom.dominates(merge, merge));
    }

    #[test]
    fn loop_back_edge() {
        let mut ctx = Context::new();
        let region = ctx.create_region();
        let entry = ctx.create_block([]);
        let body = ctx.create_block([]);
        let exit = ctx.create_block([]);
        for b in [entry, body, exit] {
            ctx.append_block(region, b);
        }
        let br = ctx.op_name("cf", "br");
        let cond_br = ctx.op_name("cf", "cond_br");
        let op = ctx.create_op(OperationState::new(br).add_successors([body]));
        ctx.append_op(entry, op);
        // body loops to itself or exits.
        let op = ctx.create_op(OperationState::new(cond_br).add_successors([body, exit]));
        ctx.append_op(body, op);
        let dom = RegionDominance::compute(&ctx, region);
        assert!(dom.dominates(entry, body));
        assert!(dom.dominates(body, exit));
        assert_eq!(predecessors(&ctx, body), vec![entry, body]);
    }

    #[test]
    fn cache_invalidation_is_per_region() {
        let mut ctx = Context::new();
        let (region_a, [entry_a, ..]) = diamond(&mut ctx);
        let (region_b, [entry_b, ..]) = diamond(&mut ctx);
        let mut cache = DominanceCache::new();
        assert!(cache.get_or_compute(&ctx, region_a).is_reachable(entry_a));
        assert!(cache.get_or_compute(&ctx, region_b).is_reachable(entry_b));
        assert_eq!(cache.len(), 2);
        cache.invalidate(region_a);
        assert_eq!(cache.len(), 1, "only the named region is dropped");
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn unreachable_blocks_are_permissive() {
        let mut ctx = Context::new();
        let region = ctx.create_region();
        let entry = ctx.create_block([]);
        let island = ctx.create_block([]);
        ctx.append_block(region, entry);
        ctx.append_block(region, island);
        let dom = RegionDominance::compute(&ctx, region);
        assert!(dom.is_reachable(entry));
        assert!(!dom.is_reachable(island));
        assert!(dom.dominates(entry, island));
        assert!(!dom.dominates(island, entry));
    }
}
