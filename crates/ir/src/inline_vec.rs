//! A zero-dependency small-vector for IR entity payloads.
//!
//! [`InlineVec<T, N>`] stores up to `N` elements inline (no heap
//! allocation) and spills to a heap `Vec<T>` beyond that. `OperationData`
//! uses it for every per-op list, with `N` tuned per field from corpus
//! statistics, so constructing a typical operation touches the allocator
//! zero times. Spill buffers can be harvested with
//! [`InlineVec::take_spill`] and handed back through the pooled
//! constructors, which is how the context recycles erased-op storage
//! instead of freeing it (see `Context`'s spill pool).
//!
//! `T: Copy` is required: every payload element in the IR is a `Copy`
//! handle or a pair of them, and the bound keeps the `MaybeUninit` inline
//! buffer trivially sound (no drops, plain bitwise clones).

use std::mem::MaybeUninit;

/// Sentinel stored in `len` while the contents live in `spill`.
const SPILLED: u32 = u32::MAX;

/// A small-vector: inline up to `N` elements, heap-spilled beyond.
///
/// Derefs to `&[T]` / `&mut [T]`, so slice APIs (indexing, iteration,
/// sorting) work directly.
pub struct InlineVec<T: Copy, const N: usize> {
    /// Number of initialized inline elements, or [`SPILLED`].
    len: u32,
    inline: [MaybeUninit<T>; N],
    /// Heap storage once the inline capacity is exceeded. Empty and
    /// unallocated while inline.
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty vector; allocates nothing.
    #[inline]
    pub const fn new() -> Self {
        InlineVec { len: 0, inline: [MaybeUninit::uninit(); N], spill: Vec::new() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.len == SPILLED { self.spill.len() } else { self.len as usize }
    }

    /// Returns `true` if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the contents have spilled to the heap.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        self.len == SPILLED
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len == SPILLED {
            &self.spill
        } else {
            // SAFETY: the first `len` inline elements are initialized by
            // construction (`len` only grows through `push`/pooled fills).
            unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len as usize)
            }
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == SPILLED {
            &mut self.spill
        } else {
            // SAFETY: as in `as_slice`; length never changes through the
            // returned slice.
            unsafe {
                std::slice::from_raw_parts_mut(
                    self.inline.as_mut_ptr().cast::<T>(),
                    self.len as usize,
                )
            }
        }
    }

    /// Appends `value`, spilling to a fresh heap buffer when the inline
    /// capacity is exceeded.
    pub fn push(&mut self, value: T) {
        if self.len == SPILLED {
            self.spill.push(value);
        } else if (self.len as usize) < N {
            self.inline[self.len as usize].write(value);
            self.len += 1;
        } else {
            self.spill_with_capacity(N + 1);
            self.spill.push(value);
        }
    }

    /// Appends `value`, drawing the spill buffer from `pool` when the
    /// push crosses the inline capacity.
    pub fn push_pooled(&mut self, value: T, pool: &mut Vec<Vec<T>>) {
        if self.len != SPILLED && (self.len as usize) >= N {
            let recycled = pool.pop().unwrap_or_default();
            self.spill_into(recycled);
        }
        self.push(value);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == SPILLED {
            self.spill.pop()
        } else if self.len == 0 {
            None
        } else {
            self.len -= 1;
            // SAFETY: slot `len` was initialized before the decrement.
            Some(unsafe { self.inline[self.len as usize].assume_init() })
        }
    }

    /// Removes and returns the element at `index`, shifting the tail left.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> T {
        if self.len == SPILLED {
            return self.spill.remove(index);
        }
        let len = self.len as usize;
        assert!(index < len, "InlineVec::remove index out of bounds");
        // SAFETY: elements `index..len` are initialized; plain Copy moves.
        let value = unsafe { self.inline[index].assume_init() };
        for i in index..len - 1 {
            self.inline[i] = self.inline[i + 1];
        }
        self.len -= 1;
        value
    }

    /// Shortens to `len` elements; no-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        if self.len == SPILLED {
            self.spill.truncate(len);
        } else if len < self.len as usize {
            self.len = len as u32;
        }
    }

    /// Removes every element. Spilled capacity is kept for reuse.
    pub fn clear(&mut self) {
        if self.len == SPILLED {
            self.spill.clear();
        } else {
            self.len = 0;
        }
    }

    /// Builds a vector of `len` copies of `fill`, drawing the spill buffer
    /// (if one is needed) from `pool` instead of the allocator.
    pub fn with_len_pooled(len: usize, fill: T, pool: &mut Vec<Vec<T>>) -> Self {
        let mut v = Self::new();
        if len <= N {
            for i in 0..len {
                v.inline[i].write(fill);
            }
            v.len = len as u32;
        } else {
            let mut buf = pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(len, fill);
            v.spill = buf;
            v.len = SPILLED;
        }
        v
    }

    /// Detaches the spill buffer for recycling, leaving `self` empty.
    ///
    /// Returns `None` when the contents were inline (nothing to recycle).
    pub fn take_spill(&mut self) -> Option<Vec<T>> {
        if self.len == SPILLED {
            self.len = 0;
            Some(std::mem::take(&mut self.spill))
        } else {
            self.len = 0;
            None
        }
    }

    /// Moves the inline contents into `buf` and switches to spilled mode.
    fn spill_into(&mut self, mut buf: Vec<T>) {
        debug_assert_ne!(self.len, SPILLED);
        buf.clear();
        buf.extend_from_slice(self.as_slice());
        self.spill = buf;
        self.len = SPILLED;
    }

    /// Spills into a freshly allocated buffer of at least `cap` capacity.
    fn spill_with_capacity(&mut self, cap: usize) {
        self.spill_into(Vec::with_capacity(cap));
    }
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        // Bitwise-copy the inline buffer (sound: `T: Copy`, and slots past
        // `len` are never read); deep-clone the spill.
        InlineVec { len: self.len, inline: self.inline, spill: self.spill.clone() }
    }
}

impl<T: Copy, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

impl<T: Copy, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    /// Adopts `vec`. Large inputs keep the buffer as spill (no copy);
    /// small inputs are copied inline and the buffer is dropped.
    fn from(vec: Vec<T>) -> Self {
        if vec.len() > N {
            InlineVec { len: SPILLED, inline: [MaybeUninit::uninit(); N], spill: vec }
        } else {
            let mut v = Self::new();
            for (i, value) in vec.into_iter().enumerate() {
                v.inline[i].write(value);
                v.len += 1;
                debug_assert!(i < N);
            }
            v
        }
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert!(!v.is_spilled());
        assert_eq!(&*v, &[1, 2]);
        v.push(3);
        assert!(v.is_spilled());
        assert_eq!(&*v, &[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn remove_and_truncate() {
        let mut v: InlineVec<u32, 4> = (0..4).collect();
        assert_eq!(v.remove(1), 1);
        assert_eq!(&*v, &[0, 2, 3]);
        v.truncate(1);
        assert_eq!(&*v, &[0]);
        let mut s: InlineVec<u32, 2> = (0..5).collect();
        assert!(s.is_spilled());
        assert_eq!(s.remove(0), 0);
        s.truncate(2);
        assert_eq!(&*s, &[1, 2]);
    }

    #[test]
    fn pooled_round_trip() {
        let mut pool: Vec<Vec<u32>> = vec![Vec::with_capacity(64)];
        let mut v: InlineVec<u32, 1> = InlineVec::with_len_pooled(8, 7, &mut pool);
        assert!(pool.is_empty(), "pooled constructor drew the recycled buffer");
        assert!(v.is_spilled());
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|&x| x == 7));
        let buf = v.take_spill().expect("spill harvested");
        assert!(buf.capacity() >= 64, "recycled capacity survives the round trip");
        assert!(v.is_empty());
    }

    #[test]
    fn push_pooled_uses_recycled_buffer() {
        let mut pool: Vec<Vec<u32>> = vec![Vec::with_capacity(16)];
        let mut v: InlineVec<u32, 1> = InlineVec::new();
        v.push_pooled(1, &mut pool);
        assert!(!v.is_spilled());
        v.push_pooled(2, &mut pool);
        assert!(v.is_spilled());
        assert!(pool.is_empty());
        assert_eq!(&*v, &[1, 2]);
    }

    #[test]
    fn from_vec_and_iter() {
        let small: InlineVec<u32, 4> = vec![1, 2].into();
        assert!(!small.is_spilled());
        assert_eq!(&*small, &[1, 2]);
        let big: InlineVec<u32, 1> = vec![1, 2, 3].into();
        assert!(big.is_spilled());
        assert_eq!(&*big, &[1, 2, 3]);
        let collected: InlineVec<u32, 2> = (0..3).collect();
        assert_eq!(&*collected, &[0, 1, 2]);
    }

    #[test]
    fn clone_and_eq() {
        let v: InlineVec<u32, 2> = (0..5).collect();
        let w = v.clone();
        assert_eq!(v, w);
        let inline: InlineVec<u32, 8> = (0..5).collect();
        assert_eq!(v.as_slice(), inline.as_slice());
    }

    #[test]
    fn slice_apis_via_deref() {
        let mut v: InlineVec<u32, 4> = vec![3, 1, 2].into();
        v.sort_unstable();
        assert_eq!(&*v, &[1, 2, 3]);
        assert_eq!(v[1], 2);
        v[1] = 9;
        assert_eq!(v.iter().copied().max(), Some(9));
    }
}
