//! Parsing the generic IR textual format back into a [`Context`].
//!
//! Supports the generic operation form produced by [`crate::print`] plus
//! dialect-registered custom syntax (IRDL `Format` directives or native
//! hooks). SSA value names must be defined textually before use (forward
//! references to *blocks* are supported; forward references to values are
//! not — a documented divergence from MLIR's graph regions).
//!
//! The parser is zero-copy end to end: tokens borrow `&str` slices of the
//! source (see [`crate::lexer`]), identifiers intern straight into
//! [`Symbol`]s with a single hash lookup, and value/block scopes are keyed
//! by `Symbol` so resolution never materializes an owned `String`.

use crate::fasthash::FastMap;

use crate::attrs::{AttrData, Attribute};
use crate::block::BlockRef;
use crate::context::Context;
use crate::diag::{Diagnostic, Result};
use crate::lexer::{lex, Spanned, Token};
use crate::op::{OpName, OpRef, OperationState};
use crate::region::RegionRef;
use crate::symbol::Symbol;
use crate::types::{FloatKind, Signedness, Type, TypeData};
use crate::value::Value;

/// Parses a source file: a sequence of top-level operations.
///
/// If the source contains exactly one `builtin.module`, it is returned
/// directly; otherwise the parsed operations are wrapped in a fresh module.
///
/// # Errors
///
/// Returns a diagnostic with a byte offset into `source` on malformed
/// input.
pub fn parse_module(ctx: &mut Context, source: &str) -> Result<OpRef> {
    parse_module_tokens(ctx, lex(source)?)
}

/// Like [`parse_module`], but the source is lexed in up to `lex_jobs`
/// concurrent chunks (split at brace-depth-0 newlines, spans spliced back
/// to absolute offsets — see [`crate::lexer::lex_chunked`]). The parse
/// itself stays sequential; the resulting IR, and any diagnostic, are
/// identical to [`parse_module`].
///
/// # Errors
///
/// Returns a diagnostic with a byte offset into `source` on malformed
/// input.
pub fn parse_module_chunked(ctx: &mut Context, source: &str, lex_jobs: usize) -> Result<OpRef> {
    parse_module_tokens(ctx, crate::lexer::lex_chunked(source, lex_jobs)?)
}

fn parse_module_tokens<'s>(ctx: &mut Context, tokens: Vec<Spanned<'s>>) -> Result<OpRef> {
    let mut parser = Parser::new(ctx, tokens);
    parser.push_scopes();
    let mut ops = Vec::new();
    while parser.peek() != &Token::Eof {
        ops.push(parser.parse_op()?);
    }
    parser.pop_scopes();
    let module_name = parser.ctx.op_name("builtin", "module");
    if ops.len() == 1 && ops[0].name(parser.ctx) == module_name {
        return Ok(ops[0]);
    }
    let module = parser.ctx.create_module();
    let block = parser.ctx.module_block(module);
    for op in ops {
        parser.ctx.append_op(block, op);
    }
    Ok(module)
}

/// Parses a single type from `source` (e.g. `"!cmath.complex<f32>"`).
///
/// # Errors
///
/// Returns a diagnostic on malformed input or trailing tokens.
pub fn parse_type_str(ctx: &mut Context, source: &str) -> Result<Type> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(ctx, tokens);
    let ty = parser.parse_type()?;
    parser.expect_eof()?;
    Ok(ty)
}

/// Parses a single attribute from `source` (e.g. `"42 : i32"`).
///
/// # Errors
///
/// Returns a diagnostic on malformed input or trailing tokens.
pub fn parse_attr_str(ctx: &mut Context, source: &str) -> Result<Attribute> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(ctx, tokens);
    let attr = parser.parse_attribute()?;
    parser.expect_eof()?;
    Ok(attr)
}

/// A named group of result values (`%x:2` defines a group of two). The
/// single-result common case stays inline in the scope map entry.
#[derive(Debug, Clone)]
struct ValueGroup {
    values: crate::inline_vec::InlineVec<Value, 1>,
}

pub(crate) struct Parser<'s, 'c> {
    pub(crate) ctx: &'c mut Context,
    tokens: Vec<Spanned<'s>>,
    pos: usize,
    /// Scopes keyed by interned name symbol; the textual name only exists
    /// as a source slice.
    value_scopes: Vec<FastMap<Symbol, ValueGroup>>,
    block_scopes: Vec<FastMap<Symbol, BlockRef>>,
    /// Retired scope maps, kept to reuse their capacity across regions.
    value_pool: Vec<FastMap<Symbol, ValueGroup>>,
    block_pool: Vec<FastMap<Symbol, BlockRef>>,
}

impl<'s, 'c> Parser<'s, 'c> {
    fn new(ctx: &'c mut Context, tokens: Vec<Spanned<'s>>) -> Self {
        Parser {
            ctx,
            tokens,
            pos: 0,
            value_scopes: Vec::new(),
            block_scopes: Vec::new(),
            value_pool: Vec::new(),
            block_pool: Vec::new(),
        }
    }

    // ----- token plumbing ---------------------------------------------------

    fn peek(&self) -> &Token<'s> {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token<'s> {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].span.start
    }

    /// Takes the current token and advances. Taking (rather than cloning)
    /// means even owned `Str` payloads move out without reallocating; the
    /// consumed slot is backfilled with `Eof` and never re-read.
    fn bump(&mut self) -> Token<'s> {
        let tok = std::mem::replace(&mut self.tokens[self.pos].token, Token::Eof);
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, expected: &Token<'_>) -> Result<()> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                expected.describe(),
                self.peek().describe()
            )))
        }
    }

    fn consume_if(&mut self, expected: &Token<'_>) -> bool {
        if self.peek() == expected {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<&'s str> {
        match self.peek() {
            Token::Ident(s) => {
                let s = *s;
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// An attribute-dictionary key: a bare identifier or a quoted string
    /// (for keys that are not lexable identifiers). Interned directly.
    fn expect_attr_key(&mut self) -> Result<Symbol> {
        match self.peek() {
            Token::Ident(s) => {
                let s = *s;
                self.bump();
                Ok(self.ctx.symbol(s))
            }
            Token::Str(_) => {
                let Token::Str(s) = self.bump() else { unreachable!() };
                Ok(self.ctx.symbol(&s))
            }
            other => {
                Err(self.error(format!("expected attribute key, found {}", other.describe())))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Token::Ident(s) if *s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    /// Parses an optional `{key = attr, ...}` dictionary into `out`.
    fn parse_optional_attr_entries(&mut self, out: &mut crate::op::AttrList) -> Result<()> {
        if self.consume_if(&Token::LBrace) && !self.consume_if(&Token::RBrace) {
            loop {
                let key = self.expect_attr_key()?;
                self.expect(&Token::Equals)?;
                let value = self.parse_attribute()?;
                out.push((key, value));
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RBrace)?;
        }
        Ok(())
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Token::Ident(s) if *s == kw => {
                self.bump();
                true
            }
            _ => false,
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing {}", self.peek().describe())))
        }
    }

    fn error(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.offset(), message)
    }

    // ----- scopes ------------------------------------------------------------

    fn push_scopes(&mut self) {
        self.value_scopes.push(self.value_pool.pop().unwrap_or_default());
        self.block_scopes.push(self.block_pool.pop().unwrap_or_default());
    }

    fn pop_scopes(&mut self) {
        let mut values = self.value_scopes.pop().expect("no value scope");
        values.clear();
        self.value_pool.push(values);
        let mut blocks = self.block_scopes.pop().expect("no block scope");
        blocks.clear();
        self.block_pool.push(blocks);
    }

    fn define_value_group(
        &mut self,
        name: &str,
        values: crate::inline_vec::InlineVec<Value, 1>,
    ) -> Result<()> {
        let sym = self.ctx.symbol(name);
        let scope = self.value_scopes.last_mut().expect("no value scope");
        if scope.contains_key(&sym) {
            return Err(Diagnostic::at(
                self.tokens[self.pos].span.start,
                format!("redefinition of value `%{name}`"),
            ));
        }
        scope.insert(sym, ValueGroup { values });
        Ok(())
    }

    fn resolve_value(&self, name: &str) -> Result<Value> {
        let (base, index) = match name.split_once('#') {
            Some((base, idx)) => {
                let index: usize = idx
                    .parse()
                    .map_err(|_| self.error(format!("invalid result index in `%{name}`")))?;
                (base, Some(index))
            }
            None => (name, None),
        };
        // A name that was never interned cannot have been defined.
        if let Some(sym) = self.ctx.symbol_lookup(base) {
            for scope in self.value_scopes.iter().rev() {
                if let Some(group) = scope.get(&sym) {
                    return match index {
                        Some(i) => group.values.get(i).copied().ok_or_else(|| {
                            self.error(format!("result index out of range in `%{name}`"))
                        }),
                        None => {
                            if group.values.len() == 1 {
                                Ok(group.values[0])
                            } else {
                                Err(self.error(format!(
                                    "`%{base}` names a group of {} results; use `%{base}#N`",
                                    group.values.len()
                                )))
                            }
                        }
                    };
                }
            }
        }
        Err(self.error(format!("use of undefined value `%{base}`")))
    }

    fn get_or_create_block(&mut self, name: &str) -> BlockRef {
        let sym = self.ctx.symbol(name);
        if let Some(block) = self.block_scopes.last().and_then(|s| s.get(&sym)) {
            return *block;
        }
        let block = self.ctx.create_block([]);
        self.block_scopes
            .last_mut()
            .expect("no block scope")
            .insert(sym, block);
        block
    }

    // ----- types -------------------------------------------------------------

    pub(crate) fn parse_type(&mut self) -> Result<Type> {
        match self.peek() {
            Token::Ident(name) => {
                let name = *name;
                self.bump();
                self.parse_builtin_type(name)
            }
            Token::TypeRef(full) => {
                let full = *full;
                self.bump();
                let (dialect, name) = full.split_once('.').ok_or_else(|| {
                    self.error(format!("type reference `!{full}` must be dialect-qualified"))
                })?;
                let dialect = self.ctx.symbol(dialect);
                let name = self.ctx.symbol(name);
                // Custom parameter syntax (IRDL `Format` on the type).
                let custom = self
                    .ctx
                    .registry()
                    .type_def(dialect, name)
                    .and_then(|info| info.syntax.clone());
                let params = match custom {
                    Some(syntax) => {
                        self.expect(&Token::Lt)?;
                        let mut pp = ParamParser { parser: self };
                        let params = syntax.parse(&mut pp)?;
                        self.expect(&Token::Gt)?;
                        params
                    }
                    None => self.parse_opt_param_list()?,
                };
                let offset = self.offset();
                self.ctx
                    .parametric_type_syms(dialect, name, params)
                    .map_err(|d| d.or_offset(offset))
            }
            Token::LParen => {
                self.bump();
                let mut inputs = Vec::new();
                if !self.consume_if(&Token::RParen) {
                    loop {
                        inputs.push(self.parse_type()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                self.expect(&Token::Arrow)?;
                let results = self.parse_type_list_grouped()?;
                Ok(self.ctx.function_type(inputs, results))
            }
            other => Err(self.error(format!("expected type, found {}", other.describe()))),
        }
    }

    fn parse_builtin_type(&mut self, name: &str) -> Result<Type> {
        if let Some(width) = parse_int_keyword(name, "i") {
            return Ok(self.ctx.int_type(width));
        }
        if let Some(width) = parse_int_keyword(name, "si") {
            return Ok(self.ctx.int_type_with_signedness(width, Signedness::Signed));
        }
        if let Some(width) = parse_int_keyword(name, "ui") {
            return Ok(self.ctx.int_type_with_signedness(width, Signedness::Unsigned));
        }
        match name {
            "f16" => return Ok(self.ctx.float_type(FloatKind::F16)),
            "bf16" => return Ok(self.ctx.float_type(FloatKind::BF16)),
            "f32" => return Ok(self.ctx.f32_type()),
            "f64" => return Ok(self.ctx.f64_type()),
            "index" => return Ok(self.ctx.index_type()),
            _ => {}
        }
        match name {
            "vector" => {
                self.expect(&Token::Lt)?;
                let mut dims: Vec<u64> = Vec::new();
                loop {
                    match self.peek() {
                        Token::Integer { value, .. } if *value >= 0 => {
                            let value = *value;
                            self.bump();
                            dims.push(value as u64);
                            self.expect_keyword("x")?;
                        }
                        _ => break,
                    }
                }
                let elem = self.parse_type()?;
                self.expect(&Token::Gt)?;
                Ok(self.ctx.vector_type(dims, elem))
            }
            "tensor" | "memref" => {
                let is_tensor = name == "tensor";
                self.expect(&Token::Lt)?;
                let mut dims: Vec<i64> = Vec::new();
                loop {
                    match self.peek() {
                        Token::Integer { value, .. } if *value >= 0 => {
                            let value = *value;
                            self.bump();
                            dims.push(value as i64);
                            self.expect_keyword("x")?;
                        }
                        Token::Question => {
                            self.bump();
                            dims.push(-1);
                            self.expect_keyword("x")?;
                        }
                        _ => break,
                    }
                }
                let elem = self.parse_type()?;
                self.expect(&Token::Gt)?;
                Ok(if is_tensor {
                    self.ctx.tensor_type(dims, elem)
                } else {
                    self.ctx.memref_type(dims, elem)
                })
            }
            other => Err(self.error(format!("unknown builtin type `{other}`"))),
        }
    }

    fn parse_type_list_grouped(&mut self) -> Result<Vec<Type>> {
        if self.peek() == &Token::LParen {
            self.bump();
            let mut types = Vec::new();
            if !self.consume_if(&Token::RParen) {
                loop {
                    types.push(self.parse_type()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            Ok(types)
        } else {
            Ok(vec![self.parse_type()?])
        }
    }

    /// Parses an optional `<attr, attr, ...>` parameter list.
    fn parse_opt_param_list(&mut self) -> Result<Vec<Attribute>> {
        let mut params = Vec::new();
        if self.consume_if(&Token::Lt)
            && !self.consume_if(&Token::Gt) {
                loop {
                    params.push(self.parse_attribute()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::Gt)?;
            }
        Ok(params)
    }

    // ----- attributes ----------------------------------------------------------

    pub(crate) fn parse_attribute(&mut self) -> Result<Attribute> {
        match self.peek() {
            Token::Integer { value, hex } => {
                let (value, hex) = (*value, *hex);
                self.bump();
                if self.consume_if(&Token::Colon) {
                    let ty = self.parse_type()?;
                    match *self.ctx.type_data(ty) {
                        TypeData::Float(kind) => {
                            if hex {
                                let bits = u64::try_from(value).map_err(|_| {
                                    self.error(format!(
                                        "hex float literal {value:#x} does not fit in 64 bits"
                                    ))
                                })?;
                                Ok(self.ctx.intern_attr(AttrData::Float { bits, kind }))
                            } else {
                                Ok(self.ctx.float_attr(value as f64, kind))
                            }
                        }
                        TypeData::Integer { .. } | TypeData::Index => {
                            Ok(self.ctx.int_attr(value, ty))
                        }
                        _ => Err(self.error("integer attribute requires an integer, index, or float type")),
                    }
                } else {
                    // Untyped integers default to i64, matching common usage.
                    Ok(self.ctx.i64_attr(value as i64))
                }
            }
            Token::Float(value) => {
                let value = *value;
                self.bump();
                let kind = if self.consume_if(&Token::Colon) {
                    let ty = self.parse_type()?;
                    match *self.ctx.type_data(ty) {
                        TypeData::Float(kind) => kind,
                        _ => return Err(self.error("float attribute requires a float type")),
                    }
                } else {
                    FloatKind::F64
                };
                Ok(self.ctx.float_attr(value, kind))
            }
            Token::Str(_) => {
                let Token::Str(s) = self.bump() else { unreachable!() };
                Ok(self.ctx.string_attr(s))
            }
            Token::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.consume_if(&Token::RBracket) {
                    loop {
                        items.push(self.parse_attribute()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RBracket)?;
                }
                Ok(self.ctx.array_attr(items))
            }
            Token::SymbolRef(name) => {
                let name = *name;
                self.bump();
                Ok(self.ctx.symbol_ref_attr(name))
            }
            Token::Ident(kw) => match *kw {
                "unit" => {
                    self.bump();
                    Ok(self.ctx.unit_attr())
                }
                "true" => {
                    self.bump();
                    Ok(self.ctx.bool_attr(true))
                }
                "false" => {
                    self.bump();
                    Ok(self.ctx.bool_attr(false))
                }
                "loc" => {
                    self.bump();
                    self.expect(&Token::LParen)?;
                    let file = match self.bump() {
                        Token::Str(s) => s,
                        other => {
                            return Err(self
                                .error(format!("expected file string, found {}", other.describe())))
                        }
                    };
                    self.expect(&Token::Colon)?;
                    let line = self.expect_unsigned()? as u32;
                    self.expect(&Token::Colon)?;
                    let col = self.expect_unsigned()? as u32;
                    self.expect(&Token::RParen)?;
                    Ok(self.ctx.location_attr(&file, line, col))
                }
                "typeid" => {
                    self.bump();
                    self.expect(&Token::Lt)?;
                    let name = match self.bump() {
                        Token::Str(s) => s,
                        other => {
                            return Err(self.error(format!(
                                "expected type-id string, found {}",
                                other.describe()
                            )))
                        }
                    };
                    self.expect(&Token::Gt)?;
                    Ok(self.ctx.type_id_attr(&name))
                }
                _ => {
                    // Fall back to a type attribute (`i32`, `vector<...>`, ...).
                    let ty = self.parse_type()?;
                    Ok(self.ctx.type_attr(ty))
                }
            },
            Token::TypeRef(_) | Token::LParen => {
                let ty = self.parse_type()?;
                Ok(self.ctx.type_attr(ty))
            }
            Token::AttrRef(full) => {
                let full = *full;
                self.bump();
                if full == "native" {
                    self.expect(&Token::Lt)?;
                    let kind = self.expect_ident()?;
                    let text = match self.bump() {
                        Token::Str(s) => s,
                        other => {
                            return Err(self.error(format!(
                                "expected native parameter text, found {}",
                                other.describe()
                            )))
                        }
                    };
                    self.expect(&Token::Gt)?;
                    let offset = self.offset();
                    return self
                        .ctx
                        .native_attr(kind, &text)
                        .map_err(|d| d.or_offset(offset));
                }
                let (dialect, name) = full.split_once('.').ok_or_else(|| {
                    self.error(format!("attribute reference `#{full}` must be dialect-qualified"))
                })?;
                let dialect_sym = self.ctx.symbol(dialect);
                let name_sym = self.ctx.symbol(name);
                // Enum attribute if (dialect, name) names a registered enum.
                if self.ctx.registry().enum_def(dialect_sym, name_sym).is_some() {
                    self.expect(&Token::Lt)?;
                    let variant = self.expect_ident()?;
                    self.expect(&Token::Gt)?;
                    let offset = self.offset();
                    let info = self
                        .ctx
                        .registry()
                        .enum_def(dialect_sym, name_sym)
                        .expect("checked above");
                    let variant_sym = self.ctx.symbol_lookup(variant);
                    let valid = variant_sym.is_some_and(|v| info.variants.contains(&v));
                    if !valid {
                        return Err(Diagnostic::at(
                            offset,
                            format!("`{variant}` is not a constructor of enum `{dialect}.{name}`"),
                        ));
                    }
                    return Ok(self.ctx.enum_attr(dialect, name, variant));
                }
                let custom = self
                    .ctx
                    .registry()
                    .attr_def(dialect_sym, name_sym)
                    .and_then(|info| info.syntax.clone());
                let params = match custom {
                    Some(syntax) => {
                        self.expect(&Token::Lt)?;
                        let mut pp = ParamParser { parser: self };
                        let params = syntax.parse(&mut pp)?;
                        self.expect(&Token::Gt)?;
                        params
                    }
                    None => self.parse_opt_param_list()?,
                };
                let offset = self.offset();
                self.ctx
                    .parametric_attr_syms(dialect_sym, name_sym, params)
                    .map_err(|d| d.or_offset(offset))
            }
            other => Err(self.error(format!("expected attribute, found {}", other.describe()))),
        }
    }

    fn expect_unsigned(&mut self) -> Result<i128> {
        match self.peek() {
            Token::Integer { value, .. } if *value >= 0 => {
                let value = *value;
                self.bump();
                Ok(value)
            }
            other => Err(self.error(format!("expected unsigned integer, found {}", other.describe()))),
        }
    }

    // ----- operations ----------------------------------------------------------

    fn parse_op(&mut self) -> Result<OpRef> {
        // Result definitions: `%a:2, %b = ...` (inline up to two defs —
        // the overwhelmingly common shapes are zero or one).
        let mut defs: crate::inline_vec::InlineVec<(&'s str, usize), 2> =
            crate::inline_vec::InlineVec::new();
        if matches!(self.peek(), Token::ValueId(_)) {
            loop {
                // After a comma the next token need not be a value id
                // (`%a, = ...`), so this must reject, not assume.
                let name = match self.peek() {
                    Token::ValueId(name) => {
                        let name = *name;
                        self.bump();
                        name
                    }
                    other => {
                        return Err(self
                            .error(format!("expected result name, found {}", other.describe())))
                    }
                };
                let mut count = 1usize;
                if self.consume_if(&Token::Colon) {
                    count = self.expect_unsigned()? as usize;
                    if count == 0 {
                        return Err(self.error("result group size must be positive"));
                    }
                }
                defs.push((name, count));
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::Equals)?;
        }

        let op = match self.peek() {
            Token::Str(_) => {
                let Token::Str(name) = self.bump() else { unreachable!() };
                self.parse_generic_op_body(&name)?
            }
            Token::Ident(name) if name.contains('.') => {
                let name = *name;
                self.bump();
                self.parse_custom_op_body(name)?
            }
            other => {
                return Err(self.error(format!(
                    "expected operation name (quoted or dialect-qualified), found {}",
                    other.describe()
                )))
            }
        };

        // Bind result names.
        let total: usize = defs.iter().map(|(_, n)| n).sum();
        if !defs.is_empty() && total != op.num_results(self.ctx) {
            return Err(self.error(format!(
                "operation defines {} result(s), but {} name(s) were bound",
                op.num_results(self.ctx),
                total
            )));
        }
        let mut next = 0usize;
        for i in 0..defs.len() {
            let (name, count) = defs[i];
            let values: crate::inline_vec::InlineVec<Value, 1> =
                (next..next + count).map(|i| op.result(self.ctx, i)).collect();
            next += count;
            self.define_value_group(name, values)?;
        }
        Ok(op)
    }

    fn split_op_name(&mut self, full: &str) -> Result<OpName> {
        let (dialect, name) = full
            .split_once('.')
            .ok_or_else(|| self.error(format!("operation name `{full}` must be dialect-qualified")))?;
        let dialect = self.ctx.symbol(dialect);
        let name = self.ctx.symbol(name);
        Ok(OpName { dialect, name })
    }

    fn parse_generic_op_body(&mut self, full_name: &str) -> Result<OpRef> {
        let name = self.split_op_name(full_name)?;
        // The parsed lists accumulate directly into the operation state's
        // inline storage: a typical op never allocates on this path.
        let mut state = OperationState::new(name);
        self.expect(&Token::LParen)?;
        if !self.consume_if(&Token::RParen) {
            loop {
                match self.bump() {
                    Token::ValueId(vname) => {
                        let value = self.resolve_value(vname)?;
                        state.operands.push(value);
                    }
                    other => {
                        return Err(self
                            .error(format!("expected operand `%name`, found {}", other.describe())))
                    }
                }
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }

        if self.consume_if(&Token::LBracket)
            && !self.consume_if(&Token::RBracket) {
                loop {
                    match self.bump() {
                        Token::BlockId(bname) => {
                            let block = self.get_or_create_block(bname);
                            state.successors.push(block);
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected successor `^name`, found {}",
                                other.describe()
                            )))
                        }
                    }
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBracket)?;
            }

        if self.peek() == &Token::LParen {
            self.bump();
            if !self.consume_if(&Token::RParen) {
                loop {
                    let region = self.parse_region(&[])?;
                    state.regions.push(region);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
        }

        self.parse_optional_attr_entries(&mut state.attributes)?;

        self.expect(&Token::Colon)?;
        let sig_offset = self.offset();
        self.expect(&Token::LParen)?;
        // Operand types are checked against the operands as they stream
        // past instead of being buffered. The first mismatch is deferred:
        // an arity error (checked after the list is consumed) takes
        // precedence, matching the historical diagnostic order.
        let mut num_operand_types = 0usize;
        let mut type_mismatch: Option<Diagnostic> = None;
        if !self.consume_if(&Token::RParen) {
            loop {
                let expected = self.parse_type()?;
                if num_operand_types < state.operands.len() && type_mismatch.is_none() {
                    let actual = state.operands[num_operand_types].ty(self.ctx);
                    if actual != expected {
                        type_mismatch = Some(Diagnostic::at(
                            sig_offset,
                            format!(
                                "operand #{} has type {} but the signature expects {}",
                                num_operand_types,
                                actual.display(self.ctx),
                                expected.display(self.ctx)
                            ),
                        ));
                    }
                }
                num_operand_types += 1;
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect(&Token::Arrow)?;
        self.parse_result_types_grouped_or_empty_into(&mut state)?;

        if num_operand_types != state.operands.len() {
            return Err(Diagnostic::at(
                sig_offset,
                format!(
                    "signature lists {} operand type(s) but {} operand(s) were given",
                    num_operand_types,
                    state.operands.len()
                ),
            ));
        }
        if let Some(diag) = type_mismatch {
            return Err(diag);
        }

        Ok(self.ctx.create_op(state))
    }

    /// `() -> ()`-style empty lists are common in result position.
    fn parse_result_types_grouped_or_empty_into(
        &mut self,
        state: &mut OperationState,
    ) -> Result<()> {
        if self.peek() == &Token::LParen && self.peek2() == &Token::RParen {
            self.bump();
            self.bump();
            // A trailing `-> (...)` after `()` would mean a function type
            // result; the generic form never prints that without parens.
            return Ok(());
        }
        if self.consume_if(&Token::LParen) {
            loop {
                let ty = self.parse_type()?;
                state.result_types.push(ty);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        } else {
            let ty = self.parse_type()?;
            state.result_types.push(ty);
        }
        Ok(())
    }

    fn parse_custom_op_body(&mut self, full_name: &str) -> Result<OpRef> {
        let name = self.split_op_name(full_name)?;
        // Clone only the syntax handle (an `Arc` bump), not the whole
        // `OpInfo`: this runs once per custom-syntax op.
        let Some(info) = self.ctx.registry().op_info(name.dialect, name.name) else {
            return Err(self.error(format!(
                "operation `{full_name}` is not registered; use the quoted generic form"
            )));
        };
        let syntax = info.syntax.clone().ok_or_else(|| {
            self.error(format!(
                "operation `{full_name}` has no custom syntax; use the quoted generic form"
            ))
        })?;
        let mut op_parser = OpParser { parser: self, name };
        let mut state = syntax.parse(&mut op_parser)?;
        state.name = name;
        Ok(self.ctx.create_op(state))
    }

    // ----- regions ---------------------------------------------------------------

    fn parse_region(&mut self, entry_args: &[(&str, Type)]) -> Result<RegionRef> {
        self.expect(&Token::LBrace)?;
        let region = self.ctx.create_region();
        self.push_scopes();

        let starts_with_label = matches!(self.peek(), Token::BlockId(_));
        if starts_with_label && !entry_args.is_empty() {
            return Err(self.error(
                "region with explicit entry arguments cannot start with a block label",
            ));
        }

        if !starts_with_label {
            if self.peek() == &Token::RBrace && entry_args.is_empty() {
                // Empty region.
                self.bump();
                self.pop_scopes();
                return Ok(region);
            }
            let entry = self.ctx.create_block([]);
            self.ctx.append_block(region, entry);
            for (name, ty) in entry_args {
                let value = self.ctx.add_block_arg(entry, *ty);
                self.define_value_group(name, std::iter::once(value).collect())?;
            }
            while !matches!(self.peek(), Token::RBrace | Token::BlockId(_)) {
                let op = self.parse_op()?;
                self.ctx.append_op(entry, op);
            }
        }

        while let Token::BlockId(label) = self.peek() {
            let label = *label;
            self.bump();
            let block = self.get_or_create_block(label);
            if block.parent_region(self.ctx).is_some() {
                return Err(self.error(format!("redefinition of block `^{label}`")));
            }
            self.ctx.append_block(region, block);
            if self.consume_if(&Token::LParen)
                && !self.consume_if(&Token::RParen) {
                    loop {
                        let vname = match self.bump() {
                            Token::ValueId(v) => v,
                            other => {
                                return Err(self.error(format!(
                                    "expected block argument `%name`, found {}",
                                    other.describe()
                                )))
                            }
                        };
                        self.expect(&Token::Colon)?;
                        let ty = self.parse_type()?;
                        let value = self.ctx.add_block_arg(block, ty);
                        self.define_value_group(vname, std::iter::once(value).collect())?;
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
            self.expect(&Token::Colon)?;
            while !matches!(self.peek(), Token::RBrace | Token::BlockId(_)) {
                let op = self.parse_op()?;
                self.ctx.append_op(block, op);
            }
        }

        self.expect(&Token::RBrace)?;

        // Every referenced block must have been defined.
        let scope = self.block_scopes.last().expect("no block scope");
        for (&label, block) in scope {
            if block.parent_region(self.ctx).is_none() {
                let label = self.ctx.symbol_str(label);
                return Err(self.error(format!("use of undefined block `^{label}`")));
            }
        }
        self.pop_scopes();
        Ok(region)
    }
}

fn parse_int_keyword(name: &str, prefix: &str) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// The parsing interface handed to dialect syntax hooks (IRDL formats and
/// native implementations): token primitives plus recursive entry points
/// for types, attributes, operands, successors, and regions.
///
/// Identifier-returning methods hand back `&'s str` slices of the source
/// being parsed, so hooks can intern or inspect names without copies.
pub struct OpParser<'p, 's, 'c> {
    parser: &'p mut Parser<'s, 'c>,
    name: OpName,
}

impl<'p, 's, 'c> OpParser<'p, 's, 'c> {
    /// The name of the operation being parsed.
    pub fn op_name(&self) -> OpName {
        self.name
    }

    /// Mutable access to the context (for building types/attributes).
    pub fn ctx(&mut self) -> &mut Context {
        self.parser.ctx
    }

    /// Read-only access to the context.
    pub fn ctx_ref(&self) -> &Context {
        self.parser.ctx
    }

    /// Byte offset of the next token (for diagnostics).
    pub fn offset(&self) -> usize {
        self.parser.offset()
    }

    /// Creates a diagnostic at the current position.
    pub fn error(&self, message: impl Into<String>) -> Diagnostic {
        self.parser.error(message)
    }

    /// Consumes the next token if it equals `token`.
    pub fn consume_if(&mut self, token: &Token<'_>) -> bool {
        self.parser.consume_if(token)
    }

    /// Requires the next token to equal `token`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the found token otherwise.
    pub fn expect(&mut self, token: &Token<'_>) -> Result<()> {
        self.parser.expect(token)
    }

    /// Requires and returns a bare identifier (a source slice).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not an identifier.
    pub fn expect_ident(&mut self) -> Result<&'s str> {
        self.parser.expect_ident()
    }

    /// Requires the identifier `kw`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not `kw`.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        self.parser.expect_keyword(kw)
    }

    /// Consumes the identifier `kw` if present.
    pub fn consume_keyword(&mut self, kw: &str) -> bool {
        self.parser.consume_keyword(kw)
    }

    /// Peeks at the next token.
    pub fn peek(&self) -> &Token<'s> {
        self.parser.peek()
    }

    /// Parses and resolves one SSA operand (`%name`).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the value is undefined or malformed.
    pub fn parse_operand(&mut self) -> Result<Value> {
        match self.parser.bump() {
            Token::ValueId(name) => self.parser.resolve_value(name),
            other => Err(self
                .parser
                .error(format!("expected operand `%name`, found {}", other.describe()))),
        }
    }

    /// Parses a comma-separated list of operands.
    ///
    /// # Errors
    ///
    /// Propagates operand resolution failures.
    pub fn parse_operand_list(&mut self) -> Result<Vec<Value>> {
        let mut operands = vec![self.parse_operand()?];
        while self.consume_if(&Token::Comma) {
            operands.push(self.parse_operand()?);
        }
        Ok(operands)
    }

    /// Parses a type.
    ///
    /// # Errors
    ///
    /// Propagates type parsing failures.
    pub fn parse_type(&mut self) -> Result<Type> {
        self.parser.parse_type()
    }

    /// Parses an attribute.
    ///
    /// # Errors
    ///
    /// Propagates attribute parsing failures.
    pub fn parse_attribute(&mut self) -> Result<Attribute> {
        self.parser.parse_attribute()
    }

    /// Parses a successor block reference (`^name`).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not a block label.
    pub fn parse_successor(&mut self) -> Result<BlockRef> {
        match self.parser.bump() {
            Token::BlockId(name) => Ok(self.parser.get_or_create_block(name)),
            other => Err(self
                .parser
                .error(format!("expected successor `^name`, found {}", other.describe()))),
        }
    }

    /// Parses a nested region `{ ... }` with no predeclared entry arguments.
    ///
    /// # Errors
    ///
    /// Propagates region parsing failures.
    pub fn parse_region(&mut self) -> Result<RegionRef> {
        self.parser.parse_region(&[])
    }

    /// Parses a nested region whose entry block binds `args` (used by
    /// function-like syntaxes where the signature declares the arguments).
    ///
    /// # Errors
    ///
    /// Propagates region parsing failures.
    pub fn parse_region_with_entry(&mut self, args: &[(&str, Type)]) -> Result<RegionRef> {
        self.parser.parse_region(args)
    }

    /// Parses an optional trailing attribute dictionary into `state`.
    ///
    /// # Errors
    ///
    /// Propagates attribute parsing failures.
    pub fn parse_optional_attr_dict(&mut self, state: &mut OperationState) -> Result<()> {
        self.parser.parse_optional_attr_entries(&mut state.attributes)
    }

    /// Parses `@name`, returning the symbol text as a source slice.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not a symbol reference.
    pub fn parse_symbol_name(&mut self) -> Result<&'s str> {
        match self.parser.bump() {
            Token::SymbolRef(name) => Ok(name),
            other => Err(self
                .parser
                .error(format!("expected `@symbol`, found {}", other.describe()))),
        }
    }

    /// Parses `%name` introducing a *definition* (e.g. a function argument
    /// in a signature) and returns the raw name without resolving it.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not a value id.
    pub fn parse_value_id(&mut self) -> Result<&'s str> {
        match self.parser.bump() {
            Token::ValueId(name) => Ok(name),
            other => Err(self
                .parser
                .error(format!("expected `%name`, found {}", other.describe()))),
        }
    }
}

/// The parsing interface handed to type/attribute parameter-syntax hooks:
/// everything between the angle brackets of `!dialect.name<...>`.
pub struct ParamParser<'p, 's, 'c> {
    pub(crate) parser: &'p mut Parser<'s, 'c>,
}

impl<'p, 's, 'c> ParamParser<'p, 's, 'c> {
    /// Mutable access to the context.
    pub fn ctx(&mut self) -> &mut Context {
        self.parser.ctx
    }

    /// Read-only access to the context.
    pub fn ctx_ref(&self) -> &Context {
        self.parser.ctx
    }

    /// Creates a diagnostic at the current position.
    pub fn error(&self, message: impl Into<String>) -> Diagnostic {
        self.parser.error(message)
    }

    /// Peeks at the next token.
    pub fn peek(&self) -> &Token<'s> {
        self.parser.peek()
    }

    /// Requires the next token to equal `token`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the found token otherwise.
    pub fn expect(&mut self, token: &Token<'_>) -> Result<()> {
        self.parser.expect(token)
    }

    /// Consumes the next token if it equals `token`.
    pub fn consume_if(&mut self, token: &Token<'_>) -> bool {
        self.parser.consume_if(token)
    }

    /// Requires the identifier `kw`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if the next token is not `kw`.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        self.parser.expect_keyword(kw)
    }

    /// Parses a type.
    ///
    /// # Errors
    ///
    /// Propagates type parsing failures.
    pub fn parse_type(&mut self) -> Result<Type> {
        self.parser.parse_type()
    }

    /// Parses an attribute.
    ///
    /// # Errors
    ///
    /// Propagates attribute parsing failures.
    pub fn parse_attribute(&mut self) -> Result<Attribute> {
        self.parser.parse_attribute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::{op_to_string, op_to_string_generic};
    use crate::verify::verify_op;

    #[test]
    fn parse_types_roundtrip() {
        let mut ctx = Context::new();
        for text in [
            "i32",
            "si8",
            "ui64",
            "f32",
            "bf16",
            "index",
            "(i32, f32) -> f64",
            "() -> (i32, i32)",
            "vector<4 x f32>",
            "tensor<? x 3 x i8>",
            "memref<2 x 2 x f64>",
            "!cmath.complex<f32>",
            "!llvm.ptr",
        ] {
            let ty = parse_type_str(&mut ctx, text).unwrap();
            assert_eq!(ty.display(&ctx), text, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn parse_attrs_roundtrip() {
        let mut ctx = Context::new();
        for text in [
            "42 : i32",
            "-7 : i64",
            "1.5 : f32",
            "\"hello\"",
            "[1 : i32, 2 : i32]",
            "unit",
            "true",
            "false",
            "@main",
            "loc(\"f.mlir\":3:7)",
            "typeid<\"TypeID\">",
            "i32",
            "#llvm.linkage<\"internal\">",
            "#native<affine_map \"(d0) -> (d0)\">",
        ] {
            let attr = parse_attr_str(&mut ctx, text).unwrap();
            assert_eq!(attr.display(&ctx), text, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn parse_generic_op() {
        let mut ctx = Context::new();
        let src = r#"
            %0 = "test.source"() : () -> f32
            %1 = "test.twice"(%0, %0) {factor = 2 : i32} : (f32, f32) -> f32
        "#;
        let module = parse_module(&mut ctx, src).unwrap();
        verify_op(&ctx, module).unwrap();
        let block = ctx.module_block(module);
        assert_eq!(block.ops(&ctx).len(), 2);
        let twice = block.ops(&ctx)[1];
        assert_eq!(twice.num_operands(&ctx), 2);
        assert!(twice.attr(&ctx, "factor").is_some());
    }

    #[test]
    fn parse_print_roundtrip_with_regions_and_blocks() {
        let mut ctx = Context::new();
        let src = r#""test.func"() ({
^bb0(%arg: i32):
  "test.use"(%arg) : (i32) -> ()
  "test.br"()[^bb1] : () -> ()
^bb1:
  "test.done"() : () -> ()
}) : () -> ()"#;
        let module = parse_module(&mut ctx, src).unwrap();
        let block = ctx.module_block(module);
        let func = block.ops(&ctx)[0];
        let printed = op_to_string_generic(&ctx, func);
        // Re-parse the printed form and print again: must be a fixpoint.
        let mut ctx2 = Context::new();
        let module2 = parse_module(&mut ctx2, &printed).unwrap();
        let func2 = ctx2.module_block(module2).ops(&ctx2)[0];
        assert_eq!(op_to_string_generic(&ctx2, func2), printed);
    }

    #[test]
    fn forward_block_references_resolve() {
        let mut ctx = Context::new();
        let src = r#""test.region"() ({
  "test.br"()[^exit] : () -> ()
^exit:
  "test.done"() : () -> ()
}) : () -> ()"#;
        let module = parse_module(&mut ctx, src).unwrap();
        let func = ctx.module_block(module).ops(&ctx)[0];
        let region = func.region(&ctx, 0);
        assert_eq!(region.blocks(&ctx).len(), 2);
        let entry = region.entry_block(&ctx).unwrap();
        let br = entry.last_op(&ctx).unwrap();
        assert_eq!(br.successors(&ctx), &[region.blocks(&ctx)[1]]);
    }

    #[test]
    fn undefined_value_is_an_error() {
        let mut ctx = Context::new();
        let err = parse_module(&mut ctx, r#""test.use"(%nope) : (f32) -> ()"#).unwrap_err();
        assert!(err.message().contains("undefined value"), "{err}");
    }

    #[test]
    fn undefined_block_is_an_error() {
        let mut ctx = Context::new();
        let src = r#""test.region"() ({
  "test.br"()[^nowhere] : () -> ()
}) : () -> ()"#;
        let err = parse_module(&mut ctx, src).unwrap_err();
        assert!(err.message().contains("undefined block"), "{err}");
    }

    #[test]
    fn signature_mismatch_is_an_error() {
        let mut ctx = Context::new();
        let src = r#"
            %0 = "test.source"() : () -> f32
            "test.use"(%0) : (i32) -> ()
        "#;
        let err = parse_module(&mut ctx, src).unwrap_err();
        assert!(err.message().contains("has type f32"), "{err}");
    }

    #[test]
    fn multi_result_groups_parse() {
        let mut ctx = Context::new();
        let src = r#"
            %p:2 = "test.pair"() : () -> (f32, i32)
            "test.use"(%p#1) : (i32) -> ()
        "#;
        let module = parse_module(&mut ctx, src).unwrap();
        verify_op(&ctx, module).unwrap();
        // Round-trip through the printer.
        let printed = op_to_string(&ctx, module);
        let mut ctx2 = Context::new();
        assert!(parse_module(&mut ctx2, &printed).is_ok());
    }

    #[test]
    fn redefinition_is_an_error() {
        let mut ctx = Context::new();
        let src = r#"
            %x = "test.a"() : () -> f32
            %x = "test.b"() : () -> f32
        "#;
        let err = parse_module(&mut ctx, src).unwrap_err();
        assert!(err.message().contains("redefinition"), "{err}");
    }

    #[test]
    fn empty_module_roundtrips() {
        // Regression: a single empty block used to print headerless, which
        // reparsed as a zero-block region and made module_block panic.
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let text = op_to_string_generic(&ctx, module);
        let mut ctx2 = Context::new();
        let module2 = parse_module(&mut ctx2, &text).unwrap();
        assert!(module2.region(&ctx2, 0).entry_block(&ctx2).is_some());
        let _ = ctx2.module_block(module2); // must not panic
        assert_eq!(op_to_string_generic(&ctx2, module2), text);
    }

    #[test]
    fn quoted_attr_keys_roundtrip() {
        // Regression: keys that are not bare identifiers must print quoted
        // and parse back.
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let key = ctx.symbol("llvm.loop-metadata");
        let value = ctx.i64_attr(7);
        let name = ctx.op_name("test", "annotated");
        let op = ctx.create_op(OperationState::new(name).add_attribute(key, value));
        ctx.append_op(block, op);
        let text = op_to_string_generic(&ctx, op);
        assert!(text.contains("\"llvm.loop-metadata\" = 7 : i64"), "{text}");
        let mut ctx2 = Context::new();
        let module2 = parse_module(&mut ctx2, &text).unwrap();
        let reparsed = ctx2.module_block(module2).ops(&ctx2)[0];
        assert!(reparsed.attr(&ctx2, "llvm.loop-metadata").is_some());
    }

    #[test]
    fn oversized_hex_float_is_rejected() {
        let mut ctx = Context::new();
        let err = parse_attr_str(&mut ctx, "0x1FFFFFFFFFFFFFFFF : f64").unwrap_err();
        assert!(err.to_string().contains("does not fit in 64 bits"), "{err}");
    }

    #[test]
    fn successor_targeted_entry_block_prints_with_header() {
        // Regression: the entry-block header used to be omitted for
        // single-block regions even when a terminator named the block,
        // producing unparseable text.
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let (region, entry) = ctx.create_region_with_entry([]);
        let br = ctx.op_name("cf", "br");
        let brop = ctx.create_op(OperationState::new(br).add_successors([entry]));
        ctx.append_op(entry, brop);
        let holder = ctx.op_name("test", "holder");
        let op = ctx.create_op(OperationState::new(holder).add_regions([region]));
        ctx.append_op(block, op);
        let text = op_to_string_generic(&ctx, op);
        assert!(text.contains("^bb0:"), "{text}");
        let mut ctx2 = Context::new();
        assert!(parse_module(&mut ctx2, &text).is_ok(), "{text}");
    }
}
