//! Diagnostics shared by the verifier, parsers, and dialect hooks.

use std::error::Error;
use std::fmt;

/// The error type produced by verification, parsing, and dialect hooks.
///
/// A diagnostic carries a primary message plus optional notes providing
/// context (the enclosing operation, the constraint that failed, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    message: String,
    notes: Vec<String>,
    /// Byte offset into the source text for parser diagnostics, if known.
    offset: Option<usize>,
}

impl Diagnostic {
    /// Creates a diagnostic with the given primary message.
    pub fn new(message: impl Into<String>) -> Self {
        Diagnostic { message: message.into(), notes: Vec::new(), offset: None }
    }

    /// Creates a diagnostic anchored at a byte offset in some source text.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        Diagnostic { message: message.into(), notes: Vec::new(), offset: Some(offset) }
    }

    /// Appends a note and returns the diagnostic (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Appends a note in place.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The primary message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Attached notes, in the order they were added.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Byte offset into the source text, for parser diagnostics.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }

    /// Sets the source offset if not already known.
    pub fn or_offset(mut self, offset: usize) -> Self {
        self.offset.get_or_insert(offset);
        self
    }

    /// Shifts a known offset forward by `base`.
    ///
    /// Used when a diagnostic was produced against a slice of a larger
    /// buffer (chunked lexing) and must be re-anchored to absolute
    /// positions. A diagnostic with no offset is returned unchanged.
    pub fn rebase_offset(mut self, base: usize) -> Self {
        if let Some(offset) = self.offset.as_mut() {
            *offset += base;
        }
        self
    }

    /// Renders the diagnostic against `source`, resolving the byte offset to
    /// a line/column pair and quoting the offending line.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        match self.offset {
            Some(offset) => {
                let (line, col) = line_col(source, offset);
                out.push_str(&format!("error at {line}:{col}: {}", self.message));
                if let Some(text) = source.lines().nth(line - 1) {
                    out.push_str(&format!("\n  | {text}\n  | {}^", " ".repeat(col - 1)));
                }
            }
            None => out.push_str(&format!("error: {}", self.message)),
        }
        for note in &self.notes {
            out.push_str(&format!("\n  note: {note}"));
        }
        out
    }
}

/// Translates a byte `offset` in `source` into a 1-based `(line, column)`.
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        for note in &self.notes {
            write!(f, "; note: {note}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostic {}

/// Convenience alias used across the crate.
pub type Result<T, E = Diagnostic> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_notes() {
        let d = Diagnostic::new("bad operand").with_note("while verifying cmath.mul");
        assert_eq!(d.to_string(), "bad operand; note: while verifying cmath.mul");
    }

    #[test]
    fn render_resolves_line_and_column() {
        let src = "Dialect x {\n  Typo y\n}";
        let offset = src.find("Typo").unwrap();
        let d = Diagnostic::at(offset, "unknown directive `Typo`");
        let rendered = d.render(src);
        assert!(rendered.contains("error at 2:3"), "{rendered}");
        assert!(rendered.contains("Typo y"), "{rendered}");
    }

    #[test]
    fn line_col_of_first_byte() {
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("a\nbc", 2), (2, 1));
        assert_eq!(line_col("a\nbc", 3), (2, 2));
    }
}
