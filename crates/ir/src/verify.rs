//! The IR verifier: structural SSA rules plus registered dialect hooks.
//!
//! Verification proceeds in three layers, mirroring MLIR:
//!
//! 1. **Structural rules** that hold for any IR: terminators are final,
//!    successor edges stay within one region, every block of a multi-block
//!    region ends with a terminator, operations of unknown dialects are
//!    rejected when the context forbids them.
//! 2. **Dominance**: every operand's definition dominates its use
//!    (including uses nested in regions, which may capture values from
//!    enclosing regions).
//! 3. **Registered verifiers**: the per-operation hooks synthesized by the
//!    IRDL compiler from declarative constraints (or written natively).

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::block::BlockRef;
use crate::context::Context;
use crate::diag::Diagnostic;
use crate::dominance::DominanceCache;
use crate::journal::ChangeJournal;
use crate::op::OpRef;
use crate::region::RegionRef;
use crate::value::Value;

/// Verifies `root` and everything nested inside it.
///
/// # Errors
///
/// Returns every diagnostic discovered (the verifier does not stop at the
/// first failure).
pub fn verify_op(ctx: &Context, root: OpRef) -> Result<(), Vec<Diagnostic>> {
    verify(ctx, root, true)
}

/// Like [`verify_op`] but runs only the structural SSA rules, skipping
/// registered per-operation verifier hooks. Useful for checking IR whose
/// surrounding scaffolding is intentionally incomplete (e.g. generated
/// test inputs).
///
/// # Errors
///
/// Returns every structural diagnostic discovered.
pub fn verify_op_structural(ctx: &Context, root: OpRef) -> Result<(), Vec<Diagnostic>> {
    verify(ctx, root, false)
}

fn verify(ctx: &Context, root: OpRef, run_hooks: bool) -> Result<(), Vec<Diagnostic>> {
    ModuleVerifier::new().verify_inner(ctx, root, run_hooks)
}

/// Verifies a whole module (or any op tree) in one batch walk.
///
/// Equivalent to [`verify_op`]; callers that verify repeatedly (rewrite
/// drivers, fuzz loops) should hold a [`ModuleVerifier`] instead so the
/// dominance and position scratch tables keep their capacity between runs.
///
/// # Errors
///
/// Returns every diagnostic discovered.
pub fn verify_module(ctx: &Context, root: OpRef) -> Result<(), Vec<Diagnostic>> {
    verify_op(ctx, root)
}

/// A reusable whole-module verifier.
///
/// Behaves exactly like [`verify_op`], but the dominance cache and the
/// diagnostic buffer are retained (capacity-wise) across calls, so
/// verifying repeatedly does not re-allocate its scratch state each time.
/// Cached analyses are invalidated wholesale at the start of each call,
/// since the IR may have changed arbitrarily — this is the conservative
/// oracle; [`IncrementalVerifier`] is the journal-driven fast path.
#[derive(Default)]
pub struct ModuleVerifier {
    dominance: DominanceCache,
    diags: Vec<Diagnostic>,
}

impl ModuleVerifier {
    /// Creates a verifier with empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies `root` and everything nested inside it.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic discovered (the verifier does not stop at
    /// the first failure).
    pub fn verify(&mut self, ctx: &Context, root: OpRef) -> Result<(), Vec<Diagnostic>> {
        self.verify_inner(ctx, root, true)
    }

    /// Verifies `root` with up to `workers` threads sharing the context
    /// read-only, producing a verdict and diagnostic list byte-identical
    /// to [`verify`](Self::verify).
    ///
    /// A planning pre-pass linearizes the sequential walk into work units
    /// (emitted in exactly the order the sequential verifier would visit
    /// them — large subtrees are split into a placement "shell" followed
    /// by units for their nested regions), groups the units into chunks of
    /// roughly [`PAR_CHUNK_TARGET`] ops, and a `std::thread::scope` pool
    /// claims chunks off a shared atomic counter. Each worker verifies its
    /// chunks with a private [`DominanceCache`] and a private diagnostic
    /// buffer per chunk; buffers are merged in ascending chunk order, so
    /// the concatenation reproduces the sequential order no matter which
    /// worker ran which chunk. The context's sharded verdict cache is
    /// shared by all workers, so warm-cache semantics survive — verdicts
    /// are pure, so insertion races are benign.
    ///
    /// Falls back to the sequential walk when `workers <= 1` or when the
    /// module is too small for threading to pay for itself.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic discovered, in the same order as
    /// [`verify`](Self::verify).
    pub fn verify_parallel(
        &mut self,
        ctx: &Context,
        root: OpRef,
        workers: usize,
    ) -> Result<(), Vec<Diagnostic>> {
        if crate::walk::count_ops_capped(ctx, root, PAR_MIN_OPS) < PAR_MIN_OPS {
            return self.verify(ctx, root);
        }
        self.verify_parallel_force(ctx, root, workers)
    }

    /// [`verify_parallel`](Self::verify_parallel) without the small-module
    /// sequential fallback: the planner and worker pool run even on tiny
    /// modules. Only worth calling for differential testing (the fuzz
    /// oracle cross-checks it against the sequential walk on every
    /// generated module); production callers want the fallback.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic discovered, in sequential order.
    pub fn verify_parallel_force(
        &mut self,
        ctx: &Context,
        root: OpRef,
        workers: usize,
    ) -> Result<(), Vec<Diagnostic>> {
        if workers <= 1 {
            return self.verify(ctx, root);
        }
        self.dominance.clear();
        self.diags.clear();

        let plan = ParPlan::build(ctx, root);
        let chunk_count = plan.chunk_count();
        let workers = workers.min(chunk_count);
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, Vec<Diagnostic>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let plan = &plan;
                    let next = &next;
                    scope.spawn(move || {
                        let mut dominance = DominanceCache::default();
                        let mut found: Vec<(usize, Vec<Diagnostic>)> = Vec::new();
                        loop {
                            let chunk = next.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunk_count {
                                break;
                            }
                            let mut diags = Vec::new();
                            let mut verifier = Verifier {
                                ctx,
                                diags: &mut diags,
                                dominance: &mut dominance,
                                run_hooks: true,
                            };
                            for unit in plan.chunk(chunk) {
                                unit.run(&mut verifier);
                            }
                            if !diags.is_empty() {
                                found.push((chunk, diags));
                            }
                        }
                        found
                    })
                })
                .collect();
            for handle in handles {
                collected.extend(handle.join().expect("verifier worker panicked"));
            }
        });

        collected.sort_unstable_by_key(|&(chunk, _)| chunk);
        for (_, mut diags) in collected {
            self.diags.append(&mut diags);
        }
        if self.diags.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.diags))
        }
    }

    fn verify_inner(
        &mut self,
        ctx: &Context,
        root: OpRef,
        run_hooks: bool,
    ) -> Result<(), Vec<Diagnostic>> {
        self.dominance.clear();
        self.diags.clear();
        let mut verifier = Verifier {
            ctx,
            diags: &mut self.diags,
            dominance: &mut self.dominance,
            run_hooks,
        };
        verifier.verify_tree(root);
        if self.diags.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.diags))
        }
    }
}

/// The journal-driven incremental verifier.
///
/// Where [`ModuleVerifier`] re-walks the entire op tree on every call,
/// this verifier consumes a [`ChangeJournal`] and re-checks only the
/// recorded dirty set, making verification after a rewrite cost
/// proportional to what the rewrite touched:
///
/// - **created** ops are verified as whole subtrees (their nested regions
///   are new IR);
/// - **modified** ops (rewired operands, moves, displaced block
///   neighbours) are re-verified individually;
/// - **dirty blocks** get the O(1) structural block rules (a multi-block
///   region's blocks must be non-empty and terminator-final);
/// - **CFG-dirty regions** — where blocks were inserted/removed or ops
///   with successors were created/moved/erased — are re-verified
///   region-wide, because edge changes can alter dominance for ops
///   outside the dirty set;
/// - **erased regions** are evicted from the dominance cache before
///   anything else, since entity slots are reused and a stale analysis
///   under a recycled `RegionRef` would answer for the wrong CFG.
///
/// ## Soundness
///
/// [`verify_changes`](Self::verify_changes) assumes the IR was valid
/// before the journaled mutations (establish that once with
/// [`verify_full`](Self::verify_full)); under that precondition, an `Ok`
/// verdict implies the IR is valid afterwards. Every structural or SSA
/// rule is local to an op, its block, or its region's CFG, and every
/// mutation that can change a rule's outcome lands the affected entity in
/// the journal's dirty set — see DESIGN.md ("Incremental verification")
/// for the case analysis.
#[derive(Default)]
pub struct IncrementalVerifier {
    dominance: DominanceCache,
    diags: Vec<Diagnostic>,
    seen_ops: HashSet<OpRef>,
    seen_blocks: HashSet<BlockRef>,
    seen_regions: HashSet<RegionRef>,
}

impl IncrementalVerifier {
    /// Creates a verifier with empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full verification of `root`, establishing the valid-before baseline
    /// for subsequent [`verify_changes`](Self::verify_changes) calls and
    /// warming the dominance cache.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic discovered.
    pub fn verify_full(&mut self, ctx: &Context, root: OpRef) -> Result<(), Vec<Diagnostic>> {
        self.dominance.clear();
        self.diags.clear();
        let mut verifier =
            Verifier { ctx, diags: &mut self.diags, dominance: &mut self.dominance, run_hooks: true };
        verifier.verify_tree(root);
        self.take_verdict()
    }

    /// Re-verifies only the dirty set recorded in `journal`.
    ///
    /// The IR must have been valid before the journaled mutations; then
    /// `Ok` here means it is valid after them (and `Err` carries at least
    /// one real violation).
    ///
    /// # Errors
    ///
    /// Returns every diagnostic discovered in the dirty set.
    pub fn verify_changes(
        &mut self,
        ctx: &Context,
        journal: &ChangeJournal,
    ) -> Result<(), Vec<Diagnostic>> {
        self.diags.clear();
        self.seen_ops.clear();
        self.seen_blocks.clear();
        self.seen_regions.clear();

        // Eviction first: erased-region slots may already have been reused
        // by regions created later in the same journal window.
        for &region in journal.erased_regions() {
            self.dominance.invalidate(region);
        }
        for &region in journal.cfg_dirty_regions() {
            self.dominance.invalidate(region);
        }

        let mut verifier =
            Verifier { ctx, diags: &mut self.diags, dominance: &mut self.dominance, run_hooks: true };

        // Regions with CFG changes get the full (but region-scoped) walk;
        // everything they cover is marked seen so the per-op passes below
        // do not double-report.
        for &region in journal.cfg_dirty_regions() {
            if !self.seen_regions.insert(region) {
                continue;
            }
            for &block in region.blocks(ctx) {
                self.seen_blocks.insert(block);
                self.seen_ops.extend(block.ops(ctx).iter().copied());
            }
            verifier.verify_region(region);
        }

        for &op in journal.created() {
            if self.seen_ops.insert(op) {
                verifier.verify_placement(op);
                verifier.verify_tree(op);
            }
        }
        for &op in journal.modified() {
            if self.seen_ops.insert(op) {
                verifier.verify_placement(op);
                verifier.verify_single(op);
            }
        }
        for &block in journal.dirty_blocks() {
            if self.seen_blocks.insert(block) {
                verifier.verify_block_shape(block);
            }
        }
        self.take_verdict()
    }

    /// Number of regions with a cached dominator analysis (observability
    /// for tests and benchmarks).
    pub fn cached_regions(&self) -> usize {
        self.dominance.len()
    }

    fn take_verdict(&mut self) -> Result<(), Vec<Diagnostic>> {
        if self.diags.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut self.diags))
        }
    }
}

/// Verifies `root`, returning only the first diagnostic (convenience).
///
/// # Errors
///
/// Returns the first discovered diagnostic.
pub fn verify_op_first(ctx: &Context, root: OpRef) -> crate::Result<()> {
    verify_op(ctx, root).map_err(|mut diags| diags.remove(0))
}

/// Subtrees of at least this many ops are split out of their enclosing
/// block's work unit: the op itself becomes a [`ParUnit::Shell`] and its
/// regions are planned as further independent units.
const PAR_SPLIT_THRESHOLD: usize = 256;

/// Approximate op weight per chunk. Small enough that a module a few
/// thousand ops wide load-balances across workers, large enough that the
/// per-chunk claim (one atomic increment) and diagnostic buffer are noise.
const PAR_CHUNK_TARGET: usize = 1024;

/// Modules below this op count are verified sequentially even when a
/// worker pool was requested: thread spawn plus planning would dominate.
const PAR_MIN_OPS: usize = 4096;

/// One step of the linearized sequential walk.
///
/// The planner emits units in exactly the order [`Verifier::verify_tree`]
/// would report their diagnostics, so concatenating per-unit output in
/// plan order reproduces the sequential diagnostic list byte for byte.
enum ParUnit {
    /// The detached root: `verify_single` only (the sequential walk runs
    /// no placement rules on a root op).
    Root(OpRef),
    /// A large op whose regions were split into their own units:
    /// placement rules and per-op rules here, nested regions elsewhere.
    Shell { op: OpRef, is_last: bool, multi_block: bool },
    /// A small op verified whole: placement, per-op rules, and the full
    /// recursive walk of its nested regions.
    Subtree { op: OpRef, is_last: bool, multi_block: bool },
    /// The structural rule for an empty block in a multi-block region,
    /// reported positionally after the block's (absent) ops.
    EmptyBlock,
}

impl ParUnit {
    fn run(&self, verifier: &mut Verifier<'_, '_>) {
        match *self {
            ParUnit::Root(op) => verifier.verify_single(op),
            ParUnit::Shell { op, is_last, multi_block } => {
                verifier.verify_op_at(op, is_last, multi_block, false);
            }
            ParUnit::Subtree { op, is_last, multi_block } => {
                verifier.verify_op_at(op, is_last, multi_block, true);
            }
            ParUnit::EmptyBlock => verifier.diags.push(Diagnostic::new(
                "empty block in a multi-block region has no terminator",
            )),
        }
    }
}

/// The unit list plus chunk boundaries: chunk `i` is
/// `units[starts[i]..starts[i+1]]` (the last chunk runs to the end).
struct ParPlan {
    units: Vec<ParUnit>,
    starts: Vec<usize>,
    open_weight: usize,
}

impl ParPlan {
    fn build(ctx: &Context, root: OpRef) -> ParPlan {
        let mut plan = ParPlan { units: Vec::new(), starts: vec![0], open_weight: 0 };
        plan.push(ParUnit::Root(root), 1);
        for &region in root.regions(ctx) {
            plan.plan_region(ctx, region);
        }
        plan
    }

    fn push(&mut self, unit: ParUnit, weight: usize) {
        if self.open_weight >= PAR_CHUNK_TARGET {
            self.starts.push(self.units.len());
            self.open_weight = 0;
        }
        self.units.push(unit);
        self.open_weight += weight;
    }

    fn plan_region(&mut self, ctx: &Context, region: RegionRef) {
        let blocks = region.blocks(ctx);
        let multi_block = blocks.len() > 1;
        for &block in blocks {
            let ops = block.ops(ctx);
            for (index, &op) in ops.iter().enumerate() {
                let is_last = index + 1 == ops.len();
                let size = crate::walk::count_ops_capped(ctx, op, PAR_SPLIT_THRESHOLD);
                if size >= PAR_SPLIT_THRESHOLD {
                    self.push(ParUnit::Shell { op, is_last, multi_block }, 1);
                    for &nested in op.regions(ctx) {
                        self.plan_region(ctx, nested);
                    }
                } else {
                    self.push(ParUnit::Subtree { op, is_last, multi_block }, size);
                }
            }
            if multi_block && block.ops(ctx).is_empty() {
                self.push(ParUnit::EmptyBlock, 0);
            }
        }
    }

    fn chunk_count(&self) -> usize {
        self.starts.len()
    }

    fn chunk(&self, index: usize) -> &[ParUnit] {
        let start = self.starts[index];
        let end = self.starts.get(index + 1).copied().unwrap_or(self.units.len());
        &self.units[start..end]
    }
}

struct Verifier<'a, 'b> {
    ctx: &'a Context,
    diags: &'b mut Vec<Diagnostic>,
    dominance: &'b mut DominanceCache,
    run_hooks: bool,
}

impl<'a, 'b> Verifier<'a, 'b> {
    fn verify_tree(&mut self, root: OpRef) {
        self.verify_single(root);
        for &region in root.regions(self.ctx) {
            self.verify_region(region);
        }
    }

    fn verify_region(&mut self, region: RegionRef) {
        // The context is immutable for the whole walk, so block/op lists can
        // be iterated in place — no defensive copies.
        let ctx = self.ctx;
        let blocks = region.blocks(ctx);
        let multi_block = blocks.len() > 1;
        for &block in blocks {
            let ops = block.ops(ctx);
            for (index, &op) in ops.iter().enumerate() {
                let is_last = index + 1 == ops.len();
                self.verify_op_at(op, is_last, multi_block, true);
            }
            if multi_block && block.ops(ctx).is_empty() {
                self.diags.push(Diagnostic::new(
                    "empty block in a multi-block region has no terminator",
                ));
            }
        }
    }

    /// Verifies one op at a known block position: the positional placement
    /// rules, then the per-op rules, then (when `recurse`) every nested
    /// region. This is exactly the per-op body of
    /// [`Verifier::verify_region`]; the parallel planner re-emits it as
    /// standalone work units, so diagnostic text and order stay identical
    /// between the sequential walk and the chunked one.
    fn verify_op_at(&mut self, op: OpRef, is_last: bool, multi_block: bool, recurse: bool) {
        let ctx = self.ctx;
        if ctx.is_terminator(op) && !is_last {
            self.error(op, "terminator operation must be the last in its block");
        }
        if is_last && multi_block && !ctx.is_terminator(op) {
            self.error(op, "block in a multi-block region must end with a terminator");
        }
        self.verify_single(op);
        if recurse {
            for &nested in op.regions(ctx) {
                self.verify_region(nested);
            }
        }
    }

    fn verify_single(&mut self, op: OpRef) {
        let ctx = self.ctx;
        let name = op.name(ctx);

        // Dialect registration.
        let dialect_registered = ctx.registry().dialect(name.dialect).is_some();
        if !dialect_registered && !ctx.allows_unregistered() {
            self.error(op, "operation belongs to an unregistered dialect");
            return;
        }
        if dialect_registered
            && ctx.registry().op_info(name.dialect, name.name).is_none()
            && !ctx.allows_unregistered()
        {
            self.error(op, "operation is not registered in its dialect");
            return;
        }

        // Successor edges must stay within the parent region.
        if !op.successors(ctx).is_empty() {
            match op.parent_block(ctx).and_then(|b| b.parent_region(ctx)) {
                Some(region) => {
                    for &succ in op.successors(ctx) {
                        if succ.parent_region(ctx) != Some(region) {
                            self.error(op, "successor block belongs to a different region");
                        }
                    }
                }
                None => self.error(op, "operation with successors is not inserted in a region"),
            }
            if let Some(info) = ctx.op_info(op) {
                if !info.is_terminator {
                    self.error(op, "non-terminator operation cannot have successors");
                }
            }
        }

        // Dominance of operands.
        for (index, &operand) in op.operands(ctx).iter().enumerate() {
            if !self.value_dominates(operand, op) {
                self.error(
                    op,
                    format!("operand #{index} is used before its definition dominates the use"),
                );
            }
        }

        // Registered hook.
        if !self.run_hooks {
            return;
        }
        if let Some(info) = ctx.op_info(op) {
            if let Some(verifier) = info.verifier.clone() {
                if let Err(diag) = verifier.verify(ctx, op) {
                    self.diags
                        .push(diag.with_note(format!("in operation `{}`", name.display(ctx))));
                }
            }
        }
    }

    /// Checks whether `value`'s definition dominates the use in `user`.
    fn value_dominates(&mut self, value: Value, user: OpRef) -> bool {
        let ctx = self.ctx;
        let Some(def_block) = value.parent_block(ctx) else {
            // Detached definition: permitted only when the user is detached
            // too (IR under construction is not checked for dominance).
            return user.parent_block(ctx).is_none();
        };
        let Some(def_region) = def_block.parent_region(ctx) else {
            return true; // Detached block: under construction.
        };

        // Climb the user's ancestor chain until we reach the def's region.
        let mut cur: OpRef = user;
        let mut first = true;
        loop {
            let Some(cur_block) = cur.parent_block(ctx) else {
                // The user itself being detached means the IR is under
                // construction; a detached *ancestor* means we reached the
                // root without finding the defining region.
                return first;
            };
            first = false;
            let cur_region = match cur_block.parent_region(ctx) {
                Some(r) => r,
                None => return true,
            };
            if cur_region == def_region {
                return self.dominates_in_region(def_region, value, def_block, cur, cur_block);
            }
            match cur_region.parent_op(ctx) {
                Some(parent) => cur = parent,
                None => return false, // def region is not an ancestor
            }
        }
    }

    fn dominates_in_region(
        &mut self,
        region: RegionRef,
        value: Value,
        def_block: BlockRef,
        user: OpRef,
        user_block: BlockRef,
    ) -> bool {
        let ctx = self.ctx;
        // Same-block queries never touch the dominator analysis: block
        // arguments precede every op, and op ordering is an O(1) order-key
        // comparison. This keeps straight-line verification free of any
        // per-block index building.
        if def_block == user_block {
            return match value {
                Value::BlockArg { .. } => true,
                Value::OpResult { op: def_op, .. } => def_op.is_before_in_block(ctx, user),
            };
        }
        self.dominance.get_or_compute(ctx, region).dominates(def_block, user_block)
    }

    /// The O(1) in-block placement rules for one op, used by the
    /// incremental verifier on dirty ops (the whole-tree walk checks the
    /// same rules positionally in [`Verifier::verify_region`]).
    fn verify_placement(&mut self, op: OpRef) {
        let ctx = self.ctx;
        let Some(block) = op.parent_block(ctx) else { return };
        let Some(region) = block.parent_region(ctx) else { return };
        let is_last = block.ops(ctx).last() == Some(&op);
        if ctx.is_terminator(op) && !is_last {
            self.error(op, "terminator operation must be the last in its block");
        }
        if is_last && region.blocks(ctx).len() > 1 && !ctx.is_terminator(op) {
            self.error(op, "block in a multi-block region must end with a terminator");
        }
    }

    /// The O(1) per-block structural rules, used by the incremental
    /// verifier on dirty blocks: in a multi-block region a block must be
    /// non-empty and end with a terminator.
    fn verify_block_shape(&mut self, block: BlockRef) {
        let ctx = self.ctx;
        let Some(region) = block.parent_region(ctx) else { return };
        if region.blocks(ctx).len() <= 1 {
            return;
        }
        match block.ops(ctx).last() {
            None => self.diags.push(Diagnostic::new(
                "empty block in a multi-block region has no terminator",
            )),
            Some(&last) => {
                if !ctx.is_terminator(last) {
                    self.error(last, "block in a multi-block region must end with a terminator");
                }
            }
        }
    }

    fn error(&mut self, op: OpRef, message: impl Into<String>) {
        let name = op.name(self.ctx).display(self.ctx);
        self.diags
            .push(Diagnostic::new(message).with_note(format!("in operation `{name}`")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, OperationState};

    fn value_op(ctx: &mut Context, block: crate::BlockRef) -> OpRef {
        let f32 = ctx.f32_type();
        let name = ctx.op_name("test", "def");
        let op = ctx.create_op(OperationState::new(name).add_result_types([f32]));
        ctx.append_op(block, op);
        op
    }

    #[test]
    fn well_formed_module_verifies() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let def = value_op(&mut ctx, block);
        let v = def.result(&ctx, 0);
        let name = ctx.op_name("test", "use");
        let user = ctx.create_op(OperationState::new(name).add_operands([v]));
        ctx.append_op(block, user);
        assert!(verify_op(&ctx, module).is_ok());
    }

    #[test]
    fn use_before_def_in_same_block_fails() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let def = value_op(&mut ctx, block);
        let v = def.result(&ctx, 0);
        let name = ctx.op_name("test", "use");
        let user = ctx.create_op(OperationState::new(name).add_operands([v]));
        // Insert the user *before* the definition.
        ctx.detach_op(def);
        ctx.append_op(block, user);
        ctx.append_op(block, def);
        let errs = verify_op(&ctx, module).unwrap_err();
        assert!(errs[0].message().contains("dominates"), "{}", errs[0]);
    }

    #[test]
    fn nested_region_can_capture_outer_values() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let def = value_op(&mut ctx, block);
        let v = def.result(&ctx, 0);
        let (region, inner) = ctx.create_region_with_entry([]);
        let use_name = ctx.op_name("test", "use");
        let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
        ctx.append_op(inner, user);
        let outer_name = ctx.op_name("test", "outer");
        let outer = ctx.create_op(OperationState::new(outer_name).add_regions([region]));
        ctx.append_op(block, outer);
        assert!(verify_op(&ctx, module).is_ok());
    }

    #[test]
    fn value_cannot_escape_its_region() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let (region, inner) = ctx.create_region_with_entry([]);
        let def = value_op(&mut ctx, inner);
        let v = def.result(&ctx, 0);
        let outer_name = ctx.op_name("test", "outer");
        let outer = ctx.create_op(OperationState::new(outer_name).add_regions([region]));
        ctx.append_op(block, outer);
        // Use the inner value at module scope: invalid.
        let use_name = ctx.op_name("test", "use");
        let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
        ctx.append_op(block, user);
        assert!(verify_op(&ctx, module).is_err());
    }

    #[test]
    fn misplaced_terminator_fails() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let other = ctx.create_block([]);
        let br = ctx.op_name("cf", "br");
        let op = ctx.create_op(OperationState::new(br).add_successors([other]));
        ctx.append_op(block, op);
        let after = ctx.op_name("test", "after");
        let trailing = ctx.create_op(OperationState::new(after));
        ctx.append_op(block, trailing);
        let errs = verify_op(&ctx, module).unwrap_err();
        assert!(
            errs.iter().any(|d| d.message().contains("terminator")),
            "{errs:?}"
        );
    }

    #[test]
    fn unregistered_dialect_rejected_when_strict() {
        let mut ctx = Context::new();
        ctx.set_allow_unregistered(false);
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let name = ctx.op_name("ghost", "op");
        let op = ctx.create_op(OperationState::new(name));
        ctx.append_op(block, op);
        let errs = verify_op(&ctx, module).unwrap_err();
        assert!(errs[0].message().contains("unregistered"), "{}", errs[0]);
    }

    #[test]
    fn parallel_verify_matches_sequential_diagnostics() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let f32 = ctx.f32_type();
        let def_name = ctx.op_name("test", "def");
        let use_name = ctx.op_name("test", "use");
        let outer_name = ctx.op_name("test", "outer");
        // Wide fan-out, large enough to take the threaded path, with a
        // use-before-def violation sprinkled in every 97th pair.
        for i in 0..6000usize {
            let def = ctx.create_op(OperationState::new(def_name).add_result_types([f32]));
            ctx.append_op(block, def);
            let v = def.result(&ctx, 0);
            let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
            ctx.append_op(block, user);
            if i % 97 == 0 {
                // Reorder so the user precedes its definition.
                ctx.detach_op(def);
                ctx.append_op(block, def);
            }
        }
        // One large nested region so the planner exercises the shell split.
        let (region, inner) = ctx.create_region_with_entry([]);
        for i in 0..800usize {
            let def = ctx.create_op(OperationState::new(def_name).add_result_types([f32]));
            ctx.append_op(inner, def);
            let v = def.result(&ctx, 0);
            let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
            ctx.append_op(inner, user);
            if i % 131 == 0 {
                ctx.detach_op(def);
                ctx.append_op(inner, def);
            }
        }
        let outer = ctx.create_op(OperationState::new(outer_name).add_regions([region]));
        ctx.append_op(block, outer);

        let sequential = ModuleVerifier::new().verify(&ctx, module).unwrap_err();
        let expected: Vec<String> = sequential.iter().map(|d| d.to_string()).collect();
        assert!(!expected.is_empty());
        for workers in [1, 2, 8] {
            let parallel =
                ModuleVerifier::new().verify_parallel(&ctx, module, workers).unwrap_err();
            let got: Vec<String> = parallel.iter().map(|d| d.to_string()).collect();
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn parallel_verify_accepts_valid_module() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let f32 = ctx.f32_type();
        let def_name = ctx.op_name("test", "def");
        let use_name = ctx.op_name("test", "use");
        for _ in 0..5000 {
            let def = ctx.create_op(OperationState::new(def_name).add_result_types([f32]));
            ctx.append_op(block, def);
            let v = def.result(&ctx, 0);
            let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
            ctx.append_op(block, user);
        }
        assert!(ModuleVerifier::new().verify_parallel(&ctx, module, 4).is_ok());
    }

    #[test]
    fn cross_block_dominance_in_cfg() {
        let mut ctx = Context::new();
        // Region: entry(defines %v) -> next(uses %v). Requires terminator.
        let module = ctx.create_module();
        let mblock = ctx.module_block(module);
        let region = ctx.create_region();
        let entry = ctx.create_block([]);
        let next = ctx.create_block([]);
        ctx.append_block(region, entry);
        ctx.append_block(region, next);
        let def = value_op(&mut ctx, entry);
        let v = def.result(&ctx, 0);
        let br = ctx.op_name("cf", "br");
        let br_op = ctx.create_op(OperationState::new(br).add_successors([next]));
        ctx.append_op(entry, br_op);
        let use_name = ctx.op_name("test", "use");
        let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
        ctx.append_op(next, user);
        let ret = ctx.op_name("cf", "ret");
        let ret_op = ctx.create_op(OperationState::new(ret).add_successors([]));
        ctx.append_op(next, ret_op);
        let holder_name = ctx.op_name("test", "holder");
        let holder = ctx.create_op(OperationState::new(holder_name).add_regions([region]));
        ctx.append_op(mblock, holder);
        // `cf.ret` has an empty successor list but is unregistered, so it is
        // not recognized as a terminator; the multi-block rule fires for it.
        let result = verify_op(&ctx, module);
        let errs = result.unwrap_err();
        assert!(
            errs.iter().all(|d| d.message().contains("terminator")),
            "only terminator-placement errors expected, got {errs:?}"
        );
        assert!(
            !errs.iter().any(|d| d.message().contains("dominates")),
            "cross-block use is dominated: {errs:?}"
        );
    }
}
