//! Reference-documentation generation from a dialect registry.
//!
//! Because every definition carries its `Summary` and structure as data,
//! API documentation falls out of the registry — no doc comments in a host
//! language to maintain. `irdl-doc` renders Markdown per dialect.

use irdl::introspect::{DialectReport, OpReport};
use irdl_ir::Context;

/// Renders Markdown reference documentation for `dialects` (names), or for
/// every registered dialect when `dialects` is empty.
pub fn render_markdown(ctx: &Context, dialects: &[String]) -> String {
    let mut out = String::from("# Dialect reference\n");
    for report in irdl::introspect::report(ctx) {
        if !dialects.is_empty() && !dialects.contains(&report.name) {
            continue;
        }
        out.push_str(&render_dialect(&report));
    }
    out
}

fn render_dialect(report: &DialectReport) -> String {
    let mut out = format!("\n## `{}`\n", report.name);
    if !report.summary.is_empty() {
        out.push_str(&format!("\n{}\n", report.summary));
    }
    out.push_str(&format!(
        "\n{} operation(s), {} type(s), {} attribute(s), {} enum(s).\n",
        report.ops.len(),
        report.types.len(),
        report.attrs.len(),
        report.num_enums,
    ));

    if !report.types.is_empty() {
        out.push_str("\n### Types\n\n| name | parameters | notes |\n|---|---|---|\n");
        for def in &report.types {
            out.push_str(&format!(
                "| `!{}.{}` | {} | {} |\n",
                report.name,
                def.name,
                def.param_kinds.len(),
                type_notes(def)
            ));
        }
    }
    if !report.attrs.is_empty() {
        out.push_str("\n### Attributes\n\n| name | parameters | notes |\n|---|---|---|\n");
        for def in &report.attrs {
            out.push_str(&format!(
                "| `#{}.{}` | {} | {} |\n",
                report.name,
                def.name,
                def.param_kinds.len(),
                type_notes(def)
            ));
        }
    }
    if !report.ops.is_empty() {
        out.push_str(
            "\n### Operations\n\n| name | operands | results | attrs | regions | summary |\n\
             |---|---|---|---|---|---|\n",
        );
        for op in &report.ops {
            out.push_str(&format!(
                "| `{}.{}`{} | {} | {} | {} | {} | {} |\n",
                report.name,
                op.name,
                if op.is_terminator { " *(terminator)*" } else { "" },
                count_with_variadic(op.decl.operand_defs, op.decl.variadic_operands),
                count_with_variadic(op.decl.result_defs, op.decl.variadic_results),
                op.decl.attr_defs,
                op.decl.region_defs,
                op.summary,
            ));
        }
    }
    out
}

fn count_with_variadic(defs: u32, variadic: u32) -> String {
    if variadic > 0 {
        format!("{defs} ({variadic} variadic)")
    } else {
        defs.to_string()
    }
}

fn type_notes(def: &irdl::introspect::TypeAttrReport) -> String {
    let mut notes = Vec::new();
    if !def.params_in_irdl() {
        notes.push("native parameters");
    }
    if def.has_native_verifier {
        notes.push("native verifier");
    }
    if notes.is_empty() {
        if def.summary.is_empty() {
            "—".to_string()
        } else {
            def.summary.clone()
        }
    } else {
        notes.join(", ")
    }
}

/// Used by the doc table to show terminators distinctly.
#[allow(dead_code)]
fn is_terminator(op: &OpReport) -> bool {
    op.is_terminator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_showcase_docs() {
        let mut ctx = Context::new();
        irdl_dialects::showcase::register_showcase(&mut ctx).unwrap();
        let docs = render_markdown(&ctx, &["cmath".to_string()]);
        assert!(docs.contains("## `cmath`"), "{docs}");
        assert!(docs.contains("`!cmath.complex`"), "{docs}");
        assert!(docs.contains("Multiply two complex numbers"), "{docs}");
        assert!(!docs.contains("## `func`"), "filtering failed: {docs}");
    }

    #[test]
    fn renders_all_when_unfiltered() {
        let mut ctx = Context::new();
        irdl_dialects::showcase::register_showcase(&mut ctx).unwrap();
        let docs = render_markdown(&ctx, &[]);
        assert!(docs.contains("## `cmath`"));
        assert!(docs.contains("## `func`"));
        assert!(docs.contains("*(terminator)*"), "{docs}");
    }
}
