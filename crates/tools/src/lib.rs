//! IR-design tooling built on IRDL's introspectable definitions.
//!
//! The paper's Figure 1 positions IRDL as the foundation of an ecosystem of
//! productivity tooling — "IR Language Server, IR Statistics, IR
//! Refactoring, More IR Tools". This crate provides the first pieces:
//!
//! - [`completion`]: name completion and signature help over a registry,
//!   the core queries an LSP server would serve;
//! - `irdl-opt` (binary): an `mlir-opt`-style parse/verify/rewrite driver,
//!   fully runtime-configured;
//! - [`report`] / `irdl-run` (binary): execute modules on the
//!   `irdl-interp` register machine and report observations and traps;
//! - `irdl-fmt` (binary): a canonical formatter for IRDL specifications;
//! - [`docgen`] / `irdl-doc` (binary): Markdown reference documentation
//!   generated from the registry.

pub mod completion;
pub mod docgen;
pub mod report;
