//! Completion and signature help over a dialect registry.
//!
//! These are the queries an IR language server answers while a developer
//! types IR or IRDL: "which operations start with `cmath.m`?", "what does
//! `cmath.mul` expect?". They work on any [`Context`] because registered
//! definitions are introspectable data — the paper's argument for a
//! structured definition format (§3).

use irdl_ir::Context;

/// One completion item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionItem {
    /// The completed name (`cmath.mul`, `!cmath.complex`, ...).
    pub name: String,
    /// The definition's documentation summary, when present.
    pub summary: String,
    /// What kind of definition this is.
    pub kind: CompletionKind,
}

/// The kind of a completed definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// An operation.
    Operation,
    /// A type definition.
    Type,
    /// An attribute definition.
    Attribute,
    /// A dialect namespace.
    Dialect,
}

/// Completes `prefix` against every registered definition.
///
/// A bare prefix (`cma`) completes dialect names; a dotted prefix
/// (`cmath.m`) completes operations, types, and attributes of that
/// dialect. Results are sorted by name.
pub fn complete(ctx: &Context, prefix: &str) -> Vec<CompletionItem> {
    let mut items = Vec::new();
    match prefix.split_once('.') {
        None => {
            for dialect in ctx.registry().dialects() {
                let Some(name_sym) = dialect.name else { continue };
                let name = ctx.symbol_str(name_sym);
                if name.starts_with(prefix) {
                    items.push(CompletionItem {
                        name: name.to_string(),
                        summary: dialect.summary.clone(),
                        kind: CompletionKind::Dialect,
                    });
                }
            }
        }
        Some((dialect_name, member_prefix)) => {
            let Some(dialect_sym) = ctx.symbol_lookup(dialect_name) else {
                return items;
            };
            let Some(dialect) = ctx.registry().dialect(dialect_sym) else {
                return items;
            };
            for op in dialect.ops() {
                let name = ctx.symbol_str(op.name);
                if name.starts_with(member_prefix) {
                    items.push(CompletionItem {
                        name: format!("{dialect_name}.{name}"),
                        summary: op.summary.clone(),
                        kind: CompletionKind::Operation,
                    });
                }
            }
            for def in dialect.types() {
                let name = ctx.symbol_str(def.name);
                if name.starts_with(member_prefix) {
                    items.push(CompletionItem {
                        name: format!("!{dialect_name}.{name}"),
                        summary: def.summary.clone(),
                        kind: CompletionKind::Type,
                    });
                }
            }
            for def in dialect.attrs() {
                let name = ctx.symbol_str(def.name);
                if name.starts_with(member_prefix) {
                    items.push(CompletionItem {
                        name: format!("#{dialect_name}.{name}"),
                        summary: def.summary.clone(),
                        kind: CompletionKind::Attribute,
                    });
                }
            }
        }
    }
    items.sort_by(|a, b| a.name.cmp(&b.name));
    items
}

/// Renders signature help for a fully qualified operation name.
///
/// Returns `None` when the operation is not registered.
pub fn signature_help(ctx: &Context, qualified: &str) -> Option<String> {
    let (dialect_name, op_name) = qualified.split_once('.')?;
    let dialect_sym = ctx.symbol_lookup(dialect_name)?;
    let op_sym = ctx.symbol_lookup(op_name)?;
    let info = ctx.registry().op_info(dialect_sym, op_sym)?;
    let mut out = format!("{dialect_name}.{op_name}");
    if !info.summary.is_empty() {
        out.push_str(&format!(" — {}", info.summary));
    }
    out.push('\n');
    let decl = &info.decl;
    out.push_str(&format!(
        "  operands: {}{}\n",
        decl.operand_defs,
        if decl.variadic_operands > 0 {
            format!(" ({} variadic)", decl.variadic_operands)
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "  results:  {}{}\n",
        decl.result_defs,
        if decl.variadic_results > 0 {
            format!(" ({} variadic)", decl.variadic_results)
        } else {
            String::new()
        }
    ));
    if decl.attr_defs > 0 {
        out.push_str(&format!("  attributes: {}\n", decl.attr_defs));
    }
    if decl.region_defs > 0 {
        out.push_str(&format!("  regions: {}\n", decl.region_defs));
    }
    if info.is_terminator {
        out.push_str(&format!("  terminator with {} successor(s)\n", decl.successor_defs));
    }
    if decl.has_native_verifier {
        out.push_str("  has a native (IRDL-Rust) verifier\n");
    }
    if info.syntax.is_some() {
        out.push_str("  has a custom assembly format\n");
    }
    Some(out)
}

/// Renders signature help for a fully qualified type or attribute name
/// (with or without its `!`/`#` sigil).
pub fn type_signature_help(ctx: &Context, qualified: &str) -> Option<String> {
    let stripped = qualified.trim_start_matches(['!', '#']);
    let (dialect_name, def_name) = stripped.split_once('.')?;
    let dialect_sym = ctx.symbol_lookup(dialect_name)?;
    let def_sym = ctx.symbol_lookup(def_name)?;
    let (sigil, info) = match ctx.registry().type_def(dialect_sym, def_sym) {
        Some(info) => ('!', info),
        None => ('#', ctx.registry().attr_def(dialect_sym, def_sym)?),
    };
    let mut out = format!("{sigil}{dialect_name}.{def_name}");
    if !info.summary.is_empty() {
        out.push_str(&format!(" — {}", info.summary));
    }
    out.push('\n');
    for (name, kind) in info.param_names.iter().zip(&info.param_kinds) {
        out.push_str(&format!("  {}: {kind:?}\n", ctx.symbol_str(*name)));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn showcase() -> Context {
        let mut ctx = Context::new();
        irdl_dialects::showcase::register_showcase(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn complete_dialect_names() {
        let ctx = showcase();
        let items = complete(&ctx, "cm");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "cmath");
        assert_eq!(items[0].kind, CompletionKind::Dialect);
    }

    #[test]
    fn complete_ops_and_types() {
        let ctx = showcase();
        let items = complete(&ctx, "cmath.");
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"cmath.mul"), "{names:?}");
        assert!(names.contains(&"cmath.norm"), "{names:?}");
        assert!(names.contains(&"!cmath.complex"), "{names:?}");
        let m_items = complete(&ctx, "cmath.m");
        assert_eq!(m_items.len(), 1);
        assert_eq!(m_items[0].name, "cmath.mul");
        assert_eq!(m_items[0].summary, "Multiply two complex numbers");
    }

    #[test]
    fn unknown_prefixes_complete_to_nothing() {
        let ctx = showcase();
        assert!(complete(&ctx, "nosuch.").is_empty());
        assert!(complete(&ctx, "zzz").is_empty());
    }

    #[test]
    fn op_signature_help_renders() {
        let ctx = showcase();
        let help = signature_help(&ctx, "cmath.mul").unwrap();
        assert!(help.contains("Multiply two complex numbers"), "{help}");
        assert!(help.contains("operands: 2"), "{help}");
        assert!(help.contains("results:  1"), "{help}");
        assert!(help.contains("custom assembly format"), "{help}");
        assert!(signature_help(&ctx, "cmath.nope").is_none());
        let ret = signature_help(&ctx, "func.return_op").unwrap();
        assert!(ret.contains("terminator"), "{ret}");
        assert!(ret.contains("variadic"), "{ret}");
    }

    #[test]
    fn type_signature_help_renders() {
        let ctx = showcase();
        let help = type_signature_help(&ctx, "!cmath.complex").unwrap();
        assert!(help.contains("elementType"), "{help}");
        assert!(type_signature_help(&ctx, "cmath.complex").is_some());
        assert!(type_signature_help(&ctx, "!cmath.nope").is_none());
    }
}
