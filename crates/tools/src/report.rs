//! Rendering interpreter executions for command-line output.
//!
//! Shared by `irdl-run` and `irdl-opt --interp`: one observation per
//! line, a trailing status line, and the trap (when any) rendered with
//! its full diagnostic detail.

use irdl_interp::Execution;

/// Renders an execution as the tools print it: each observed sink as
/// `name(v, ...)`, then either `// trap ...` (full detail) or
/// `// return (N steps)`.
pub fn render_execution(exec: &Execution) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, operands) in &exec.observed {
        let rendered: Vec<String> = operands.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "{name}({})", rendered.join(", "));
    }
    match &exec.trap {
        Some(trap) => {
            let _ = writeln!(out, "// {trap}");
        }
        None => {
            let _ = writeln!(out, "// return ({} step(s))", exec.steps);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_interp::{EvalValue, FloatKind, Trap, TrapKind};

    #[test]
    fn renders_observations_and_return() {
        let exec = Execution {
            observed: vec![
                ("fuzz.sink".to_string(), vec![EvalValue::int(42, 32)]),
                (
                    "func.return_op".to_string(),
                    vec![EvalValue::float(2.5, FloatKind::F64), EvalValue::int(-1, 8)],
                ),
            ],
            trap: None,
            steps: 7,
        };
        let text = render_execution(&exec);
        assert_eq!(
            text,
            "fuzz.sink(42 : i32)\nfunc.return_op(2.5 : f64, -1 : i8)\n// return (7 step(s))\n"
        );
    }

    #[test]
    fn renders_trap_with_full_detail() {
        let exec = Execution {
            observed: Vec::new(),
            trap: Some(Trap {
                kind: TrapKind::DivByZero,
                op: "\"fuzz.divi\"(%a, %z) : (i32, i32) -> i32".to_string(),
                detail: "divisor is zero".to_string(),
            }),
            steps: 3,
        };
        let text = render_execution(&exec);
        assert!(text.contains("// trap [div-by-zero]"), "{text}");
        assert!(text.contains("divisor is zero"), "{text}");
    }
}
