//! `irdl-bc`: the bytecode toolbox.
//!
//! Converts between the textual and binary forms of the stack's three
//! bytecode file kinds — `IRBC` modules, `IRDB` dialect bundles, and
//! `IRMP` match-program catalogs — and inspects their section structure:
//!
//! ```text
//! irdl-bc encode --corpus input.ir -o input.mlirbc
//! irdl-bc decode input.mlirbc
//! irdl-bc bundle cmath.irdl arith.irdl -o dialects.irdlbc
//! irdl-bc inspect input.mlirbc
//! ```
//!
//! Subcommands:
//! - `encode`  parse a text module (file or stdin) and emit `IRBC` bytes
//! - `decode`  decode `IRBC` bytes back to text
//! - `bundle`  compile IRDL specs into an `IRDB` dialect artifact that
//!   [`irdl::DialectBundle::load`] rehydrates without the frontend
//! - `inspect` print the magic, version, and per-section byte counts of
//!   any bytecode file (no dialects needed — purely structural)
//!
//! Shared options: `--irdl FILE` (repeatable), `--corpus`, `--showcase`
//! register dialects (needed by `encode`/`decode` when modules use custom
//! op syntax); for `bundle`, `--corpus` selects the corpus native-hook
//! registry so corpus specs compile; `-o FILE` writes output to a file
//! instead of stdout; `--generic` makes `decode` print the generic form.

use std::io::Read;

use irdl::artifact::{BUNDLE_MAGIC, SECTION_RECIPES};
use irdl::{DialectBundle, NativeRegistry};
use irdl_ir::bytecode::{
    decode_module, encode_module, is_module_bytecode, ByteReader, MODULE_MAGIC, SECTION_OPS,
    SECTION_POOL, SECTION_STRINGS,
};
use irdl_ir::print::Printer;
use irdl_ir::Context;
use irdl_rewrite::bytecode::{PROGRAMS_MAGIC, SECTION_PROGRAMS};

struct Options {
    command: String,
    irdl_files: Vec<String>,
    inputs: Vec<String>,
    output: Option<String>,
    showcase: bool,
    corpus: bool,
    generic: bool,
}

const USAGE: &str = "usage: irdl-bc {encode,decode,bundle,inspect} \
                     [--irdl FILE]... [--corpus] [--showcase] [--generic] \
                     [-o FILE] [INPUT]...";

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(cmd) if ["encode", "decode", "bundle", "inspect"].contains(&cmd.as_str()) => cmd,
        Some(flag) if flag == "--help" || flag == "-h" => {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(format!("missing command\n{USAGE}")),
    };
    let mut opts = Options {
        command,
        irdl_files: Vec::new(),
        inputs: Vec::new(),
        output: None,
        showcase: false,
        corpus: false,
        generic: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--irdl" => {
                let file = args.next().ok_or("--irdl needs a file argument")?;
                opts.irdl_files.push(file);
            }
            "-o" | "--output" => {
                let file = args.next().ok_or("-o needs a file argument")?;
                opts.output = Some(file);
            }
            "--showcase" => opts.showcase = true,
            "--corpus" => opts.corpus = true,
            "--generic" => opts.generic = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => opts.inputs.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Reads the single input (file or stdin) as raw bytes.
fn read_input(opts: &Options) -> Result<Vec<u8>, String> {
    match opts.inputs.first() {
        Some(file) => std::fs::read(file).map_err(|e| format!("cannot read `{file}`: {e}")),
        None => {
            let mut buffer = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buffer)
        }
    }
}

/// Writes `bytes` to `-o FILE`, or to stdout.
fn write_output(opts: &Options, bytes: &[u8]) -> Result<(), String> {
    match &opts.output {
        Some(file) => {
            std::fs::write(file, bytes).map_err(|e| format!("cannot write `{file}`: {e}"))
        }
        None => {
            use std::io::Write;
            let mut out = std::io::stdout().lock();
            if out.write_all(bytes).is_err() {
                std::process::exit(0);
            }
            Ok(())
        }
    }
}

/// Builds a context with the requested dialect registrations.
fn make_context(opts: &Options) -> Result<Context, String> {
    let mut ctx = Context::new();
    if opts.showcase {
        irdl_dialects::showcase::register_showcase(&mut ctx).map_err(|d| d.to_string())?;
    }
    if opts.corpus {
        irdl_dialects::register_corpus(&mut ctx).map(|_| ()).map_err(|d| d.to_string())?;
    }
    let natives = irdl_dialects::corpus_natives();
    for file in &opts.irdl_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        irdl::register_dialects_with(&mut ctx, &source, &natives)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
    }
    Ok(ctx)
}

fn cmd_encode(opts: &Options) -> Result<(), String> {
    let mut ctx = make_context(opts)?;
    let raw = read_input(opts)?;
    if is_module_bytecode(&raw) {
        return write_output(opts, &raw); // already bytecode: pass through
    }
    let ir = String::from_utf8(raw).map_err(|_| "input is not UTF-8 text".to_string())?;
    let module = irdl_ir::parse::parse_module(&mut ctx, &ir).map_err(|d| d.render(&ir))?;
    let bytes = encode_module(&ctx, module).map_err(|d| d.to_string())?;
    write_output(opts, &bytes)
}

fn cmd_decode(opts: &Options) -> Result<(), String> {
    let mut ctx = make_context(opts)?;
    let raw = read_input(opts)?;
    if !is_module_bytecode(&raw) {
        return Err(if raw.starts_with(&BUNDLE_MAGIC) || raw.starts_with(&PROGRAMS_MAGIC) {
            "input is not a module file (try `irdl-bc inspect`)".to_string()
        } else {
            "input does not start with the IRBC module magic".to_string()
        });
    }
    let module = decode_module(&mut ctx, &raw).map_err(|d| d.to_string())?;
    let mut out = String::new();
    let mut printer = Printer::new(&mut out);
    printer.set_generic(opts.generic);
    printer.print_op(&ctx, module);
    out.push('\n');
    write_output(opts, out.as_bytes())
}

fn cmd_bundle(opts: &Options) -> Result<(), String> {
    if opts.irdl_files.is_empty() && opts.inputs.is_empty() {
        return Err("bundle needs at least one IRDL file".to_string());
    }
    // `--corpus` selects the corpus native-hook registry (a superset of
    // the std hooks) so corpus specs like builtin.irdl bundle directly.
    let natives =
        if opts.corpus { irdl_dialects::corpus_natives() } else { NativeRegistry::with_std() };
    // Positional arguments to `bundle` are IRDL specs, same as --irdl.
    let mut sources = Vec::new();
    for file in opts.irdl_files.iter().chain(&opts.inputs) {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        sources.push((file.clone(), source));
    }
    let bundle = DialectBundle::compile(&sources, &natives).map_err(|d| d.to_string())?;
    let bytes = bundle.save().map_err(|d| d.to_string())?;
    // Round-trip what we just wrote: a bundle that cannot be loaded back
    // must never be shipped.
    DialectBundle::load(&bytes, &natives)
        .map_err(|d| format!("self-check failed to reload the artifact: {d}"))?;
    write_output(opts, &bytes)
}

fn section_name(magic: &[u8; 4], tag: u8) -> &'static str {
    match tag {
        SECTION_STRINGS => "strings",
        SECTION_POOL => "pool",
        SECTION_OPS if *magic == MODULE_MAGIC => "ops",
        SECTION_RECIPES if *magic == BUNDLE_MAGIC => "recipes",
        SECTION_PROGRAMS if *magic == PROGRAMS_MAGIC => "programs",
        _ => "unknown",
    }
}

fn cmd_inspect(opts: &Options) -> Result<(), String> {
    let raw = read_input(opts)?;
    let mut r = ByteReader::new(&raw);
    let magic: [u8; 4] = r
        .take(4)
        .map_err(|_| "input shorter than a bytecode magic".to_string())?
        .try_into()
        .expect("take(4) returns 4 bytes");
    let kind = match magic {
        MODULE_MAGIC => "module",
        BUNDLE_MAGIC => "dialect bundle",
        PROGRAMS_MAGIC => "match-program catalog",
        other => {
            return Err(format!("unrecognized magic {other:?} (not an IRDL bytecode file)"))
        }
    };
    let version = r.u8().map_err(|d| d.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "magic:    {} ({kind})\nversion:  {version}\nfile:     {} bytes\n",
        String::from_utf8_lossy(&magic),
        raw.len(),
    ));
    while !r.is_empty() {
        let tag = r.u8().map_err(|d| d.to_string())?;
        let section = r.sub_reader().map_err(|d| d.to_string())?;
        out.push_str(&format!(
            "section:  {:<8} (tag {tag}) {} bytes\n",
            section_name(&magic, tag),
            section.remaining(),
        ));
    }
    write_output(opts, out.as_bytes())
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let result = match opts.command.as_str() {
        "encode" => cmd_encode(&opts),
        "decode" => cmd_decode(&opts),
        "bundle" => cmd_bundle(&opts),
        "inspect" => cmd_inspect(&opts),
        _ => unreachable!("parse_args validated the command"),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
