//! `irdl-run`: execute a module on the register-based interpreter.
//!
//! ```text
//! irdl-run --corpus input.ir
//! irdl-run --showcase --seed 7 input.ir
//! echo '...ir...' | irdl-run --corpus --strict
//! ```
//!
//! Options:
//! - `--irdl <file>`  register dialects from an IRDL file (repeatable;
//!   their ops execute as deterministic uninterpreted functions)
//! - `--showcase`     preregister the cmath/arith/func showcase dialects
//!   with their evaluation semantics
//! - `--corpus`       preregister the evaluation corpus with the
//!   builtin/scf/complex/fuzz evaluation semantics
//! - `--seed <n>`     seed for derived inputs and uninterpreted ops
//!   (default 0)
//! - `--fuel <n>`     control-transfer budget before the machine traps
//!   with fuel exhaustion (default 4096)
//! - `--strict`       trap on the first op without registered semantics
//!   instead of modelling it as an uninterpreted function
//! - `--digest`       print the canonical execution digest (the exact
//!   form the translation-validation oracle compares) instead of the
//!   human-oriented report
//! - `<file>`         the IR input (defaults to stdin)
//!
//! Prints one line per observed sink (`name(values...)`) followed by a
//! status line; exits 1 on a trap so scripts can branch on the outcome.

use std::io::Read;

use irdl_interp::{run_module, EvalOptions, EvalRegistry};
use irdl_ir::Context;
use irdl_tools::report::render_execution;

struct Options {
    irdl_files: Vec<String>,
    input: Option<String>,
    showcase: bool,
    corpus: bool,
    seed: u64,
    fuel: u64,
    strict: bool,
    digest: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        irdl_files: Vec::new(),
        input: None,
        showcase: false,
        corpus: false,
        seed: 0,
        fuel: EvalOptions::default().fuel,
        strict: false,
        digest: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--irdl" => {
                let file = args.next().ok_or("--irdl needs a file argument")?;
                opts.irdl_files.push(file);
            }
            "--seed" => {
                let n = args.next().ok_or("--seed needs a number argument")?;
                opts.seed =
                    n.parse::<u64>().map_err(|_| format!("invalid --seed value `{n}`"))?;
            }
            "--fuel" => {
                let n = args.next().ok_or("--fuel needs a number argument")?;
                opts.fuel =
                    n.parse::<u64>().map_err(|_| format!("invalid --fuel value `{n}`"))?;
            }
            "--showcase" => opts.showcase = true,
            "--corpus" => opts.corpus = true,
            "--strict" => opts.strict = true,
            "--digest" => opts.digest = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: irdl-run [--irdl FILE]... [--showcase] [--corpus] \
                     [--seed N] [--fuel N] [--strict] [--digest] [IR-FILE]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if opts.input.is_some() {
                    return Err("irdl-run takes a single IR input".to_string());
                }
                opts.input = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run(opts: Options) -> Result<bool, String> {
    let mut ctx = Context::new();
    let mut registry = EvalRegistry::new();
    if opts.showcase {
        irdl_dialects::showcase::register_showcase(&mut ctx).map_err(|d| d.to_string())?;
        registry = irdl_dialects::showcase_semantics();
    }
    if opts.corpus {
        irdl_dialects::register_corpus(&mut ctx).map_err(|d| d.to_string())?;
        registry = irdl_dialects::corpus_semantics();
    }
    let natives = irdl_dialects::corpus_natives();
    for file in &opts.irdl_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        irdl::register_dialects_with(&mut ctx, &source, &natives)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
    }

    let ir = match &opts.input {
        Some(file) => std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?,
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buffer
        }
    };
    let module = irdl_ir::parse::parse_module(&mut ctx, &ir).map_err(|d| d.render(&ir))?;

    let eval_opts = EvalOptions {
        fuel: opts.fuel,
        input_seed: opts.seed,
        strict: opts.strict,
    };
    let exec = run_module(&ctx, &registry, module, eval_opts);
    if opts.digest {
        print!("{}", exec.digest());
    } else {
        print!("{}", render_execution(&exec));
    }
    Ok(exec.trap.is_none())
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    match run(opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
