//! `irdl-fuzz`: the deterministic fuzzing driver.
//!
//! ```text
//! irdl-fuzz run --seed 0xC0FFEE --iters 500
//! irdl-fuzz run --time-budget 60s --out fuzz/corpus-regressions
//! irdl-fuzz replay fuzz/corpus-regressions/case.mlir
//! irdl-fuzz reduce fuzz/corpus-regressions/case.mlir
//! ```
//!
//! Commands:
//! - `run`     fuzz the 28-dialect corpus; on the first oracle divergence,
//!   minimize the input with the ddmin reducer, write the reproducer (with
//!   its seed) under `--out`, and exit 1.
//! - `replay <case>` re-run every oracle on a stored case; exit 1 if any
//!   still diverges.
//! - `reduce <case>` shrink a stored case further (after an oracle or
//!   verifier change made more reduction possible) and write `<name>.min`.
//!
//! Run options:
//! - `--seed N`          base seed (decimal or 0x hex; default 0)
//! - `--iters N`         iteration budget (default 100)
//! - `--time-budget D`   wall-clock budget, e.g. `60s`, `2m`, `500ms`
//! - `--batch N`         modules per batch-pipeline oracle call (default 8)
//! - `--out DIR`         regression directory (default fuzz/corpus-regressions)
//!
//! Determinism contract: without `--time-budget`, two runs with the same
//! options produce byte-identical logs and corpora.

use std::path::{Path, PathBuf};
use std::time::Duration;

use irdl_fuzz_lib::oracle::{
    check_bytecode, check_cache, check_drive, check_fixpoint, check_incremental, check_jobs,
};
use irdl_fuzz_lib::{
    load_case, reduce, replay_all, run_fuzz_on, write_regression, FuzzOptions, FuzzTarget,
};
use irdl_ir::parse::parse_module;
use irdl_ir::verify::ModuleVerifier;

enum Command {
    Run(FuzzOptions, PathBuf),
    Replay(PathBuf),
    Reduce(PathBuf, Option<PathBuf>),
}

fn parse_seed(value: &str) -> Result<u64, String> {
    let parsed = match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| format!("invalid seed `{value}`"))
}

fn parse_duration(value: &str) -> Result<Duration, String> {
    let (digits, scale) = if let Some(rest) = value.strip_suffix("ms") {
        (rest, 1u64)
    } else if let Some(rest) = value.strip_suffix('s') {
        (rest, 1_000)
    } else if let Some(rest) = value.strip_suffix('m') {
        (rest, 60_000)
    } else {
        (value, 1_000)
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid time budget `{value}` (expected e.g. 60s, 2m, 500ms)"))?;
    Ok(Duration::from_millis(n * scale))
}

fn parse_args() -> Result<Command, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    match command.as_str() {
        "run" => {
            let mut opts = FuzzOptions::default();
            let mut out = PathBuf::from("fuzz/corpus-regressions");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--seed" => {
                        let v = args.next().ok_or("--seed needs a value")?;
                        opts.seed = parse_seed(&v)?;
                    }
                    "--iters" => {
                        let v = args.next().ok_or("--iters needs a value")?;
                        opts.iters =
                            v.parse().map_err(|_| format!("invalid --iters value `{v}`"))?;
                    }
                    "--time-budget" => {
                        let v = args.next().ok_or("--time-budget needs a value")?;
                        opts.time_budget = Some(parse_duration(&v)?);
                    }
                    "--batch" => {
                        let v = args.next().ok_or("--batch needs a value")?;
                        opts.batch =
                            v.parse().map_err(|_| format!("invalid --batch value `{v}`"))?;
                    }
                    "--out" => {
                        out = PathBuf::from(args.next().ok_or("--out needs a directory")?);
                    }
                    other => return Err(format!("unknown run option `{other}`")),
                }
            }
            Ok(Command::Run(opts, out))
        }
        "replay" => {
            let case = args.next().ok_or("replay needs a case file")?;
            Ok(Command::Replay(PathBuf::from(case)))
        }
        "reduce" => {
            let case = args.next().ok_or("reduce needs a case file")?;
            let mut out = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--out" => out = Some(PathBuf::from(args.next().ok_or("--out needs a directory")?)),
                    other => return Err(format!("unknown reduce option `{other}`")),
                }
            }
            Ok(Command::Reduce(PathBuf::from(case), out))
        }
        "--help" | "-h" => {
            eprintln!("{}", usage());
            std::process::exit(0);
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: irdl-fuzz run [--seed N] [--iters N] [--time-budget D] [--batch N] [--out DIR]\n\
     \x20      irdl-fuzz replay <case.mlir>\n\
     \x20      irdl-fuzz reduce <case.mlir> [--out DIR]"
        .to_string()
}

/// Does `oracle` still diverge on `text`? The reduction predicate: ddmin
/// keeps shrinking as long as this returns true.
fn oracle_fails(target: &FuzzTarget, oracle: &str, seed: u64, text: &str) -> bool {
    let bundle = &target.bundle;
    match oracle {
        "fixpoint" => check_fixpoint(bundle, text).is_err(),
        "incremental" => check_incremental(bundle, text, seed, 24).is_err(),
        "cache" => check_cache(bundle, text).is_err(),
        "drive" => check_drive(bundle, text).is_err(),
        "bytecode" => check_bytecode(bundle, text).is_err(),
        "jobs" => check_jobs(bundle, std::slice::from_ref(&text.to_string()), 4).is_err(),
        "generate" => {
            // A generated module failed full verification: minimal = the
            // smallest module that still parses and still fails.
            let mut ctx = bundle.instantiate();
            match parse_module(&mut ctx, text) {
                Ok(module) => ModuleVerifier::new().verify(&ctx, module).is_err(),
                Err(_) => false,
            }
        }
        "spec-compile" => {
            // A generated spec failed to compile: minimal = the smallest
            // spec the frontend still rejects.
            FuzzTarget::from_sources(
                &[("reduced".to_string(), text.to_string())],
                &irdl::NativeRegistry::new(),
            )
            .is_err()
        }
        _ => !replay_all(bundle, text, seed).is_empty(),
    }
}

fn cmd_run(opts: FuzzOptions, out: &Path) -> i32 {
    let target = match FuzzTarget::corpus() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("irdl-fuzz: corpus does not compile: {e}");
            return 2;
        }
    };
    let report = match run_fuzz_on(&target, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("irdl-fuzz: {e}");
            return 2;
        }
    };
    print!("{}", report.log);
    let Some(failure) = report.failures.first() else { return 0 };

    eprintln!("irdl-fuzz: oracle `{}` diverged:\n{}", failure.oracle, failure.detail);
    let case_seed = if failure.seed != 0 { failure.seed } else { opts.seed };
    let mut predicate =
        |text: &str| oracle_fails(&target, failure.oracle, case_seed, text);
    let reduced = if predicate(&failure.input) {
        reduce(&target.bundle, &failure.input, &mut predicate)
    } else {
        // Inputs over a generated (non-corpus) dialect cannot be re-driven
        // through the corpus bundle; store them unreduced.
        failure.input.clone()
    };
    let name = format!("{}-{:016x}", failure.oracle, opts.seed);
    match write_regression(out, &name, case_seed, failure.oracle, &reduced) {
        Ok(path) => eprintln!("irdl-fuzz: minimized reproducer written to {}", path.display()),
        Err(e) => eprintln!("irdl-fuzz: could not write reproducer: {e}"),
    }
    1
}

fn cmd_replay(path: &Path) -> i32 {
    let case = match load_case(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("irdl-fuzz: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let target = match FuzzTarget::corpus() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("irdl-fuzz: corpus does not compile: {e}");
            return 2;
        }
    };
    let failures = replay_all(&target.bundle, &case.text, case.seed);
    if failures.is_empty() {
        println!("{}: all oracles green", path.display());
        0
    } else {
        for f in &failures {
            println!("{}: oracle `{}` diverged:\n{}", path.display(), f.oracle, f.detail);
        }
        1
    }
}

fn cmd_reduce(path: &Path, out: Option<&Path>) -> i32 {
    let case = match load_case(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("irdl-fuzz: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let target = match FuzzTarget::corpus() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("irdl-fuzz: corpus does not compile: {e}");
            return 2;
        }
    };
    let mut predicate =
        |text: &str| oracle_fails(&target, &case.oracle, case.seed, text);
    if !predicate(&case.text) {
        eprintln!(
            "irdl-fuzz: {} no longer reproduces oracle `{}`; nothing to reduce",
            path.display(),
            case.oracle
        );
        return 1;
    }
    let reduced = reduce(&target.bundle, &case.text, &mut predicate);
    let dir = out
        .map(Path::to_path_buf)
        .or_else(|| path.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| PathBuf::from("."));
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("case");
    let name = format!("{stem}.min");
    match write_regression(&dir, &name, case.seed, &case.oracle, &reduced) {
        Ok(written) => {
            println!("irdl-fuzz: reduced case written to {}", written.display());
            0
        }
        Err(e) => {
            eprintln!("irdl-fuzz: could not write reduced case: {e}");
            2
        }
    }
}

fn main() {
    let code = match parse_args() {
        Ok(Command::Run(opts, out)) => cmd_run(opts, &out),
        Ok(Command::Replay(path)) => cmd_replay(&path),
        Ok(Command::Reduce(path, out)) => cmd_reduce(&path, out.as_deref()),
        Err(e) => {
            eprintln!("irdl-fuzz: {e}");
            2
        }
    };
    std::process::exit(code);
}
