//! `irdl-fmt`: canonical formatter for IRDL specification files.
//!
//! ```text
//! irdl-fmt spec.irdl            # print the formatted spec to stdout
//! irdl-fmt --check spec.irdl    # exit 1 if the file is not canonical
//! irdl-fmt --write spec.irdl    # reformat in place
//! echo '...' | irdl-fmt         # format stdin
//! ```

use std::io::Read;

use irdl::printer::print_source;

fn main() {
    let mut check = false;
    let mut write = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--write" => write = true,
            "--help" | "-h" => {
                eprintln!("usage: irdl-fmt [--check|--write] [FILE]...");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => {
                eprintln!("error: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut dirty = false;
    if files.is_empty() {
        let mut source = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut source) {
            eprintln!("error: cannot read stdin: {e}");
            std::process::exit(1);
        }
        match format_one("<stdin>", &source) {
            Ok(formatted) => write_stdout(&formatted),
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        }
        return;
    }

    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read `{file}`: {e}");
                std::process::exit(1);
            }
        };
        let formatted = match format_one(file, &source) {
            Ok(formatted) => formatted,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        };
        if check {
            if formatted != source {
                eprintln!("{file}: not canonically formatted");
                dirty = true;
            }
        } else if write {
            if formatted != source {
                if let Err(e) = std::fs::write(file, &formatted) {
                    eprintln!("error: cannot write `{file}`: {e}");
                    std::process::exit(1);
                }
                eprintln!("reformatted {file}");
            }
        } else {
            write_stdout(&formatted);
        }
    }
    if dirty {
        std::process::exit(1);
    }
}


/// Writes `text` to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `irdl-doc --corpus | head`).
fn write_stdout(text: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn format_one(name: &str, source: &str) -> Result<String, String> {
    let ast = irdl::parse_irdl(source)
        .map_err(|d| format!("{name}:\n{}", d.render(source)))?;
    Ok(print_source(&ast))
}
