//! `irdl-opt`: an `mlir-opt`-style driver, fully runtime-configured.
//!
//! Dialects, rewrite patterns, and the IR all come from files (or stdin):
//!
//! ```text
//! irdl-opt --irdl cmath.irdl --patterns conorm.pat input.ir
//! irdl-opt --irdl cmath.irdl --verify --generic input.ir
//! echo '...ir...' | irdl-opt --irdl cmath.irdl
//! ```
//!
//! Options:
//! - `--irdl <file>`     register dialects from an IRDL file (repeatable)
//! - `--patterns <file>` apply declarative patterns from a file (repeatable)
//! - `--showcase`        preregister the cmath/arith/func showcase dialects
//! - `--corpus`          preregister the 28-dialect evaluation corpus
//! - `--verify`          verify after parsing (and after rewriting)
//! - `--verify-each=L`   verify every intermediate rewrite state at level
//!   `L`: `incr` (journal-driven incremental, the default when the flag
//!   is given bare), `full` (whole-module after every rewrite — the slow
//!   differential oracle), or `off`
//! - `--matcher=M`       pattern dispatch mode: `auto` (the compiled
//!   shared matcher automaton, the default) or `scan` (the per-pattern
//!   scan — the slow differential oracle)
//! - `--fold`            add the constant-folding catalog (over the
//!   showcase/corpus evaluation semantics) to the pattern set
//! - `--interp`          after rewriting, execute the module on the
//!   `irdl-interp` register machine and print its observations instead
//!   of the IR (single input; `--seed` picks the input seed)
//! - `--seed <n>`        input seed for `--interp` (default 0)
//! - `--generic`         print in the generic form only
//! - `--emit=F`          output format: `text` (the default) or
//!   `bytecode` (the `IRBC` binary module format, single input only)
//! - `--jobs <n>`        process inputs on `n` worker threads
//! - `--intra-jobs <n>`  threads *inside* each module: chunked lexing and
//!   parallel verification (byte-identical to sequential; orthogonal to
//!   `--jobs`, which fans out across modules)
//! - `--timings`         report per-stage wall-clock times
//!   (parse/verify/rewrite/print) on stderr, per input
//! - `<file>...`         the IR inputs (defaults to stdin)
//!
//! Inputs are sniffed: a file (or stdin) starting with the `IRBC` magic is
//! decoded as module bytecode, anything else is parsed as text. Text and
//! bytecode inputs can be mixed freely in one batch.
//!
//! With several input files (or `--jobs > 1`), dialects and patterns are
//! compiled once into a shared bundle and the files are fanned out across
//! the workers; outputs are printed in input order, separated by the
//! `// -----` split marker.

use std::io::Read;

use irdl::DialectBundle;
use irdl_ir::bytecode::{decode_module, encode_module, is_module_bytecode};
use irdl_ir::print::Printer;
use irdl_ir::verify::ModuleVerifier;
use irdl_ir::Context;
use irdl_rewrite::pipeline::{run_batch_inputs, PipelineInput, PipelineOptions, StageNanos};
use irdl_rewrite::{
    parse_patterns, rewrite_greedily_matched, CheckLevel, MatcherMode, PatternSet,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    Text,
    Bytecode,
}

struct Options {
    irdl_files: Vec<String>,
    pattern_files: Vec<String>,
    inputs: Vec<String>,
    showcase: bool,
    corpus: bool,
    verify: bool,
    check: CheckLevel,
    matcher: MatcherMode,
    generic: bool,
    emit: Emit,
    jobs: usize,
    intra_jobs: usize,
    timings: bool,
    fold: bool,
    interp: bool,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        irdl_files: Vec::new(),
        pattern_files: Vec::new(),
        inputs: Vec::new(),
        showcase: false,
        corpus: false,
        verify: false,
        check: CheckLevel::Off,
        matcher: MatcherMode::Auto,
        generic: false,
        emit: Emit::Text,
        jobs: 1,
        intra_jobs: 1,
        timings: false,
        fold: false,
        interp: false,
        seed: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--irdl" => {
                let file = args.next().ok_or("--irdl needs a file argument")?;
                opts.irdl_files.push(file);
            }
            "--patterns" => {
                let file = args.next().ok_or("--patterns needs a file argument")?;
                opts.pattern_files.push(file);
            }
            "--jobs" | "-j" => {
                let n = args.next().ok_or("--jobs needs a number argument")?;
                opts.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --jobs value `{n}`"))?
                    .max(1);
            }
            "--intra-jobs" => {
                let n = args.next().ok_or("--intra-jobs needs a number argument")?;
                opts.intra_jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --intra-jobs value `{n}`"))?
                    .max(1);
            }
            "--timings" => opts.timings = true,
            "--fold" => opts.fold = true,
            "--interp" => opts.interp = true,
            "--seed" => {
                let n = args.next().ok_or("--seed needs a number argument")?;
                opts.seed =
                    n.parse::<u64>().map_err(|_| format!("invalid --seed value `{n}`"))?;
            }
            "--showcase" => opts.showcase = true,
            "--corpus" => opts.corpus = true,
            "--verify" => opts.verify = true,
            "--verify-each" => opts.check = CheckLevel::Incremental,
            other if other.starts_with("--verify-each=") => {
                opts.check = match &other["--verify-each=".len()..] {
                    "full" => CheckLevel::Full,
                    "incr" | "incremental" => CheckLevel::Incremental,
                    "off" => CheckLevel::Off,
                    bad => {
                        return Err(format!(
                            "invalid --verify-each level `{bad}` (expected full, incr, or off)"
                        ))
                    }
                };
            }
            other if other.starts_with("--matcher=") => {
                opts.matcher = match &other["--matcher=".len()..] {
                    "auto" => MatcherMode::Auto,
                    "scan" => MatcherMode::Scan,
                    bad => {
                        return Err(format!(
                            "invalid --matcher mode `{bad}` (expected auto or scan)"
                        ))
                    }
                };
            }
            other if other.starts_with("--emit=") => {
                opts.emit = match &other["--emit=".len()..] {
                    "text" => Emit::Text,
                    "bytecode" | "bc" => Emit::Bytecode,
                    bad => {
                        return Err(format!(
                            "invalid --emit format `{bad}` (expected text or bytecode)"
                        ))
                    }
                };
            }
            "--generic" => opts.generic = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: irdl-opt [--irdl FILE]... [--patterns FILE]... \
                     [--showcase] [--corpus] [--verify] \
                     [--verify-each={{full,incr,off}}] [--matcher={{auto,scan}}] \
                     [--fold] [--interp] [--seed N] \
                     [--generic] [--emit={{text,bytecode}}] [--jobs N] \
                     [--intra-jobs N] [--timings] [IR-FILE]..."
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                opts.inputs.push(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run(opts: Options) -> Result<(), String> {
    let mut ctx = Context::new();
    if opts.showcase {
        irdl_dialects_showcase(&mut ctx)?;
    }
    if opts.corpus {
        // Registered through the same native hooks the corpus tests use.
        irdl_corpus(&mut ctx)?;
    }
    let natives = irdl_dialects::corpus_natives();
    for file in &opts.irdl_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        irdl::register_dialects_with(&mut ctx, &source, &natives)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
    }

    let mut patterns = PatternSet::new();
    for file in &opts.pattern_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        let set = parse_patterns(&mut ctx, &source)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
        for pattern in set.patterns() {
            patterns.add(pattern.clone());
        }
    }

    if opts.fold {
        // Fold over whichever evaluation semantics are registered:
        // corpus > showcase > empty (folds nothing, still a valid drive).
        let semantics = if opts.corpus {
            irdl_dialects::corpus_semantics()
        } else if opts.showcase {
            irdl_dialects::showcase_semantics()
        } else {
            irdl_interp::EvalRegistry::new()
        };
        patterns.add(std::sync::Arc::new(irdl_rewrite::FoldConstants::new(
            std::sync::Arc::new(semantics),
        )));
    }

    // Batch mode: several inputs, or an explicit worker count. Dialects
    // and patterns were compiled once above; seal them into a shared
    // bundle and fan the files out.
    if opts.inputs.len() > 1 || opts.jobs > 1 {
        if opts.emit == Emit::Bytecode {
            return Err("--emit=bytecode supports a single input (got a batch)".to_string());
        }
        if opts.interp {
            return Err("--interp supports a single input (got a batch)".to_string());
        }
        let mut sources = Vec::with_capacity(opts.inputs.len());
        for file in &opts.inputs {
            let bytes =
                std::fs::read(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
            sources.push(if is_module_bytecode(&bytes) {
                PipelineInput::Bytecode(bytes)
            } else {
                PipelineInput::Text(String::from_utf8(bytes).map_err(|_| {
                    format!("`{file}` is neither module bytecode nor UTF-8 text")
                })?)
            });
        }
        let bundle = DialectBundle::capture(ctx, Vec::new());
        let pipeline_opts = PipelineOptions {
            jobs: opts.jobs,
            verify: opts.verify,
            check: opts.check,
            generic: opts.generic,
            matcher: opts.matcher,
            intra_jobs: opts.intra_jobs,
        };
        let report = run_batch_inputs(&bundle, &patterns, &sources, &pipeline_opts);
        if opts.timings {
            for (file, result) in opts.inputs.iter().zip(&report.results) {
                if let Ok(module) = result {
                    eprintln!("timings: {file}: {}", format_timings(&module.timings));
                }
            }
        }
        let mut failed = false;
        let total_rewrites: usize = report
            .results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|m| m.rewrites))
            .sum();
        if !patterns.is_empty() {
            eprintln!("applied {total_rewrites} rewrite(s)");
        }
        for (file, result) in opts.inputs.iter().zip(&report.results) {
            match result {
                Ok(module) => {
                    write_stdout("// ----- ");
                    write_stdout(file);
                    write_stdout("\n");
                    write_stdout(&module.output);
                    write_stdout("\n");
                }
                Err(message) => {
                    eprintln!("error: {file}:\n{message}");
                    failed = true;
                }
            }
        }
        if failed {
            return Err(format!("{} input(s) failed", report.errors()));
        }
        return Ok(());
    }

    let raw = match opts.inputs.first() {
        Some(file) => {
            std::fs::read(file).map_err(|e| format!("cannot read `{file}`: {e}"))?
        }
        None => {
            let mut buffer = Vec::new();
            std::io::stdin()
                .read_to_end(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buffer
        }
    };

    let mut timings = StageNanos::default();
    let start = std::time::Instant::now();
    let module = if is_module_bytecode(&raw) {
        decode_module(&mut ctx, &raw).map_err(|d| d.to_string())?
    } else {
        let ir = String::from_utf8(raw)
            .map_err(|_| "input is neither module bytecode nor UTF-8 text".to_string())?;
        irdl_ir::parse::parse_module_chunked(&mut ctx, &ir, opts.intra_jobs)
            .map_err(|d| d.render(&ir))?
    };
    timings.parse = start.elapsed().as_nanos() as u64;

    let mut verifier = ModuleVerifier::new();
    if opts.verify {
        let start = std::time::Instant::now();
        let checked = verifier.verify_parallel(&ctx, module, opts.intra_jobs);
        timings.verify += start.elapsed().as_nanos() as u64;
        checked.map_err(|errs| {
            errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        })?;
    }

    if !patterns.is_empty() {
        let start = std::time::Instant::now();
        let outcome =
            rewrite_greedily_matched(&mut ctx, module, &patterns, opts.check, opts.matcher);
        timings.rewrite = start.elapsed().as_nanos() as u64;
        let stats = outcome.map_err(|err| format!("{err}: {}", err.diagnostics[0]))?;
        eprintln!("applied {} rewrite(s)", stats.rewrites);
        if opts.verify && opts.check == CheckLevel::Off {
            let start = std::time::Instant::now();
            let checked = verifier.verify_parallel(&ctx, module, opts.intra_jobs);
            timings.verify += start.elapsed().as_nanos() as u64;
            checked
                .map_err(|errs| format!("IR invalid after rewriting: {}", errs[0]))?;
        }
    }

    if opts.interp {
        let registry = if opts.corpus {
            irdl_dialects::corpus_semantics()
        } else if opts.showcase {
            irdl_dialects::showcase_semantics()
        } else {
            irdl_interp::EvalRegistry::new()
        };
        let eval_opts =
            irdl_interp::EvalOptions { input_seed: opts.seed, ..Default::default() };
        let exec = irdl_interp::run_module(&ctx, &registry, module, eval_opts);
        let trapped = exec.trap.is_some();
        write_stdout(&irdl_tools::report::render_execution(&exec));
        if trapped {
            std::process::exit(1);
        }
        return Ok(());
    }

    let start = std::time::Instant::now();
    match opts.emit {
        Emit::Text => {
            let mut out = String::new();
            let mut printer = Printer::new(&mut out);
            printer.set_generic(opts.generic);
            printer.print_op(&ctx, module);
            timings.print = start.elapsed().as_nanos() as u64;
            write_stdout(&out);
            write_stdout("\n");
        }
        Emit::Bytecode => {
            let bytes = encode_module(&ctx, module).map_err(|d| d.to_string())?;
            timings.print = start.elapsed().as_nanos() as u64;
            write_stdout_bytes(&bytes);
        }
    }
    if opts.timings {
        let label = opts.inputs.first().map(String::as_str).unwrap_or("<stdin>");
        eprintln!("timings: {label}: {}", format_timings(&timings));
    }
    Ok(())
}

/// Renders one module's per-stage timings in milliseconds.
fn format_timings(timings: &StageNanos) -> String {
    let ms = |nanos: u64| nanos as f64 / 1.0e6;
    format!(
        "parse {:.3} ms, verify {:.3} ms, rewrite {:.3} ms, print {:.3} ms",
        ms(timings.parse),
        ms(timings.verify),
        ms(timings.rewrite),
        ms(timings.print)
    )
}


/// Writes `text` to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `irdl-doc --corpus | head`).
fn write_stdout(text: &str) {
    write_stdout_bytes(text.as_bytes());
}

/// Writes raw bytes to stdout (bytecode emission), exiting quietly if the
/// reader closed the pipe.
fn write_stdout_bytes(bytes: &[u8]) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out.write_all(bytes).is_err() {
        std::process::exit(0);
    }
}

fn irdl_dialects_showcase(ctx: &mut Context) -> Result<(), String> {
    irdl_dialects::showcase::register_showcase(ctx).map_err(|d| d.to_string())
}

fn irdl_corpus(ctx: &mut Context) -> Result<(), String> {
    irdl_dialects::register_corpus(ctx).map(|_| ()).map_err(|d| d.to_string())
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(opts) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
