//! `irdl-opt`: an `mlir-opt`-style driver, fully runtime-configured.
//!
//! Dialects, rewrite patterns, and the IR all come from files (or stdin):
//!
//! ```text
//! irdl-opt --irdl cmath.irdl --patterns conorm.pat input.ir
//! irdl-opt --irdl cmath.irdl --verify --generic input.ir
//! echo '...ir...' | irdl-opt --irdl cmath.irdl
//! ```
//!
//! Options:
//! - `--irdl <file>`     register dialects from an IRDL file (repeatable)
//! - `--patterns <file>` apply declarative patterns from a file (repeatable)
//! - `--showcase`        preregister the cmath/arith/func showcase dialects
//! - `--corpus`          preregister the 28-dialect evaluation corpus
//! - `--verify`          verify after parsing (and after rewriting)
//! - `--generic`         print in the generic form only
//! - `<file>`            the IR input (defaults to stdin)

use std::io::Read;

use irdl_ir::print::Printer;
use irdl_ir::verify::verify_op;
use irdl_ir::Context;
use irdl_rewrite::{parse_patterns, rewrite_greedily, PatternSet};

struct Options {
    irdl_files: Vec<String>,
    pattern_files: Vec<String>,
    input: Option<String>,
    showcase: bool,
    corpus: bool,
    verify: bool,
    generic: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        irdl_files: Vec::new(),
        pattern_files: Vec::new(),
        input: None,
        showcase: false,
        corpus: false,
        verify: false,
        generic: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--irdl" => {
                let file = args.next().ok_or("--irdl needs a file argument")?;
                opts.irdl_files.push(file);
            }
            "--patterns" => {
                let file = args.next().ok_or("--patterns needs a file argument")?;
                opts.pattern_files.push(file);
            }
            "--showcase" => opts.showcase = true,
            "--corpus" => opts.corpus = true,
            "--verify" => opts.verify = true,
            "--generic" => opts.generic = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: irdl-opt [--irdl FILE]... [--patterns FILE]... \
                     [--showcase] [--corpus] [--verify] [--generic] [IR-FILE]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') && opts.input.is_none() => {
                opts.input = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run(opts: Options) -> Result<(), String> {
    let mut ctx = Context::new();
    if opts.showcase {
        irdl_dialects_showcase(&mut ctx)?;
    }
    if opts.corpus {
        // Registered through the same native hooks the corpus tests use.
        irdl_corpus(&mut ctx)?;
    }
    let natives = irdl_dialects::corpus_natives();
    for file in &opts.irdl_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        irdl::register_dialects_with(&mut ctx, &source, &natives)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
    }

    let mut patterns = PatternSet::new();
    for file in &opts.pattern_files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?;
        let set = parse_patterns(&mut ctx, &source)
            .map_err(|d| format!("{file}:\n{}", d.render(&source)))?;
        for pattern in set.patterns() {
            patterns.add(pattern.clone());
        }
    }

    let ir = match &opts.input {
        Some(file) => std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read `{file}`: {e}"))?,
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buffer
        }
    };

    let module = irdl_ir::parse::parse_module(&mut ctx, &ir)
        .map_err(|d| d.render(&ir))?;
    if opts.verify {
        verify_op(&ctx, module).map_err(|errs| {
            errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        })?;
    }

    if !patterns.is_empty() {
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        eprintln!("applied {} rewrite(s)", stats.rewrites);
        if opts.verify {
            verify_op(&ctx, module).map_err(|errs| {
                format!("IR invalid after rewriting: {}", errs[0])
            })?;
        }
    }

    let mut out = String::new();
    let mut printer = Printer::new(&mut out);
    printer.set_generic(opts.generic);
    printer.print_op(&ctx, module);
    write_stdout(&out);
    write_stdout("\n");
    Ok(())
}


/// Writes `text` to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `irdl-doc --corpus | head`).
fn write_stdout(text: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn irdl_dialects_showcase(ctx: &mut Context) -> Result<(), String> {
    irdl_dialects::showcase::register_showcase(ctx).map_err(|d| d.to_string())
}

fn irdl_corpus(ctx: &mut Context) -> Result<(), String> {
    irdl_dialects::register_corpus(ctx).map(|_| ()).map_err(|d| d.to_string())
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(opts) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
