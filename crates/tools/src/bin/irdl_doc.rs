//! `irdl-doc`: generate Markdown reference documentation from IRDL files.
//!
//! ```text
//! irdl-doc spec.irdl [more.irdl ...]    # docs for the given specs
//! irdl-doc --corpus                     # docs for the 28-dialect corpus
//! ```

fn main() {
    let mut corpus = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--corpus" => corpus = true,
            "--help" | "-h" => {
                eprintln!("usage: irdl-doc [--corpus] [FILE]...");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => {
                eprintln!("error: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut ctx = irdl_ir::Context::new();
    let mut names: Vec<String> = Vec::new();
    // The corpus natives are a superset of the stock registry, so corpus
    // spec files document out of the box.
    let natives = irdl_dialects::corpus_natives();
    if corpus {
        match irdl_dialects::register_corpus(&mut ctx) {
            Ok(registered) => names.extend(registered),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read `{file}`: {e}");
                std::process::exit(1);
            }
        };
        match irdl::register_dialects_with(&mut ctx, &source, &natives) {
            Ok(registered) => names.extend(registered),
            Err(d) => {
                eprintln!("{file}:\n{}", d.render(&source));
                std::process::exit(1);
            }
        }
    }
    if names.is_empty() {
        eprintln!("error: nothing to document (pass IRDL files or --corpus)");
        std::process::exit(2);
    }
    write_stdout(&irdl_tools::docgen::render_markdown(&ctx, &names));
}
/// Writes `text` to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `irdl-doc --corpus | head`).
fn write_stdout(text: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

