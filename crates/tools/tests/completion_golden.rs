//! Golden tests for the completion / signature-help queries over the
//! evaluation corpus: exact rendered outputs, pinned.
//!
//! The inline unit tests in `completion.rs` cover the showcase registry;
//! these pin the corpus-facing behavior an IR language server would rely
//! on — full item lists in sorted order, sigil prefixes for types and
//! attributes, and byte-exact signature renderings.

use irdl_ir::Context;
use irdl_tools::completion::{
    complete, signature_help, type_signature_help, CompletionKind,
};

fn corpus() -> Context {
    let mut ctx = Context::new();
    irdl_dialects::register_corpus(&mut ctx).expect("corpus registers");
    ctx
}

/// Renders completions the way an LSP client would list them.
fn rendered(ctx: &Context, prefix: &str) -> Vec<String> {
    complete(ctx, prefix)
        .into_iter()
        .map(|item| format!("{} — {}", item.name, item.summary))
        .collect()
}

#[test]
fn complex_dialect_completes_all_fifteen_ops_in_order() {
    let ctx = corpus();
    let golden = [
        "complex.abs — Absolute value (magnitude)",
        "complex.add — Addition",
        "complex.conj — Complex conjugate",
        "complex.constant — A complex constant",
        "complex.create — Create a complex number from real and imaginary parts",
        "complex.div — Division",
        "complex.exp — Exponential",
        "complex.im — Imaginary part",
        "complex.log — Natural logarithm",
        "complex.mul — Multiplication",
        "complex.neg — Negation",
        "complex.pow — Power",
        "complex.re — Real part",
        "complex.sqrt — Square root",
        "complex.sub — Subtraction",
    ];
    assert_eq!(rendered(&ctx, "complex."), golden);
}

#[test]
fn member_prefix_narrows_and_keeps_kinds() {
    let ctx = corpus();
    let items = complete(&ctx, "complex.c");
    let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["complex.conj", "complex.constant", "complex.create"]);
    assert!(items.iter().all(|i| i.kind == CompletionKind::Operation));
}

#[test]
fn dialect_prefix_completes_namespaces() {
    let ctx = corpus();
    assert_eq!(
        rendered(&ctx, "sc"),
        ["scf — Structured control flow, e.g. 'for' and 'if'"]
    );
    // The empty prefix lists every corpus dialect exactly once.
    let all = complete(&ctx, "");
    assert_eq!(all.len(), 28);
    assert!(all.iter().all(|i| i.kind == CompletionKind::Dialect));
}

#[test]
fn types_and_attributes_complete_with_sigils_before_ops() {
    let ctx = corpus();
    let names: Vec<String> =
        complete(&ctx, "builtin.").into_iter().map(|i| i.name).collect();
    // Sorted order puts `!type` and `#attr` sigils ahead of bare op names.
    assert_eq!(names[0], "!builtin.complex");
    assert!(names.contains(&"#builtin.dictionary".to_string()));
    assert!(names.contains(&"builtin.unrealized_conversion_cast".to_string()));
    let first_op = names.iter().position(|n| n == "builtin.func").unwrap();
    let last_attr = names.iter().rposition(|n| n.starts_with('#')).unwrap();
    assert!(last_attr < first_op, "sigiled entries must sort first: {names:?}");
}

#[test]
fn op_signature_help_is_byte_exact() {
    let ctx = corpus();
    assert_eq!(
        signature_help(&ctx, "scf.for_op").unwrap(),
        "scf.for_op — A counted loop with loop-carried values\n\
         \x20 operands: 4 (1 variadic)\n\
         \x20 results:  1 (1 variadic)\n\
         \x20 regions: 1\n\
         \x20 has a native (IRDL-Rust) verifier\n"
    );
    assert_eq!(
        signature_help(&ctx, "complex.constant").unwrap(),
        "complex.constant — A complex constant\n\
         \x20 operands: 0\n\
         \x20 results:  1\n\
         \x20 has a native (IRDL-Rust) verifier\n"
    );
    assert!(signature_help(&ctx, "complex.no_such_op").is_none());
    assert!(signature_help(&ctx, "unqualified").is_none());
}

#[test]
fn type_signature_help_is_byte_exact() {
    let ctx = corpus();
    let golden = "!builtin.complex — A complex number type\n  elementType: Type\n";
    assert_eq!(type_signature_help(&ctx, "!builtin.complex").unwrap(), golden);
    // The sigil is optional on lookup.
    assert_eq!(type_signature_help(&ctx, "builtin.complex").unwrap(), golden);
    assert!(type_signature_help(&ctx, "!builtin.no_such_type").is_none());
}
