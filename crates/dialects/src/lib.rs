//! The evaluation corpus: MLIR's 28 dialects, expressed in IRDL.
//!
//! The paper's evaluation (§6) analyzes every dialect in the MLIR
//! repository — 28 dialects, 942 operations, 62 types, 30 attributes. This
//! crate reproduces that corpus for the Rust stack:
//!
//! - [`metadata`]: per-dialect feature counts calibrated to the paper's
//!   Table 1 and Figures 4-12;
//! - [`generator`]: deterministic expansion of metadata rows into IRDL
//!   source text;
//! - `specs/`: hand-written IRDL for the paper's example dialects
//!   (`builtin`, `arm_neon`, `complex`, `scf`) plus the showcase dialects
//!   used by examples ([`showcase`]);
//! - [`corpus`]: assembly and registration of all 28 dialects on a
//!   [`Context`](irdl_ir::Context);
//! - [`timeline`]: the Figure 3 growth series (444 → 942 ops over 20
//!   months).
//!
//! # Example
//!
//! ```
//! let mut ctx = irdl_ir::Context::new();
//! let names = irdl_dialects::register_corpus(&mut ctx)?;
//! assert_eq!(names.len(), 28);
//! let reports = irdl::introspect::report(&ctx);
//! let total_ops: usize = reports
//!     .iter()
//!     .filter(|d| names.contains(&d.name))
//!     .map(|d| d.ops.len())
//!     .sum();
//! assert_eq!(total_ops, 942);
//! # Ok::<(), irdl_ir::Diagnostic>(())
//! ```

pub mod corpus;
pub mod eval;
pub mod generator;
pub mod metadata;
pub mod showcase;
pub mod timeline;

pub use corpus::{corpus_natives, corpus_sources, register_corpus};
pub use eval::{corpus_semantics, showcase_semantics};
pub use metadata::{dialects, totals, DialectMeta};
pub use timeline::{snapshots, Snapshot};
