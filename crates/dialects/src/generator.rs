//! Deterministic corpus generation: metadata row → IRDL source text.
//!
//! Every dialect without a hand-written spec is expanded from its
//! [`DialectMeta`] row into valid IRDL that the full pipeline compiles. The
//! expansion is deterministic (feature categories are assigned by rotated
//! index, not sampled), so the compiled corpus reproduces the row's
//! histograms *exactly*, which the corpus tests assert.

use std::fmt::Write as _;

use crate::metadata::DialectMeta;

/// Generates the IRDL source for one dialect from its metadata row.
pub fn generate_dialect(meta: &DialectMeta) -> String {
    meta.validate();
    let mut out = String::new();
    let _ = writeln!(out, "Dialect {} {{", meta.name);
    let _ = writeln!(out, "  Summary \"{}\"", meta.description);

    let needs_enum = meta.num_types + meta.num_attrs > 0;
    if needs_enum {
        let _ = writeln!(out, "  Enum mode {{ Default, Fast, Strict }}");
    }

    // Native parameter kinds (paper §5.2), for the dialects the paper
    // found to need them.
    let native_kind = match meta.name {
        "llvm" => "llvm_struct_body",
        _ => "affine_map",
    };
    if meta.types_native_param + meta.attrs_native_param > 0 {
        let _ = writeln!(
            out,
            "  TypeOrAttrParam NativeParam {{\n    Summary \"A domain-specific parameter\"\n    NativeType \"{native_kind}\"\n  }}"
        );
    }

    // Native local-constraint definitions (paper Figure 12 categories).
    let [ineq, stride, opaque] = meta.native_local;
    if ineq > 0 {
        let _ = writeln!(
            out,
            "  Constraint BoundedValue : int64_t {{\n    Summary \"an integer restricted to a range\"\n    NativeConstraint \"integer_inequality\"\n  }}"
        );
    }
    if stride > 0 {
        let _ = writeln!(
            out,
            "  Constraint StridedLayout : array<int64_t> {{\n    Summary \"a valid stride list\"\n    NativeConstraint \"stride_check\"\n  }}"
        );
    }
    if opaque > 0 {
        let _ = writeln!(
            out,
            "  Constraint StructBody : string {{\n    Summary \"a non-opaque struct body\"\n    NativeConstraint \"struct_opacity\"\n  }}"
        );
    }

    generate_type_attrs(&mut out, meta);
    generate_ops(&mut out, meta);

    out.push_str("}\n");
    out
}

/// Parameter-kind cycle for type definitions, shaped after paper Figure 8a
/// (types use mostly attr/type, integer, and enum parameters).
const TYPE_PARAM_KINDS: &[&str] = &[
    "!AnyType",
    "uint32_t",
    "mode",
    "!AnyType",
    "string",
    "array<int64_t>",
    "!AnyType",
    "int64_t",
];

/// Parameter-kind cycle for attribute definitions (Figure 8b adds
/// locations and type ids).
const ATTR_PARAM_KINDS: &[&str] = &[
    "#AnyAttr",
    "!AnyType",
    "mode",
    "string",
    "int64_t",
    "location_attr",
    "typeid_attr",
    "#f32_attr",
];

fn generate_type_attrs(out: &mut String, meta: &DialectMeta) {
    for (is_type, count, native_params, native_verifiers) in [
        (true, meta.num_types, meta.types_native_param, meta.types_native_verifier),
        (false, meta.num_attrs, meta.attrs_native_param, meta.attrs_native_verifier),
    ] {
        let keyword = if is_type { "Type" } else { "Attribute" };
        let kinds = if is_type { TYPE_PARAM_KINDS } else { ATTR_PARAM_KINDS };
        let stem = if is_type { "ty" } else { "attr" };
        for i in 0..count {
            let _ = writeln!(out, "  {keyword} {stem}_{i} {{");
            let num_params = 1 + (i % 2);
            let mut params = Vec::new();
            for p in 0..num_params {
                // The first `native_params` definitions get one native
                // (IRDL-C++) parameter each.
                if p == 0 && i < native_params {
                    params.push(format!("p{p}: NativeParam"));
                } else {
                    params.push(format!("p{p}: {}", kinds[(i + p) % kinds.len()]));
                }
            }
            let _ = writeln!(out, "    Parameters ({})", params.join(", "));
            let _ = writeln!(out, "    Summary \"{} definition #{i}\"", keyword.to_lowercase());
            // Native verifiers are assigned from the end so they do not all
            // coincide with native parameters.
            if i >= count - native_verifiers {
                let _ = writeln!(out, "    NativeVerifier \"params_always_ok\"");
            }
            let _ = writeln!(out, "  }}");
        }
    }
}

/// Operand-constraint cycle.
const OPERAND_KINDS: &[&str] =
    &["!AnyInteger", "!AnyFloat", "!i32", "!f32", "!AnyType", "!i64", "!index", "!AnyVector"];

/// Attribute-constraint cycle for operation attributes.
const OP_ATTR_KINDS: &[&str] =
    &["#i64_attr", "string_attr", "#f32_attr", "bool_attr", "array_attr", "symbol_attr"];

fn generate_ops(out: &mut String, meta: &DialectMeta) {
    let n = meta.num_ops;
    // Category multisets, assigned to op i through rotated indices so the
    // features decorrelate while the counts stay exact.
    let operand_counts = expand_hist(&meta.operand_hist, &[0, 1, 2], |j| 3 + (j % 3));
    let result_counts = expand_hist(&meta.result_hist, &[0, 1], |_| 2);
    let attr_counts = expand_hist(&meta.attr_hist, &[0, 1], |j| 2 + (j % 2));
    let region_counts = expand_hist(&meta.region_hist, &[0, 1], |_| 2);
    let rot = |i: usize, k: usize| (i + k * n.div_ceil(4)) % n;

    // Variadic-operand flags: walk ops in rotated order, flag the first
    // `variadic_operand_ops` that have at least one operand.
    let mut variadic_operand = vec![false; n];
    let mut left = meta.variadic_operand_ops;
    for step in 0..n {
        if left == 0 {
            break;
        }
        let i = (step * 3 + 1) % n;
        if operand_counts[rot(i, 0)] > 0 && !variadic_operand[i] {
            variadic_operand[i] = true;
            left -= 1;
        }
    }
    // Fallback pass in case the rotation misses slots (n divisible by 3).
    for i in 0..n {
        if left == 0 {
            break;
        }
        if operand_counts[rot(i, 0)] > 0 && !variadic_operand[i] {
            variadic_operand[i] = true;
            left -= 1;
        }
    }

    // Variadic-result flags among single-result ops.
    let mut variadic_result = vec![false; n];
    let mut left = meta.variadic_result_ops;
    for i in 0..n {
        if left == 0 {
            break;
        }
        if result_counts[rot(i, 1)] == 1 {
            variadic_result[i] = true;
            left -= 1;
        }
    }

    // Successor (terminator) flags.
    let mut successor = vec![false; n];
    for (index, s) in successor.iter_mut().enumerate() {
        *s = index < meta.successor_ops;
    }

    // Native global verifiers, assigned from the end.
    let native_verifier = |i: usize| i >= n - meta.native_verifier_ops;

    // Native local constraints: ops with >=1 attribute, in order, get the
    // three categories.
    let [ineq, stride, opaque] = meta.native_local;
    let mut native_local_kind: Vec<Option<&str>> = vec![None; n];
    let mut quotas = [(ineq, "BoundedValue"), (stride, "StridedLayout"), (opaque, "StructBody")];
    'outer: for i in 0..n {
        if attr_counts[rot(i, 2)] == 0 {
            continue;
        }
        for (quota, name) in quotas.iter_mut() {
            if *quota > 0 {
                *quota -= 1;
                native_local_kind[i] = Some(name);
                continue 'outer;
            }
        }
        break;
    }

    let names = op_names(meta.name, n);
    for i in 0..n {
        let _ = writeln!(out, "  Operation {} {{", names[i]);
        let num_operands = operand_counts[rot(i, 0)];
        // A third of the 2-operand, 1-result ops use a constraint variable,
        // the common "all operands have the same type" pattern (§4.6).
        let same_type =
            num_operands == 2 && result_counts[rot(i, 1)] == 1 && i % 3 == 0 && !variadic_operand[i];
        if same_type {
            let _ = writeln!(out, "    ConstraintVar (!T: !AnyType)");
        }
        if num_operands > 0 {
            let mut defs = Vec::new();
            for j in 0..num_operands {
                let constraint = if same_type {
                    "!T".to_string()
                } else {
                    OPERAND_KINDS[(i + j) % OPERAND_KINDS.len()].to_string()
                };
                // The last operand of a variadic op is the variadic one.
                if variadic_operand[i] && j + 1 == num_operands {
                    defs.push(format!("v{j}: Variadic<{constraint}>"));
                } else {
                    defs.push(format!("v{j}: {constraint}"));
                }
            }
            let _ = writeln!(out, "    Operands ({})", defs.join(", "));
        }
        let num_results = result_counts[rot(i, 1)];
        if num_results > 0 {
            let mut defs = Vec::new();
            for j in 0..num_results {
                let constraint = if same_type {
                    "!T".to_string()
                } else {
                    OPERAND_KINDS[(i + j + 3) % OPERAND_KINDS.len()].to_string()
                };
                if variadic_result[i] && j == 0 {
                    defs.push(format!("r{j}: Variadic<{constraint}>"));
                } else {
                    defs.push(format!("r{j}: {constraint}"));
                }
            }
            let _ = writeln!(out, "    Results ({})", defs.join(", "));
        }
        let num_attrs = attr_counts[rot(i, 2)];
        if num_attrs > 0 {
            let mut defs = Vec::new();
            for j in 0..num_attrs {
                let constraint = if j == 0 {
                    match native_local_kind[i] {
                        Some(kind) => kind.to_string(),
                        None => OP_ATTR_KINDS[(i + j) % OP_ATTR_KINDS.len()].to_string(),
                    }
                } else {
                    OP_ATTR_KINDS[(i + j) % OP_ATTR_KINDS.len()].to_string()
                };
                defs.push(format!("a{j}: {constraint}"));
            }
            let _ = writeln!(out, "    Attributes ({})", defs.join(", "));
        }
        let num_regions = region_counts[rot(i, 3)];
        for r in 0..num_regions {
            if i % 2 == 0 {
                let _ = writeln!(out, "    Region region{r} {{ Arguments (arg0: !AnyType) }}");
            } else {
                let _ = writeln!(out, "    Region region{r} {{ }}");
            }
        }
        if successor[i] {
            let _ = writeln!(out, "    Successors (on_true, on_false)");
        }
        if native_verifier(i) {
            let _ = writeln!(out, "    NativeVerifier \"cross_operand_check\"");
        }
        let _ = writeln!(out, "    Summary \"{} operation #{i}\"", meta.name);
        let _ = writeln!(out, "  }}");
    }
}

/// Expands a histogram into a per-op category list: `small[k]` gives the
/// value of the first buckets, `large(j)` the value of the j-th op in the
/// final (open-ended) bucket.
fn expand_hist(
    hist: &[usize],
    small: &[usize],
    large: impl Fn(usize) -> usize,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (bucket, &count) in hist.iter().enumerate() {
        for j in 0..count {
            if bucket < small.len() {
                out.push(small[bucket]);
            } else {
                out.push(large(j));
            }
        }
    }
    out
}

/// Realistic operation-name banks per dialect; names beyond the bank get a
/// numeric suffix on a cycled stem.
fn op_names(dialect: &str, n: usize) -> Vec<String> {
    let bank: &[&str] = match dialect {
        "affine" => &["apply", "for_op", "if_op", "load", "store", "min", "max", "parallel", "prefetch", "vector_load", "vector_store", "yield", "delinearize"],
        "amx" => &["tile_load", "tile_store", "tile_zero", "tile_mulf", "tile_muli", "tdpbf16ps", "tdpbssd", "tdpbsud", "tdpbusd", "tdpbuud", "tilerelease", "tile_cfg", "tile_dp"],
        "arith" => &["addi", "addf", "subi", "subf", "muli", "mulf", "divsi", "divui", "divf", "remsi", "remui", "remf", "andi", "ori", "xori", "shli", "shrsi", "shrui", "cmpi", "cmpf", "select", "extsi", "extui", "extf", "trunci", "truncf", "sitofp", "uitofp", "fptosi", "fptoui", "bitcast", "index_cast", "constant", "negf"],
        "arm_sve" => &["sdot", "smmla", "udot", "ummla", "scalable_sdot", "scalable_udot", "masked_addi", "masked_addf", "masked_subi", "masked_subf", "masked_muli", "masked_mulf", "masked_divi", "masked_divf"],
        "async" => &["execute", "await", "await_all", "yield", "create_group", "add_to_group", "runtime_resume", "runtime_await", "runtime_create", "runtime_drop_ref", "runtime_add_ref", "coro_begin", "coro_end", "coro_free", "coro_save", "coro_suspend", "runtime_store", "runtime_load", "runtime_num_workers"],
        "gpu" => &["launch", "launch_func", "thread_id", "block_id", "block_dim", "grid_dim", "barrier", "shuffle", "all_reduce", "subgroup_reduce", "wait", "alloc", "dealloc", "memcpy", "memset", "host_register", "module_op", "module_end", "return_op", "terminator", "yield", "printf", "subgroup_id", "num_subgroups"],
        "linalg" => &["generic", "matmul", "fill", "copy_op", "dot", "conv", "pooling_max", "index", "yield"],
        "llvm" => &["add", "sub", "mul", "sdiv", "udiv", "fadd", "fsub", "fmul", "fdiv", "and_op", "or_op", "xor_op", "shl", "lshr", "ashr", "load", "store", "alloca", "getelementptr", "bitcast", "inttoptr", "ptrtoint", "trunc", "zext", "sext", "fptrunc", "fpext", "icmp", "fcmp", "br", "cond_br", "switch", "call", "invoke", "ret", "unreachable", "phi", "select", "freeze", "fence", "atomicrmw", "cmpxchg", "extractvalue", "insertvalue", "extractelement", "insertelement", "shufflevector", "global", "addressof", "mlir_constant", "func_op", "landingpad", "resume"],
        "math" => &["absf", "absi", "atan", "atan2", "cbrt", "ceil", "cos", "sin", "tan", "erf", "exp", "exp2", "expm1", "floor", "log_op", "log2", "log10"],
        "memref" => &["alloc", "alloca", "dealloc", "load", "store", "cast", "copy_op", "dim", "rank", "reshape", "subview", "view", "transpose", "collapse_shape", "expand_shape", "get_global", "global_op", "prefetch", "atomic_rmw", "realloc", "memory_space_cast", "extract_aligned_pointer"],
        "nvvm" => &["barrier0", "read_ptx_sreg_tid_x", "read_ptx_sreg_tid_y", "read_ptx_sreg_tid_z", "read_ptx_sreg_ntid_x", "read_ptx_sreg_ctaid_x", "read_ptx_sreg_nctaid_x", "shfl_sync", "vote_ballot", "mma_sync", "wmma_load", "wmma_store", "wmma_mma", "cp_async", "cp_async_commit", "cp_async_wait", "redux_sync", "ldmatrix", "bar_warp_sync", "rcp_approx"],
        "pdl" => &["apply_native_constraint", "apply_native_rewrite", "attribute", "erase", "operand", "operands", "operation", "pattern", "replace", "result", "results", "rewrite", "type_op", "types"],
        "pdl_interp" => &["apply_constraint", "apply_rewrite", "are_equal", "branch", "check_attribute", "check_operand_count", "check_operation_name", "check_result_count", "check_type", "check_types", "continue_op", "create_attribute", "create_operation", "create_type", "create_types", "erase", "extract", "finalize", "foreach", "get_attribute", "get_defining_op", "get_operand", "get_operands", "get_result", "get_results", "get_value_type", "is_not_null", "record_match"],
        "quant" => &["dcast", "qcast", "scast", "const_fake_quant", "const_fake_quant_per_axis", "coupled_ref", "stats", "stats_ref", "region_op", "return_op", "uniform_dequantize"],
        "rocdl" => &["workitem_id_x", "workitem_id_y", "workitem_id_z", "workgroup_id_x", "workgroup_id_y", "workgroup_id_z", "workgroup_dim_x", "grid_dim_x", "barrier", "mfma_f32", "mfma_f16", "mfma_i8", "buffer_load", "buffer_store", "raw_buffer_load", "raw_buffer_store", "s_waitcnt", "ds_swizzle", "mubuf_load", "mubuf_store", "atomic_fadd", "atomic_fmax", "ballot", "readlane", "readfirstlane", "s_barrier", "sched_barrier", "waitcnt", "wmma", "swizzle", "permlane", "lds_load", "lds_store", "global_load", "global_store"],
        "shape" => &["add", "broadcast", "concat", "const_shape", "const_size", "cstr_broadcastable", "cstr_eq", "cstr_require", "div", "from_extents", "function_library", "get_extent", "index_to_size", "is_broadcastable", "max", "meet", "min", "mul", "num_elements", "rank", "reduce", "shape_eq", "shape_of", "size_to_index", "split_at", "to_extent_tensor", "value_as_shape", "value_of", "with_shape", "yield", "any", "assuming", "assuming_all", "assuming_yield", "broadcastable", "debug_print", "dim", "func_op", "get_extent_tensor", "require", "tensor_dim", "unify"],
        "sparse_tensor" => &["new_op", "convert", "to_pointers", "to_indices", "to_values", "load", "release"],
        "spv" => &["access_chain", "address_of", "atomic_and", "atomic_compare_exchange", "atomic_exchange", "atomic_iadd", "atomic_idecrement", "atomic_iincrement", "atomic_isub", "atomic_or", "atomic_smax", "atomic_smin", "atomic_umax", "atomic_umin", "atomic_xor", "bit_count", "bit_field_insert", "bit_field_s_extract", "bit_field_u_extract", "bit_reverse", "bitcast", "bitwise_and", "bitwise_or", "bitwise_xor", "branch", "branch_conditional", "composite_construct", "composite_extract", "composite_insert", "constant_op", "control_barrier", "convert_f_to_s", "convert_f_to_u", "convert_s_to_f", "convert_u_to_f", "copy_memory", "entry_point", "execution_mode", "f_add", "f_convert", "f_div", "f_mod", "f_mul", "f_negate", "f_ord_equal", "f_ord_greater_than", "f_ord_less_than", "f_rem", "f_sub", "f_unord_equal", "func_call", "func_op", "global_variable", "group_broadcast", "group_non_uniform_ballot", "group_non_uniform_elect", "group_non_uniform_iadd", "i_add", "i_equal", "i_mul", "i_not_equal", "i_sub", "image_op", "image_query_size", "in_bounds_ptr_access_chain", "isinf", "isnan", "load", "logical_and", "logical_equal", "logical_not", "logical_not_equal", "logical_or", "loop", "matrix_times_matrix", "matrix_times_scalar", "memory_barrier", "merge", "module_op", "not_op", "ordered", "ptr_access_chain", "ptr_cast_to_generic", "reference_of", "return_op", "return_value", "s_convert", "s_div", "s_dot", "s_greater_than", "s_less_than", "s_mod", "s_mul_extended", "s_negate", "s_rem", "select", "shift_left_logical", "shift_right_arithmetic", "shift_right_logical", "spec_constant", "store", "transpose", "u_convert", "u_div", "u_dot", "u_greater_than", "u_less_than", "u_mod", "u_mul_extended", "umulh", "undef", "unordered", "unreachable", "variable", "vector_extract_dynamic", "vector_insert_dynamic", "vector_shuffle", "vector_times_scalar", "yield"],
        "std" => &["assert_op", "br", "call", "call_indirect", "cond_br", "constant_op", "return_op", "switch", "select", "splat", "atomic_rmw", "atomic_yield", "generic_atomic_rmw", "rank", "dim", "tensor_load", "tensor_store", "view", "subview", "dma_start", "dma_wait", "alloc", "alloca", "dealloc", "memref_cast", "index_cast", "sitofp", "fpext", "fptrunc", "copysign", "absf", "ceilf", "floorf", "negf", "remf", "powf", "tanh", "sqrt", "rsqrt", "exp", "exp2", "log_op", "log2", "log10", "sin", "cos"],
        "tensor" => &["cast", "dim", "empty", "extract", "extract_slice", "from_elements", "generate", "insert", "insert_slice", "rank", "reshape", "splat"],
        "tosa" => &["abs_op", "add", "apply_scale", "argmax", "arithmetic_right_shift", "avg_pool2d", "bitwise_and", "bitwise_not", "bitwise_or", "bitwise_xor", "cast", "ceil", "clamp", "clz", "concat", "const_op", "conv2d", "conv3d", "cos", "custom", "depthwise_conv2d", "div_op", "equal", "erf", "exp", "fft2d", "floor", "fully_connected", "gather", "greater", "greater_equal", "identity", "if_op", "log_op", "logical_and", "logical_left_shift", "logical_not", "logical_or", "logical_right_shift", "logical_xor", "matmul", "max_pool2d", "maximum", "minimum", "mul", "negate", "pad", "pow", "reciprocal", "reduce_all", "reduce_any", "reduce_max", "reduce_min", "reduce_prod", "reduce_sum", "rescale", "reshape", "resize", "reverse", "rfft2d", "rsqrt", "scatter", "select", "sigmoid", "sin", "slice", "sub", "table", "tanh", "tile", "transpose", "transpose_conv2d", "variable_op", "while_op", "yield", "cond_if"],
        "vector" => &["bitcast", "broadcast", "compressstore", "constant_mask", "contract", "create_mask", "expandload", "extract", "extract_element", "extract_strided_slice", "fma", "flat_transpose", "gather", "insert", "insert_element", "insert_strided_slice", "load", "maskedload", "maskedstore", "matrix_multiply", "multi_reduction", "outerproduct", "print", "reduction", "scan", "scatter", "shape_cast", "shuffle", "splat", "store", "transfer_read", "transfer_write", "transpose", "type_cast", "mask", "yield"],
        "x86vector" => &["avx_intr_dot", "avx_intr_rsqrt", "avx2_intr_gather", "avx512_intr_mask_compress", "avx512_intr_mask_rndscale", "avx512_intr_mask_scalef", "avx512_intr_vp2intersect", "avx512_mask_compress", "avx512_mask_rndscale", "avx512_mask_scalef", "avx512_vp2intersect", "avx_rsqrt", "avx_dot", "avx2_gather"],
        _ => &["op"],
    };
    (0..n)
        .map(|i| {
            if i < bank.len() {
                bank[i].to_string()
            } else {
                format!("{}_{}", bank[i % bank.len()], i / bank.len())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::dialects;

    #[test]
    fn generated_sources_parse() {
        for meta in dialects().iter().filter(|d| !d.hand_written) {
            let src = generate_dialect(meta);
            let file = irdl::parse_irdl(&src)
                .unwrap_or_else(|e| panic!("{}: {}\n{src}", meta.name, e.render(&src)));
            assert_eq!(file.dialects.len(), 1);
            assert_eq!(file.dialects[0].name, meta.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let meta = &dialects()[0];
        assert_eq!(generate_dialect(meta), generate_dialect(meta));
    }

    #[test]
    fn generated_op_count_matches_metadata() {
        for meta in dialects().iter().filter(|d| !d.hand_written) {
            let src = generate_dialect(meta);
            let file = irdl::parse_irdl(&src).unwrap();
            let ops = file.dialects[0]
                .items
                .iter()
                .filter(|i| matches!(i, irdl::ast::Item::Operation(_)))
                .count();
            assert_eq!(ops, meta.num_ops, "{}", meta.name);
        }
    }
}
