//! Executable semantics for the corpus and showcase dialects.
//!
//! Each registration function attaches [`OpEvaluator`](irdl_interp::OpEvaluator)
//! hooks to an [`EvalRegistry`] under qualified op names, the same way the
//! corpus attaches native verifier hooks. The hooks cover:
//!
//! - **builtin**: module/function containers (bodies run once with derived
//!   inputs) and `unrealized_conversion_cast` (operand forwarding);
//! - **scf**: structured control flow — `if_op`, counted `for_op`,
//!   `while_op`, `execute_region`, `barrier`, and the single-shot
//!   `parallel`/`forall` — with every loop iteration charged against the
//!   machine's control-transfer fuel;
//! - **complex** / **cmath**: complex arithmetic over bit-canonical
//!   [`EvalValue`]s, with division by exact zero trapping;
//! - **arith** and the fuzzer's `fuzz.const`/`fuzz.addi`… ops: scalar
//!   arithmetic with two's-complement wrapping and a `div-by-zero` trap,
//!   plus the constant models and materializers constant folding runs on.
//!
//! Operands outside an op's domain (e.g. an opaque value flowing into
//! `complex.add` in unverified fuzzer IR) never trap: the op falls back to
//! the machine's deterministic uninterpreted model, keeping every module
//! executable.

use irdl_interp::{float_kind, int_width, EvalRegistry, EvalValue, Machine, Trap, TrapKind};
use irdl_ir::types::{FloatKind, TypeData};
use irdl_ir::{Context, OperationState, OpRef, Type};

/// The component format of a complex type (`!builtin.complex<f32>`,
/// `!cmath.complex<f64>`), if `ty` is one.
pub fn complex_kind(ctx: &Context, ty: Type) -> Option<FloatKind> {
    match ctx.type_data(ty) {
        TypeData::Parametric { name, params, .. } if ctx.symbol_str(*name) == "complex" => Some(
            params
                .first()
                .and_then(|p| p.as_type(ctx))
                .and_then(|elem| float_kind(ctx, elem))
                .unwrap_or(FloatKind::F64),
        ),
        _ => None,
    }
}

/// The float format to encode `op`'s first result in: its result type's
/// format when that is a float or complex type, `f64` otherwise.
fn result_kind(ctx: &Context, op: OpRef) -> FloatKind {
    op.result_types(ctx)
        .first()
        .and_then(|&ty| float_kind(ctx, ty).or_else(|| complex_kind(ctx, ty)))
        .unwrap_or(FloatKind::F64)
}

/// Runs `op`'s region `idx` with `args` and returns the operand values of
/// its terminator (the region's yielded values). A missing region or an
/// empty block yields nothing.
fn run_region_yield(
    machine: &mut Machine<'_>,
    op: OpRef,
    idx: usize,
    args: &[EvalValue],
) -> Result<Vec<EvalValue>, Trap> {
    let Some(&region) = op.regions(machine.ctx()).get(idx) else { return Ok(Vec::new()) };
    let term = machine.run_region_to_terminator(region, args)?;
    Ok(match term {
        Some(term) => machine.operand_values(term),
        None => Vec::new(),
    })
}

/// Runs a `while`-style condition region: returns `(continue?, args)` from
/// its `scf.condition` terminator. A region ending in anything else stops
/// the loop with whatever values the terminator carried.
fn run_condition_region(
    machine: &mut Machine<'_>,
    op: OpRef,
    idx: usize,
    args: &[EvalValue],
) -> Result<(bool, Vec<EvalValue>), Trap> {
    let Some(&region) = op.regions(machine.ctx()).get(idx) else { return Ok((false, Vec::new())) };
    let Some(term) = machine.run_region_to_terminator(region, args)? else {
        return Ok((false, Vec::new()));
    };
    let mut values = machine.operand_values(term);
    if term.name(machine.ctx()).display(machine.ctx()) == "scf.condition" && !values.is_empty() {
        let cond = values.remove(0);
        Ok((cond.is_true(), values))
    } else {
        Ok((false, values))
    }
}

/// Registers semantics for the `builtin` dialect's three operations.
pub fn register_builtin_eval(reg: &mut EvalRegistry) {
    reg.register_fn("builtin.module", |machine, op| {
        run_region_yield(machine, op, 0, &[])?;
        Ok(Vec::new())
    });
    // A function body runs once, with derived inputs for its entry
    // arguments — "called once on symbolic inputs".
    reg.register_fn("builtin.func", |machine, op| {
        run_region_yield(machine, op, 0, &[])?;
        Ok(Vec::new())
    });
    reg.register_fn("builtin.unrealized_conversion_cast", |machine, op| {
        Ok(machine.operand_values(op))
    });
}

/// Registers semantics for the `scf` dialect.
pub fn register_scf_eval(reg: &mut EvalRegistry) {
    // Region terminators: pure value carriers, read back by the parent op.
    for name in ["scf.yield", "scf.condition", "scf.reduce_return"] {
        reg.register_fn(name, |_, _| Ok(Vec::new()));
    }
    reg.register_fn("scf.execute_region", |machine, op| run_region_yield(machine, op, 0, &[]));
    reg.register_fn("scf.barrier", |machine, op| {
        run_region_yield(machine, op, 0, &[])?;
        Ok(vec![EvalValue::int(1, 1)])
    });
    reg.register_fn("scf.if_op", |machine, op| {
        let cond = match op.operands(machine.ctx()).first() {
            Some(&v) => machine.get(v).is_true(),
            None => false,
        };
        run_region_yield(machine, op, usize::from(!cond), &[])
    });
    reg.register_fn("scf.for_op", |machine, op| {
        let vals = machine.operand_values(op);
        if vals.len() < 3 {
            return machine.uninterpreted(op);
        }
        let (Some(lb), Some(ub), Some(step)) =
            (vals[0].as_int(), vals[1].as_int(), vals[2].as_int())
        else {
            return machine.uninterpreted(op);
        };
        if step <= 0 && lb < ub {
            return Err(Trap::new(
                TrapKind::MalformedOp,
                "scf.for_op",
                format!("non-positive step {step} with lower bound {lb} < upper bound {ub}"),
            ));
        }
        let mut carried: Vec<EvalValue> = vals[3..].to_vec();
        let mut iv = lb;
        while iv < ub {
            machine.charge_fuel(op)?;
            let mut args = vec![EvalValue::int(iv, 64)];
            args.extend_from_slice(&carried);
            carried = run_region_yield(machine, op, 0, &args)?;
            let Some(next) = iv.checked_add(step) else { break };
            iv = next;
        }
        Ok(carried)
    });
    reg.register_fn("scf.while_op", |machine, op| {
        let vals = machine.operand_values(op);
        // Operands are `inits..., token`; the token is a pure data value.
        let mut state: Vec<EvalValue> =
            vals[..vals.len().saturating_sub(1)].to_vec();
        loop {
            let (go_on, args) = run_condition_region(machine, op, 0, &state)?;
            if !go_on {
                return Ok(args);
            }
            machine.charge_fuel(op)?;
            state = run_region_yield(machine, op, 1, &args)?;
        }
    });
    // Parallel loop nests: one representative body execution on derived
    // inputs — a deterministic stand-in observing the body's effects.
    for name in ["scf.parallel", "scf.forall"] {
        reg.register_fn(name, |machine, op| {
            machine.charge_fuel(op)?;
            run_region_yield(machine, op, 0, &[])
        });
    }
}

/// Complex multiplication.
fn cmul((a, b): (f64, f64), (c, d): (f64, f64)) -> (f64, f64) {
    (a * c - b * d, a * d + b * c)
}

/// Complex natural logarithm.
fn clog((re, im): (f64, f64)) -> (f64, f64) {
    (re.hypot(im).ln(), im.atan2(re))
}

/// Complex exponential.
fn cexp((re, im): (f64, f64)) -> (f64, f64) {
    let r = re.exp();
    (r * im.cos(), r * im.sin())
}

/// Registers a unary complex op computed by `f` (fallback: uninterpreted
/// when the operand is not complex).
fn register_complex_unary(
    reg: &mut EvalRegistry,
    name: &str,
    f: fn((f64, f64)) -> (f64, f64),
) {
    reg.register_fn(name.to_string(), move |machine, op| {
        let vals = machine.operand_values(op);
        let Some(z) = vals.first().and_then(|v| v.as_complex()) else {
            return machine.uninterpreted(op);
        };
        let (re, im) = f(z);
        Ok(vec![EvalValue::complex(re, im, result_kind(machine.ctx(), op))])
    });
}

/// A binary complex kernel: `(lhs_re, lhs_im), (rhs_re, rhs_im)` in,
/// `(re, im)` out.
type ComplexBinop = fn((f64, f64), (f64, f64)) -> (f64, f64);

/// Registers a binary complex op computed by `f`.
fn register_complex_binary(reg: &mut EvalRegistry, name: &str, f: ComplexBinop) {
    reg.register_fn(name.to_string(), move |machine, op| {
        let vals = machine.operand_values(op);
        let (Some(lhs), Some(rhs)) = (
            vals.first().and_then(|v| v.as_complex()),
            vals.get(1).and_then(|v| v.as_complex()),
        ) else {
            return machine.uninterpreted(op);
        };
        let (re, im) = f(lhs, rhs);
        Ok(vec![EvalValue::complex(re, im, result_kind(machine.ctx(), op))])
    });
}

/// Registers a unary complex-to-float projection computed by `f`.
fn register_complex_proj(reg: &mut EvalRegistry, name: &str, f: fn((f64, f64)) -> f64) {
    reg.register_fn(name.to_string(), move |machine, op| {
        let vals = machine.operand_values(op);
        let Some(z) = vals.first().and_then(|v| v.as_complex()) else {
            return machine.uninterpreted(op);
        };
        Ok(vec![EvalValue::float(f(z), result_kind(machine.ctx(), op))])
    });
}

/// Complex division with a `div-by-zero` trap on an exactly-zero divisor.
fn complex_div(
    machine: &mut Machine<'_>,
    op: OpRef,
    name: &'static str,
) -> Result<Vec<EvalValue>, Trap> {
    let vals = machine.operand_values(op);
    let (Some((a, b)), Some((c, d))) = (
        vals.first().and_then(|v| v.as_complex()),
        vals.get(1).and_then(|v| v.as_complex()),
    ) else {
        return machine.uninterpreted(op);
    };
    if c == 0.0 && d == 0.0 {
        return Err(Trap::new(TrapKind::DivByZero, name, "complex divisor is exactly zero"));
    }
    let denom = c * c + d * d;
    let (re, im) = ((a * c + b * d) / denom, (b * c - a * d) / denom);
    Ok(vec![EvalValue::complex(re, im, result_kind(machine.ctx(), op))])
}

/// Registers semantics for the corpus `complex` dialect (15 ops).
pub fn register_complex_eval(reg: &mut EvalRegistry) {
    // `complex.constant` carries no payload attributes: the one value it
    // denotes is zero. That makes it a (degenerate) constant the folder
    // can both read and materialize.
    reg.register_const("complex.constant", |ctx, op| {
        let kind = complex_kind(ctx, *op.result_types(ctx).first()?)?;
        Some(vec![EvalValue::complex(0.0, 0.0, kind)])
    });
    register_complex_proj(reg, "complex.abs", |(re, im)| re.hypot(im));
    register_complex_proj(reg, "complex.re", |(re, _)| re);
    register_complex_proj(reg, "complex.im", |(_, im)| im);
    register_complex_unary(reg, "complex.neg", |(re, im)| (-re, -im));
    register_complex_unary(reg, "complex.conj", |(re, im)| (re, -im));
    register_complex_unary(reg, "complex.exp", cexp);
    register_complex_unary(reg, "complex.log", clog);
    register_complex_unary(reg, "complex.sqrt", |(re, im)| {
        let r = re.hypot(im);
        (((r + re) / 2.0).sqrt(), (((r - re) / 2.0).sqrt()).copysign(im))
    });
    register_complex_binary(reg, "complex.add", |(a, b), (c, d)| (a + c, b + d));
    register_complex_binary(reg, "complex.sub", |(a, b), (c, d)| (a - c, b - d));
    register_complex_binary(reg, "complex.mul", cmul);
    register_complex_binary(reg, "complex.pow", |z, w| cexp(cmul(w, clog(z))));
    reg.register_fn("complex.div", |machine, op| complex_div(machine, op, "complex.div"));
    reg.register_fn("complex.create", |machine, op| {
        let vals = machine.operand_values(op);
        let (Some(re), Some(im)) = (
            vals.first().and_then(|v| v.as_float()),
            vals.get(1).and_then(|v| v.as_float()),
        ) else {
            return machine.uninterpreted(op);
        };
        Ok(vec![EvalValue::complex(re, im, result_kind(machine.ctx(), op))])
    });
}

/// Reads a binary integer op's operands as `(lhs, rhs, result width)`.
fn int_binop_inputs(machine: &mut Machine<'_>, op: OpRef) -> Option<(i128, i128, u32)> {
    let vals = machine.operand_values(op);
    let lhs = vals.first().and_then(|v| v.as_int())?;
    let rhs = vals.get(1).and_then(|v| v.as_int())?;
    let width = op
        .result_types(machine.ctx())
        .first()
        .and_then(|&ty| int_width(machine.ctx(), ty))
        .unwrap_or(64);
    Some((lhs, rhs, width))
}

/// Registers semantics for the fuzzer's arithmetic ops (`fuzz.const`,
/// `fuzz.addi`, `fuzz.subi`, `fuzz.muli`, `fuzz.divi`) and the `fuzz.const`
/// materializer. These are the ops the generator emits to give constant
/// folding something to fold in random modules; `fuzz.divi` traps on a
/// zero divisor so rewrites are validated against trap preservation too.
pub fn register_fuzz_eval(reg: &mut EvalRegistry) {
    reg.register_const("fuzz.const", |ctx, op| {
        let attr = op.attr(ctx, "value")?;
        let ty = *op.result_types(ctx).first()?;
        if let Some(v) = attr.as_int(ctx) {
            return Some(vec![EvalValue::int(v, int_width(ctx, ty)?)]);
        }
        Some(vec![EvalValue::float(attr.as_float(ctx)?, float_kind(ctx, ty)?)])
    });
    reg.register_fn("fuzz.addi", |machine, op| {
        let Some((lhs, rhs, width)) = int_binop_inputs(machine, op) else {
            return machine.uninterpreted(op);
        };
        Ok(vec![EvalValue::int(lhs.wrapping_add(rhs), width)])
    });
    reg.register_fn("fuzz.subi", |machine, op| {
        let Some((lhs, rhs, width)) = int_binop_inputs(machine, op) else {
            return machine.uninterpreted(op);
        };
        Ok(vec![EvalValue::int(lhs.wrapping_sub(rhs), width)])
    });
    reg.register_fn("fuzz.muli", |machine, op| {
        let Some((lhs, rhs, width)) = int_binop_inputs(machine, op) else {
            return machine.uninterpreted(op);
        };
        Ok(vec![EvalValue::int(lhs.wrapping_mul(rhs), width)])
    });
    reg.register_fn("fuzz.divi", |machine, op| {
        let Some((lhs, rhs, width)) = int_binop_inputs(machine, op) else {
            return machine.uninterpreted(op);
        };
        if rhs == 0 {
            return Err(Trap::new(TrapKind::DivByZero, "fuzz.divi", "divisor is zero"));
        }
        let q = if lhs == i128::MIN && rhs == -1 { lhs } else { lhs / rhs };
        Ok(vec![EvalValue::int(q, width)])
    });
    reg.register_materializer(std::sync::Arc::new(
        |ctx: &mut Context, value: &EvalValue, ty: Type| {
            let attr = match *value {
                EvalValue::Int { value, .. } => {
                    int_width(ctx, ty)?;
                    ctx.int_attr(value, ty)
                }
                EvalValue::Float { bits, kind } => {
                    float_kind(ctx, ty)?;
                    ctx.float_attr(f64::from_bits(bits), kind)
                }
                _ => return None,
            };
            let name = ctx.op_name("fuzz", "const");
            let key = ctx.symbol("value");
            Some(OperationState::new(name).add_result_types([ty]).add_attribute(key, attr))
        },
    ));
}

/// Semantics for the corpus dialects: `builtin`, `scf`, `complex`, plus
/// the fuzzer arithmetic ops that appear in generated modules. Every other
/// corpus op runs under the machine's uninterpreted model.
pub fn corpus_semantics() -> EvalRegistry {
    let mut reg = EvalRegistry::new();
    register_builtin_eval(&mut reg);
    register_scf_eval(&mut reg);
    register_complex_eval(&mut reg);
    register_fuzz_eval(&mut reg);
    // Materialize exactly-zero complex values as `complex.constant` — the
    // only value its payload (none) can encode.
    reg.register_materializer(std::sync::Arc::new(
        |ctx: &mut Context, value: &EvalValue, ty: Type| {
            let kind = complex_kind(ctx, ty)?;
            match *value {
                EvalValue::Complex { re, im, kind: vk }
                    if re == 0.0f64.to_bits() && im == 0.0f64.to_bits() && vk == kind =>
                {
                    let name = ctx.op_name("complex", "constant");
                    Some(OperationState::new(name).add_result_types([ty]))
                }
                _ => None,
            }
        },
    ));
    reg
}

/// Semantics for the showcase dialects (`cmath`, `arith`, `func`) plus the
/// shared `builtin`/`scf`/fuzz hooks.
pub fn showcase_semantics() -> EvalRegistry {
    let mut reg = EvalRegistry::new();
    register_builtin_eval(&mut reg);
    register_scf_eval(&mut reg);

    register_complex_binary(&mut reg, "cmath.mul", cmul);
    register_complex_proj(&mut reg, "cmath.norm", |(re, im)| re.hypot(im));
    // `cmath.log` models the natural logarithm; the optional base operand
    // is accepted but ignored (the paper's listing never supplies one).
    register_complex_unary(&mut reg, "cmath.log", clog);
    reg.register_const("cmath.create_constant", |ctx, op| {
        let re = op.attr(ctx, "re")?.as_float(ctx)?;
        let im = op.attr(ctx, "im")?.as_float(ctx)?;
        Some(vec![EvalValue::complex(re, im, FloatKind::F32)])
    });

    reg.register_const("arith.constant", |ctx, op| {
        let v = op.attr(ctx, "value")?.as_float(ctx)?;
        let kind = float_kind(ctx, *op.result_types(ctx).first()?)?;
        Some(vec![EvalValue::float(v, kind)])
    });
    for (name, f) in
        [("arith.mulf", (|a, b| a * b) as fn(f64, f64) -> f64), ("arith.addf", |a, b| a + b)]
    {
        reg.register_fn(name.to_string(), move |machine: &mut Machine<'_>, op| {
            let vals = machine.operand_values(op);
            let (Some(lhs), Some(rhs)) = (
                vals.first().and_then(|v| v.as_float()),
                vals.get(1).and_then(|v| v.as_float()),
            ) else {
                return machine.uninterpreted(op);
            };
            Ok(vec![EvalValue::float(f(lhs, rhs), result_kind(machine.ctx(), op))])
        });
    }

    reg.register_fn("func.func_op", |machine, op| {
        run_region_yield(machine, op, 0, &[])?;
        Ok(Vec::new())
    });
    reg.register_fn("func.return_op", |_, _| Ok(Vec::new()));

    // Dialect-native materializers first (materializers are tried in
    // registration order): floats become `arith.constant`, f32 complex
    // values become `cmath.create_constant`; the `fuzz.const` fallback
    // registered below then only handles integers.
    reg.register_materializer(std::sync::Arc::new(
        |ctx: &mut Context, value: &EvalValue, ty: Type| {
            let EvalValue::Float { bits, kind } = *value else { return None };
            if float_kind(ctx, ty) != Some(kind) {
                return None;
            }
            let name = ctx.op_name("arith", "constant");
            let key = ctx.symbol("value");
            let attr = ctx.float_attr(f64::from_bits(bits), kind);
            Some(OperationState::new(name).add_result_types([ty]).add_attribute(key, attr))
        },
    ));
    reg.register_materializer(std::sync::Arc::new(
        |ctx: &mut Context, value: &EvalValue, ty: Type| {
            let EvalValue::Complex { re, im, kind: FloatKind::F32 } = *value else { return None };
            if complex_kind(ctx, ty) != Some(FloatKind::F32) {
                return None;
            }
            let name = ctx.op_name("cmath", "create_constant");
            let re_key = ctx.symbol("re");
            let im_key = ctx.symbol("im");
            let re_attr = ctx.f32_attr(f64::from_bits(re));
            let im_attr = ctx.f32_attr(f64::from_bits(im));
            Some(
                OperationState::new(name)
                    .add_result_types([ty])
                    .add_attribute(re_key, re_attr)
                    .add_attribute(im_key, im_attr),
            )
        },
    ));
    register_fuzz_eval(&mut reg);
    reg
}
