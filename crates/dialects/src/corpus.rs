//! Assembling and registering the full 28-dialect corpus.

use std::sync::Arc;

use irdl::NativeRegistry;
use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::Context;

use crate::generator::generate_dialect;
use crate::metadata::{dialects, DialectMeta};

/// Returns the IRDL source text of one corpus dialect: the hand-written
/// spec when one exists, the generated expansion otherwise.
pub fn dialect_source(meta: &DialectMeta) -> String {
    match meta.name {
        "builtin" => include_str!("../specs/builtin.irdl").to_string(),
        "arm_neon" => include_str!("../specs/arm_neon.irdl").to_string(),
        "complex" => include_str!("../specs/complex.irdl").to_string(),
        "scf" => include_str!("../specs/scf.irdl").to_string(),
        _ => generate_dialect(meta),
    }
}

/// The IRDL source of the entire corpus, dialect by dialect.
pub fn corpus_sources() -> Vec<(String, String)> {
    dialects()
        .iter()
        .map(|meta| (meta.name.to_string(), dialect_source(meta)))
        .collect()
}

/// The native (IRDL-Rust) hooks the corpus depends on: the stock registry
/// plus the op verifiers and parameter-list verifiers referenced by the
/// corpus specifications.
pub fn corpus_natives() -> NativeRegistry {
    let mut natives = NativeRegistry::with_std();
    // A generic cross-operand check, standing in for the 30% of MLIR ops
    // whose verifier needs C++ (paper Figure 11b). It rejects duplicate
    // operands, a representative non-local invariant.
    natives.register_op_verifier(
        "cross_operand_check",
        Arc::new(|ctx: &Context, op: irdl_ir::OpRef| {
            let operands = op.operands(ctx);
            for (i, a) in operands.iter().enumerate() {
                for b in operands.iter().skip(i + 1) {
                    if a == b && operands.len() > 8 {
                        return Err(Diagnostic::new(
                            "wide operations must not repeat operands",
                        ));
                    }
                }
            }
            Ok(())
        }),
    );
    natives.register_params_verifier(
        "params_always_ok",
        Arc::new(|_ctx: &Context, _params: &[irdl_ir::Attribute]| Ok(())),
    );
    natives.register_params_verifier(
        "builtin_integer_width",
        Arc::new(|ctx: &Context, params: &[irdl_ir::Attribute]| {
            match params.first().and_then(|p| p.as_int(ctx)) {
                Some(w) if (1..=128).contains(&w) => Ok(()),
                Some(w) => Err(Diagnostic::new(format!("invalid integer bitwidth {w}"))),
                None => Err(Diagnostic::new("integer type needs a bitwidth")),
            }
        }),
    );
    natives.register_params_verifier(
        "builtin_float_width",
        Arc::new(|ctx: &Context, params: &[irdl_ir::Attribute]| {
            match params.first().and_then(|p| p.as_int(ctx)) {
                Some(16) | Some(32) | Some(64) => Ok(()),
                Some(w) => Err(Diagnostic::new(format!("invalid float bitwidth {w}"))),
                None => Err(Diagnostic::new("float type needs a bitwidth")),
            }
        }),
    );
    natives.register_params_verifier(
        "builtin_dictionary_sorted",
        Arc::new(|ctx: &Context, params: &[irdl_ir::Attribute]| {
            let keys: Vec<String> = params
                .first()
                .and_then(|p| p.as_array(ctx))
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|a| a.as_str(ctx).map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            if keys.windows(2).all(|w| w[0] <= w[1]) {
                Ok(())
            } else {
                Err(Diagnostic::new("dictionary keys must be sorted"))
            }
        }),
    );
    natives.register_params_verifier(
        "builtin_integer_fits",
        Arc::new(|_ctx: &Context, _params: &[irdl_ir::Attribute]| Ok(())),
    );
    natives.register_op_verifier(
        "builtin_module_check",
        Arc::new(|ctx: &Context, op: irdl_ir::OpRef| {
            if op.num_operands(ctx) == 0 && op.num_results(ctx) == 0 {
                Ok(())
            } else {
                Err(Diagnostic::new("module takes no operands and produces no results"))
            }
        }),
    );
    natives.register_op_verifier(
        "builtin_func_check",
        Arc::new(|ctx: &Context, op: irdl_ir::OpRef| {
            match op.attr(ctx, "sym_name") {
                Some(name) if name.as_str(ctx).is_some_and(|s| !s.is_empty()) => Ok(()),
                _ => Err(Diagnostic::new("func needs a non-empty symbol name")),
            }
        }),
    );
    natives
}

/// Registers all 28 corpus dialects into `ctx` and returns their names in
/// registration order.
///
/// # Errors
///
/// Returns the first compile diagnostic, annotated with the dialect name.
pub fn register_corpus(ctx: &mut Context) -> Result<Vec<String>> {
    let natives = corpus_natives();
    let mut names = Vec::new();
    for (name, source) in corpus_sources() {
        irdl::register_dialects_with(ctx, &source, &natives)
            .map_err(|d| d.with_note(format!("while compiling corpus dialect `{name}`")))?;
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_compiles() {
        let mut ctx = Context::new();
        let names = register_corpus(&mut ctx).expect("corpus compiles");
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn compiled_op_counts_match_metadata() {
        let mut ctx = Context::new();
        register_corpus(&mut ctx).unwrap();
        for meta in dialects() {
            let sym = ctx.symbol_lookup(meta.name).expect("dialect name interned");
            let dialect = ctx.registry().dialect(sym).expect("dialect registered");
            assert_eq!(dialect.num_ops(), meta.num_ops, "{}: op count", meta.name);
            assert_eq!(dialect.num_types(), meta.num_types, "{}: type count", meta.name);
            assert_eq!(dialect.num_attrs(), meta.num_attrs, "{}: attr count", meta.name);
        }
    }

    #[test]
    fn compiled_histograms_match_metadata() {
        let mut ctx = Context::new();
        register_corpus(&mut ctx).unwrap();
        for meta in dialects() {
            let sym = ctx.symbol_lookup(meta.name).unwrap();
            let dialect = ctx.registry().dialect(sym).unwrap();
            let mut operand_hist = [0usize; 4];
            let mut result_hist = [0usize; 3];
            let mut attr_hist = [0usize; 3];
            let mut region_hist = [0usize; 3];
            let mut variadic_op = 0;
            let mut variadic_res = 0;
            let mut native_verifier = 0;
            let mut native_local = 0;
            let mut terminators = 0;
            for op in dialect.ops() {
                operand_hist[(op.decl.operand_defs as usize).min(3)] += 1;
                result_hist[(op.decl.result_defs as usize).min(2)] += 1;
                attr_hist[(op.decl.attr_defs as usize).min(2)] += 1;
                region_hist[(op.decl.region_defs as usize).min(2)] += 1;
                if op.decl.variadic_operands > 0 {
                    variadic_op += 1;
                }
                if op.decl.variadic_results > 0 {
                    variadic_res += 1;
                }
                if op.decl.has_native_verifier {
                    native_verifier += 1;
                }
                if !op.decl.native_local_constraints.is_empty() {
                    native_local += 1;
                }
                if op.is_terminator {
                    terminators += 1;
                }
            }
            assert_eq!(operand_hist, meta.operand_hist, "{}: operands", meta.name);
            assert_eq!(result_hist, meta.result_hist, "{}: results", meta.name);
            assert_eq!(attr_hist, meta.attr_hist, "{}: attrs", meta.name);
            assert_eq!(region_hist, meta.region_hist, "{}: regions", meta.name);
            assert_eq!(variadic_op, meta.variadic_operand_ops, "{}: variadic ops", meta.name);
            assert_eq!(variadic_res, meta.variadic_result_ops, "{}: variadic results", meta.name);
            assert_eq!(
                native_verifier, meta.native_verifier_ops,
                "{}: native verifiers",
                meta.name
            );
            assert_eq!(
                native_local,
                meta.native_local.iter().sum::<usize>(),
                "{}: native local",
                meta.name
            );
            assert_eq!(terminators, meta.successor_ops, "{}: terminators", meta.name);
        }
    }

    #[test]
    fn compiled_type_attr_flags_match_metadata() {
        let mut ctx = Context::new();
        register_corpus(&mut ctx).unwrap();
        for meta in dialects() {
            let sym = ctx.symbol_lookup(meta.name).unwrap();
            let dialect = ctx.registry().dialect(sym).unwrap();
            let native_param_types = dialect
                .types()
                .filter(|t| t.param_kinds.iter().any(|k| !k.is_builtin()))
                .count();
            let native_verifier_types =
                dialect.types().filter(|t| t.has_native_verifier).count();
            assert_eq!(native_param_types, meta.types_native_param, "{}: type params", meta.name);
            assert_eq!(
                native_verifier_types, meta.types_native_verifier,
                "{}: type verifiers",
                meta.name
            );
            let native_param_attrs = dialect
                .attrs()
                .filter(|t| t.param_kinds.iter().any(|k| !k.is_builtin()))
                .count();
            let native_verifier_attrs =
                dialect.attrs().filter(|t| t.has_native_verifier).count();
            assert_eq!(native_param_attrs, meta.attrs_native_param, "{}: attr params", meta.name);
            assert_eq!(
                native_verifier_attrs, meta.attrs_native_verifier,
                "{}: attr verifiers",
                meta.name
            );
        }
    }
}
