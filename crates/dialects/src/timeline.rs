//! The dialect-growth timeline (paper Figure 3).
//!
//! The paper plots the number of operations defined in the public MLIR
//! repository from 05/2020 (444 operations, 18 dialects) to 01/2022 (942
//! operations, 28 dialects) — a 2.1x growth in 20 months. The git history
//! itself cannot be shipped; this module records the monthly snapshot
//! series so the reporting harness can replay it.

/// One monthly snapshot of the MLIR dialect ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Year (e.g. 2021).
    pub year: u16,
    /// Month (1-12).
    pub month: u8,
    /// Operations defined across all dialects.
    pub ops: u32,
    /// Number of dialects.
    pub dialects: u32,
}

/// The monthly series behind Figure 3 (May 2020 - January 2022).
pub fn snapshots() -> Vec<Snapshot> {
    let raw: &[(u16, u8, u32, u32)] = &[
        (2020, 5, 444, 18),
        (2020, 6, 461, 18),
        (2020, 7, 483, 19),
        (2020, 8, 497, 19),
        (2020, 9, 520, 20),
        (2020, 10, 543, 21),
        (2020, 11, 561, 21),
        (2020, 12, 580, 22),
        (2021, 1, 607, 22),
        (2021, 2, 633, 23),
        (2021, 3, 661, 23),
        (2021, 4, 684, 24),
        (2021, 5, 703, 24),
        (2021, 6, 727, 25),
        (2021, 7, 752, 25),
        (2021, 8, 779, 26),
        (2021, 9, 806, 26),
        (2021, 10, 838, 27),
        (2021, 11, 871, 27),
        (2021, 12, 907, 28),
        (2022, 1, 942, 28),
    ];
    raw.iter()
        .map(|&(year, month, ops, dialects)| Snapshot { year, month, ops, dialects })
        .collect()
}

/// The growth factor over the series (paper: 2.1x).
pub fn growth_factor() -> f64 {
    let series = snapshots();
    let first = series.first().expect("non-empty series");
    let last = series.last().expect("non-empty series");
    f64::from(last.ops) / f64::from(first.ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_paper() {
        let series = snapshots();
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert_eq!((first.year, first.month, first.ops, first.dialects), (2020, 5, 444, 18));
        assert_eq!((last.year, last.month, last.ops, last.dialects), (2022, 1, 942, 28));
        assert_eq!(series.len(), 21, "21 monthly snapshots over 20 months");
    }

    #[test]
    fn growth_is_monotonic_and_2_1x() {
        let series = snapshots();
        for pair in series.windows(2) {
            assert!(pair[1].ops >= pair[0].ops, "op count never shrinks");
            assert!(pair[1].dialects >= pair[0].dialects);
        }
        let factor = growth_factor();
        assert!((factor - 2.1).abs() < 0.05, "growth factor {factor}");
    }

    #[test]
    fn final_snapshot_matches_corpus_totals() {
        let totals = crate::metadata::totals();
        let last = *snapshots().last().unwrap();
        assert_eq!(last.ops as usize, totals.ops);
        assert_eq!(last.dialects as usize, totals.dialects);
    }
}
