//! The showcase dialects of the paper's running example (Listings 1-3):
//! `cmath`, a minimal `arith`, and a `func` dialect with a native custom
//! syntax — everything needed to reproduce the `conorm` optimization of
//! Listing 1 end to end.
//!
//! These are deliberately *not* part of the 28-dialect evaluation corpus;
//! they are the dialects the examples, tests, and benchmarks drive IR
//! through.

use std::sync::Arc;

use irdl_ir::diag::Result;
use irdl_ir::parse::OpParser;
use irdl_ir::print::Printer;
use irdl_ir::types::TypeData;
use irdl_ir::{Context, OperationState, OpRef, OpSyntax};

/// Listing 3: the self-contained IRDL specification of `cmath`, plus the
/// small `arith` and `func` companions used by Listing 1.
pub const SHOWCASE_SPEC: &str = r#"
Dialect cmath {
  Summary "Complex arithmetic (the paper's running example)"
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  Operation mul {
    ConstraintVar (!T: !complex<!FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }

  Operation create_constant {
    Results (res: !complex<!f32>)
    Attributes (re: #f32_attr, im: #f32_attr)
    Summary "Create a constant complex number"
  }

  Operation log {
    Operands (c: !complex<!f32>, base: Optional<!f32>)
    Results (res: !complex<!f32>)
    Summary "Logarithm with an optional base"
  }
}

Dialect arith {
  Summary "Minimal arithmetic companion dialect"
  Operation mulf {
    ConstraintVar (!T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T"
    Summary "Floating-point multiplication"
  }
  Operation addf {
    ConstraintVar (!T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T"
    Summary "Floating-point addition"
  }
  Operation constant {
    Results (res: !AnyFloat)
    Attributes (value: float_attr)
    Summary "A floating-point constant"
  }
}

Dialect func {
  Summary "Functions, calls, and returns"
  Operation func_op {
    Attributes (sym_name: string_attr, function_type: type_attr)
    Region body { }
    Summary "A function definition"
  }
  Operation return_op {
    Operands (operands: Variadic<!AnyType>)
    Successors ()
    Summary "Return from the enclosing function"
  }
  Operation call {
    Operands (operands: Variadic<!AnyType>)
    Results (results: Variadic<!AnyType>)
    Attributes (callee: symbol_attr)
    Summary "Call a function by symbol"
  }
}
"#;

/// The declarative rewrite of Listing 1: `norm(p) * norm(q)` → `norm(p*q)`.
pub const CONORM_PATTERN: &str = r#"
Pattern conorm {
  Match {
    %n1 = cmath.norm(%p)
    %n2 = cmath.norm(%q)
    %r = arith.mulf(%n1, %n2)
  }
  Rewrite {
    %m = cmath.mul(%p, %q) : typeof(%p)
    %r2 = cmath.norm(%m) : typeof(%r)
    Replace %r with %r2
  }
}
"#;

/// Registers the showcase dialects (`cmath`, `arith`, `func`) and attaches
/// the native custom syntax to `func.func_op` — the IRDL-Rust pathway for
/// syntaxes beyond the declarative format language (paper §5).
///
/// # Errors
///
/// Propagates compile diagnostics (none are expected).
pub fn register_showcase(ctx: &mut Context) -> Result<()> {
    irdl::register_dialects(ctx, SHOWCASE_SPEC)?;
    let func = ctx.symbol("func");
    let func_op = ctx.symbol("func_op");
    let dialect = ctx
        .registry_mut()
        .dialect_mut(func)
        .expect("func dialect registered above");
    dialect.set_op_syntax(func_op, Arc::new(FuncSyntax));
    Ok(())
}

/// Native syntax for `func.func_op`:
///
/// ```text
/// func.func_op @conorm : (!cmath.complex<f32>, !cmath.complex<f32>) -> f32 {
/// ^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
///   ...
/// }
/// ```
///
/// The signature lists types only; the entry-block header binds the
/// argument names, exactly as the generic region syntax does.
struct FuncSyntax;

impl OpSyntax for FuncSyntax {
    fn print(&self, ctx: &Context, op: OpRef, p: &mut Printer<'_>) {
        p.token(" @");
        if let Some(name) = op.attr(ctx, "sym_name").and_then(|a| a.as_str(ctx)) {
            p.token(name);
        }
        p.token(" : ");
        let fty = op.attr(ctx, "function_type").and_then(|a| a.as_type(ctx));
        match fty {
            Some(ty) => p.print_type(ctx, ty),
            None => p.token("() -> ()"),
        }
        p.token(" ");
        let region = op.region(ctx, 0);
        p.print_region(ctx, region);
    }

    fn parse(&self, p: &mut OpParser<'_, '_, '_>) -> Result<OperationState> {
        let name = p.op_name();
        let sym = p.parse_symbol_name()?;
        p.expect(&irdl_ir::lexer::Token::Colon)?;
        let fty = p.parse_type()?;
        if !matches!(p.ctx_ref().type_data(fty), TypeData::Function { .. }) {
            return Err(p.error("func signature must be a function type"));
        }
        let region = p.parse_region()?;
        let ctx = p.ctx();
        let sym_name_key = ctx.symbol("sym_name");
        let type_key = ctx.symbol("function_type");
        let sym_attr = ctx.string_attr(sym);
        let fty_attr = ctx.type_attr(fty);
        Ok(OperationState::new(name)
            .add_attribute(sym_name_key, sym_attr)
            .add_attribute(type_key, fty_attr)
            .add_regions([region]))
    }
}

/// Builds the `conorm` function of Listing 1a programmatically:
///
/// ```text
/// func @conorm(%p, %q : !cmath.complex<f32>) -> f32 {
///   %norm_p = cmath.norm %p ; %norm_q = cmath.norm %q
///   %pq = arith.mulf %norm_p, %norm_q
///   func.return %pq
/// }
/// ```
///
/// Returns the module containing the function.
///
/// # Errors
///
/// Propagates type-building diagnostics (none are expected).
pub fn build_conorm_module(ctx: &mut Context) -> Result<OpRef> {
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex = ctx.parametric_type("cmath", "complex", [f32a])?;

    let module = ctx.create_module();
    let block = ctx.module_block(module);

    let (region, entry) = ctx.create_region_with_entry([complex, complex]);
    let p = entry.arg(ctx, 0);
    let q = entry.arg(ctx, 1);

    let norm = ctx.op_name("cmath", "norm");
    let norm_p = ctx.create_op(OperationState::new(norm).add_operands([p]).add_result_types([f32]));
    ctx.append_op(entry, norm_p);
    let norm_q = ctx.create_op(OperationState::new(norm).add_operands([q]).add_result_types([f32]));
    ctx.append_op(entry, norm_q);
    let vp = norm_p.result(ctx, 0);
    let vq = norm_q.result(ctx, 0);
    let mulf = ctx.op_name("arith", "mulf");
    let pq = ctx.create_op(OperationState::new(mulf).add_operands([vp, vq]).add_result_types([f32]));
    ctx.append_op(entry, pq);
    let vpq = pq.result(ctx, 0);
    let ret = ctx.op_name("func", "return_op");
    let ret_op = ctx.create_op(OperationState::new(ret).add_operands([vpq]));
    ctx.append_op(entry, ret_op);

    let fty = ctx.function_type([complex, complex], [f32]);
    let func = ctx.op_name("func", "func_op");
    let sym_key = ctx.symbol("sym_name");
    let type_key = ctx.symbol("function_type");
    let sym = ctx.string_attr("conorm");
    let ftya = ctx.type_attr(fty);
    let func_op = ctx.create_op(
        OperationState::new(func)
            .add_attribute(sym_key, sym)
            .add_attribute(type_key, ftya)
            .add_regions([region]),
    );
    ctx.append_op(block, func_op);
    Ok(module)
}

/// Like [`build_conorm_module`] but with `n` independent conorm bodies in
/// one function — a scalable workload for the rewrite benchmarks.
///
/// # Errors
///
/// Propagates type-building diagnostics (none are expected).
pub fn build_conorm_workload(ctx: &mut Context, n: usize) -> Result<OpRef> {
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex = ctx.parametric_type("cmath", "complex", [f32a])?;
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let (region, entry) = ctx.create_region_with_entry([complex, complex]);
    let p = entry.arg(ctx, 0);
    let q = entry.arg(ctx, 1);
    let norm = ctx.op_name("cmath", "norm");
    let mulf = ctx.op_name("arith", "mulf");
    let addf = ctx.op_name("arith", "addf");
    let mut acc: Option<irdl_ir::Value> = None;
    for _ in 0..n {
        let np = ctx.create_op(OperationState::new(norm).add_operands([p]).add_result_types([f32]));
        ctx.append_op(entry, np);
        let nq = ctx.create_op(OperationState::new(norm).add_operands([q]).add_result_types([f32]));
        ctx.append_op(entry, nq);
        let vp = np.result(ctx, 0);
        let vq = nq.result(ctx, 0);
        let m = ctx.create_op(OperationState::new(mulf).add_operands([vp, vq]).add_result_types([f32]));
        ctx.append_op(entry, m);
        let vm = m.result(ctx, 0);
        acc = Some(match acc {
            None => vm,
            Some(prev) => {
                let a = ctx.create_op(
                    OperationState::new(addf).add_operands([prev, vm]).add_result_types([f32]),
                );
                ctx.append_op(entry, a);
                a.result(ctx, 0)
            }
        });
    }
    let ret = ctx.op_name("func", "return_op");
    let ret_op = ctx.create_op(OperationState::new(ret).add_operands(acc));
    ctx.append_op(entry, ret_op);
    let fty = ctx.function_type([complex, complex], [f32]);
    let func = ctx.op_name("func", "func_op");
    let sym_key = ctx.symbol("sym_name");
    let type_key = ctx.symbol("function_type");
    let sym = ctx.string_attr("workload");
    let ftya = ctx.type_attr(fty);
    let func_op = ctx.create_op(
        OperationState::new(func)
            .add_attribute(sym_key, sym)
            .add_attribute(type_key, ftya)
            .add_regions([region]),
    );
    ctx.append_op(block, func_op);
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::parse::parse_module;
    use irdl_ir::print::op_to_string;
    use irdl_ir::verify::verify_op;

    #[test]
    fn showcase_registers_and_conorm_verifies() {
        let mut ctx = Context::new();
        register_showcase(&mut ctx).unwrap();
        let module = build_conorm_module(&mut ctx).unwrap();
        verify_op(&ctx, module).expect("conorm verifies");
    }

    #[test]
    fn func_native_syntax_roundtrips() {
        let mut ctx = Context::new();
        register_showcase(&mut ctx).unwrap();
        let module = build_conorm_module(&mut ctx).unwrap();
        let text = op_to_string(&ctx, module);
        assert!(text.contains("func.func_op @conorm : ("), "{text}");
        // Parse the custom syntax back and print again: fixpoint.
        let mut ctx2 = Context::new();
        register_showcase(&mut ctx2).unwrap();
        let module2 = parse_module(&mut ctx2, &text).expect("custom func syntax parses");
        verify_op(&ctx2, module2).unwrap();
        assert_eq!(op_to_string(&ctx2, module2), text);
    }

    #[test]
    fn conorm_pattern_rewrites_workload() {
        let mut ctx = Context::new();
        register_showcase(&mut ctx).unwrap();
        let module = build_conorm_workload(&mut ctx, 10).unwrap();
        verify_op(&ctx, module).unwrap();
        let patterns = irdl_rewrite::parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
        let stats = irdl_rewrite::rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 10);
        verify_op(&ctx, module).expect("rewritten workload verifies");
        let text = op_to_string(&ctx, module);
        assert!(!text.contains("arith.mulf"), "{text}");
    }
}
