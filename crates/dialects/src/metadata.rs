//! Per-dialect metadata for the 28-dialect evaluation corpus.
//!
//! The paper's evaluation (§6) analyzes the 28 dialects of MLIR commit
//! `666accf2` — 942 operations, 62 types, 30 attributes. We cannot ship
//! MLIR; instead this table records, for each dialect, the feature counts
//! the paper reports (Table 1, Figures 4-12), and
//! [`crate::generator`] expands each row into *valid IRDL source text* that
//! the real pipeline lexes, parses, resolves, and compiles. The analysis
//! crate then recomputes every statistic from the compiled registry, so the
//! reproduced figures have the paper's shape by construction of the corpus
//! while exercising the full system at the paper's scale.
//!
//! All histograms in a row are exact integers; [`DialectMeta::validate`]
//! checks internal consistency and the unit tests check the corpus-wide
//! marginals against the paper's headline numbers.

/// Counts of native-constraint categories used by a dialect's operations
/// (paper Figure 12): `[integer inequality, stride check, struct opacity]`.
pub type NativeLocalCounts = [usize; 3];

/// Metadata describing one dialect of the corpus.
#[derive(Debug, Clone)]
pub struct DialectMeta {
    /// Dialect name (as in MLIR).
    pub name: &'static str,
    /// One-line description (paper Table 1).
    pub description: &'static str,
    /// Number of operations (Figure 4; sums to 942 across the corpus).
    pub num_ops: usize,
    /// Ops with 0 / 1 / 2 / 3+ operand definitions (Figure 5a).
    pub operand_hist: [usize; 4],
    /// Ops with at least one variadic/optional operand (Figure 5b).
    pub variadic_operand_ops: usize,
    /// Ops with 0 / 1 / 2 result definitions (Figure 6a).
    pub result_hist: [usize; 3],
    /// Ops with a variadic result (Figure 6b; never more than one).
    pub variadic_result_ops: usize,
    /// Ops with 0 / 1 / 2+ attribute definitions (Figure 7a).
    pub attr_hist: [usize; 3],
    /// Ops with 0 / 1 / 2 region definitions (Figure 7b).
    pub region_hist: [usize; 3],
    /// Ops declaring successors (terminators).
    pub successor_ops: usize,
    /// Ops with a native (IRDL-C++) global verifier (Figure 11b).
    pub native_verifier_ops: usize,
    /// Ops using each native local-constraint category (Figures 11a, 12).
    pub native_local: NativeLocalCounts,
    /// Number of type definitions (62 corpus-wide).
    pub num_types: usize,
    /// Number of attribute definitions (30 corpus-wide).
    pub num_attrs: usize,
    /// Types whose parameters need IRDL-C++ (§6.3: llvm/builtin/sparse_tensor).
    pub types_native_param: usize,
    /// Attributes whose parameters need IRDL-C++.
    pub attrs_native_param: usize,
    /// Types with a native verifier (Figure 9b).
    pub types_native_verifier: usize,
    /// Attributes with a native verifier (Figure 10b).
    pub attrs_native_verifier: usize,
    /// Whether the corpus ships a hand-written IRDL file for this dialect
    /// (instead of generating one from this row).
    pub hand_written: bool,
}

impl DialectMeta {
    /// Checks internal consistency of the row.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency.
    pub fn validate(&self) {
        let n = self.num_ops;
        assert_eq!(
            self.operand_hist.iter().sum::<usize>(),
            n,
            "{}: operand histogram does not sum to {n}",
            self.name
        );
        assert_eq!(
            self.result_hist.iter().sum::<usize>(),
            n,
            "{}: result histogram does not sum to {n}",
            self.name
        );
        assert_eq!(
            self.attr_hist.iter().sum::<usize>(),
            n,
            "{}: attribute histogram does not sum to {n}",
            self.name
        );
        assert_eq!(
            self.region_hist.iter().sum::<usize>(),
            n,
            "{}: region histogram does not sum to {n}",
            self.name
        );
        let with_operands = n - self.operand_hist[0];
        assert!(
            self.variadic_operand_ops <= with_operands,
            "{}: more variadic-operand ops than ops with operands",
            self.name
        );
        let single_result = self.result_hist[1];
        assert!(
            self.variadic_result_ops <= single_result,
            "{}: more variadic-result ops than single-result ops",
            self.name
        );
        assert!(self.successor_ops <= n, "{}: successor ops exceed op count", self.name);
        assert!(
            self.native_verifier_ops <= n,
            "{}: native-verifier ops exceed op count",
            self.name
        );
        let native_local: usize = self.native_local.iter().sum();
        assert!(
            native_local <= self.attr_hist[1] + self.attr_hist[2],
            "{}: native local constraints exceed ops with attributes",
            self.name
        );
        assert!(
            self.types_native_param <= self.num_types,
            "{}: native-param types exceed type count",
            self.name
        );
        assert!(
            self.types_native_verifier <= self.num_types,
            "{}: native-verifier types exceed type count",
            self.name
        );
        assert!(
            self.attrs_native_param <= self.num_attrs,
            "{}: native-param attrs exceed attr count",
            self.name
        );
        assert!(
            self.attrs_native_verifier <= self.num_attrs,
            "{}: native-verifier attrs exceed attr count",
            self.name
        );
    }

    /// Ops with at least one region.
    pub fn region_ops(&self) -> usize {
        self.region_hist[1] + self.region_hist[2]
    }

    /// Ops with at least one attribute.
    pub fn attr_ops(&self) -> usize {
        self.attr_hist[1] + self.attr_hist[2]
    }
}

/// The corpus: MLIR's 28 dialects (paper Table 1), ordered alphabetically
/// as in the paper's table.
pub fn dialects() -> Vec<DialectMeta> {
    // Helper to keep rows compact.
    #[allow(clippy::too_many_arguments)]
    fn row(
        name: &'static str,
        description: &'static str,
        num_ops: usize,
        operand_hist: [usize; 4],
        variadic_operand_ops: usize,
        result_hist: [usize; 3],
        variadic_result_ops: usize,
        attr_hist: [usize; 3],
        region_hist: [usize; 3],
        successor_ops: usize,
        native_verifier_ops: usize,
        native_local: NativeLocalCounts,
        types: (usize, usize, usize),
        attrs: (usize, usize, usize),
        hand_written: bool,
    ) -> DialectMeta {
        DialectMeta {
            name,
            description,
            num_ops,
            operand_hist,
            variadic_operand_ops,
            result_hist,
            variadic_result_ops,
            attr_hist,
            region_hist,
            successor_ops,
            native_verifier_ops,
            native_local,
            num_types: types.0,
            types_native_param: types.1,
            types_native_verifier: types.2,
            num_attrs: attrs.0,
            attrs_native_param: attrs.1,
            attrs_native_verifier: attrs.2,
            hand_written,
        }
    }

    vec![
        // name, desc, ops, operands[0,1,2,3+], var-op, results[0,1,2], var-res,
        // attrs[0,1,2+], regions[0,1,2], succ, nat-verif, nat-local[ineq,stride,opaque],
        // (types, native-param, native-verif), (attrs, ...), hand-written
        row(
            "affine",
            "Affine loops and memory operations",
            13,
            [1, 4, 4, 4], 5,
            [3, 10, 0], 2,
            [5, 5, 3],
            [9, 3, 1], 1,
            8, [2, 2, 0],
            (0, 0, 0), (1, 1, 1),
            false,
        ),
        row(
            "amx",
            "Intel's advanced matrix instruction set",
            13,
            [0, 1, 3, 9], 0,
            [1, 12, 0], 0,
            [8, 4, 1],
            [13, 0, 0], 0,
            5, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "arith",
            "Arithmetic operations on integers and floats",
            34,
            [2, 8, 22, 2], 0,
            [1, 33, 0], 0,
            [26, 6, 2],
            [34, 0, 0], 0,
            9, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "arm_sve",
            "ARM's scalable vector instruction set",
            40,
            [0, 2, 16, 22], 0,
            [2, 38, 0], 0,
            [34, 4, 2],
            [40, 0, 0], 0,
            6, [0, 0, 0],
            (1, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "arm_neon",
            "ARM's SIMD architecture extension",
            3,
            [0, 0, 1, 2], 0,
            [0, 3, 0], 0,
            [3, 0, 0],
            [3, 0, 0], 0,
            1, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            true,
        ),
        row(
            "async",
            "Asynchronous execution",
            19,
            [3, 9, 5, 2], 7,
            [4, 12, 3], 2,
            [14, 4, 1],
            [17, 2, 0], 1,
            4, [2, 0, 0],
            (4, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "builtin",
            "MLIR's builtin intermediate representation",
            3,
            [2, 1, 0, 0], 1,
            [2, 1, 0], 1,
            [2, 0, 1],
            [1, 2, 0], 0,
            2, [0, 0, 0],
            (12, 1, 2), (11, 3, 2),
            true,
        ),
        row(
            "complex",
            "Complex arithmetic",
            15,
            [1, 8, 6, 0], 0,
            [0, 15, 0], 0,
            [15, 0, 0],
            [15, 0, 0], 0,
            2, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            true,
        ),
        row(
            "emitc",
            "Printable C code",
            5,
            [1, 2, 1, 1], 2,
            [2, 3, 0], 1,
            [1, 2, 2],
            [5, 0, 0], 0,
            2, [0, 0, 0],
            (2, 0, 0), (2, 0, 0),
            false,
        ),
        row(
            "gpu",
            "GPU abstraction",
            24,
            [4, 8, 6, 6], 10,
            [6, 14, 4], 0,
            [15, 6, 3],
            [20, 4, 0], 2,
            8, [0, 0, 0],
            (3, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "linalg",
            "High-level linear algebra operations",
            9,
            [1, 2, 3, 3], 7,
            [4, 5, 0], 2,
            [4, 3, 2],
            [6, 3, 0], 1,
            6, [2, 0, 0],
            (1, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "llvm",
            "LLVM's intermediate representation in MLIR",
            161,
            [20, 70, 57, 14], 33,
            [23, 138, 0], 6,
            [128, 17, 16],
            [156, 5, 0], 6,
            42, [1, 0, 5],
            (14, 1, 3), (4, 2, 1),
            false,
        ),
        row(
            "math",
            "Scalar arithmetic beyond simple operations",
            17,
            [0, 12, 5, 0], 0,
            [0, 17, 0], 0,
            [17, 0, 0],
            [17, 0, 0], 0,
            2, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "memref",
            "Multi-dimensional memory references",
            22,
            [2, 9, 7, 4], 8,
            [5, 17, 0], 1,
            [14, 5, 3],
            [21, 1, 0], 0,
            10, [2, 4, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "nvvm",
            "LLVM's IR for GPU compute kernels",
            20,
            [3, 8, 6, 3], 2,
            [4, 16, 0], 0,
            [20, 0, 0],
            [20, 0, 0], 0,
            6, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "pdl",
            "Rewrite pattern description language",
            14,
            [2, 5, 4, 3], 6,
            [5, 9, 0], 2,
            [8, 4, 2],
            [12, 2, 0], 0,
            5, [2, 0, 0],
            (4, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "pdl_interp",
            "The IR for a PDL interpreter",
            28,
            [3, 12, 8, 5], 9,
            [10, 18, 0], 1,
            [18, 7, 3],
            [28, 0, 0], 12,
            8, [3, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "quant",
            "Quantization",
            11,
            [1, 7, 2, 1], 3,
            [2, 9, 0], 1,
            [7, 3, 1],
            [10, 1, 0], 0,
            3, [0, 0, 0],
            (4, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "rocdl",
            "AMD's IR for GPU compute kernels",
            35,
            [7, 14, 10, 4], 2,
            [5, 30, 0], 0,
            [35, 0, 0],
            [35, 0, 0], 0,
            4, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "scf",
            "Structured control flow, e.g. 'for' and 'if'",
            10,
            [2, 3, 2, 3], 4,
            [3, 7, 0], 6,
            [10, 0, 0],
            [3, 5, 2], 2,
            6, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            true,
        ),
        row(
            "shape",
            "Shape inference",
            38,
            [5, 19, 12, 2], 8,
            [4, 31, 3], 2,
            [29, 7, 2],
            [36, 2, 0], 2,
            8, [0, 0, 0],
            (3, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "sparse_tensor",
            "Sparse tensor computations",
            7,
            [1, 3, 2, 1], 1,
            [1, 6, 0], 0,
            [3, 2, 2],
            [7, 0, 0], 0,
            4, [2, 1, 0],
            (1, 0, 1), (2, 1, 0),
            false,
        ),
        row(
            "spv",
            "Graphics shaders and compute kernels",
            227,
            [32, 105, 70, 20], 25,
            [40, 187, 0], 0,
            [175, 30, 22],
            [221, 6, 0], 8,
            75, [0, 0, 0],
            (13, 0, 4), (8, 0, 2),
            false,
        ),
        row(
            "std",
            "Non domain-specific operations",
            46,
            [6, 18, 15, 7], 12,
            [13, 33, 0], 3,
            [34, 9, 3],
            [45, 1, 0], 5,
            10, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "tensor",
            "Dense tensors computations",
            12,
            [1, 5, 4, 2], 4,
            [1, 11, 0], 0,
            [9, 2, 1],
            [11, 1, 0], 0,
            4, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "tosa",
            "Tensor operator set architecture",
            70,
            [7, 34, 24, 5], 10,
            [6, 64, 0], 2,
            [30, 20, 20],
            [68, 2, 0], 0,
            24, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
        row(
            "vector",
            "A generic vector abstraction",
            32,
            [4, 12, 11, 5], 6,
            [4, 28, 0], 0,
            [20, 8, 4],
            [32, 0, 0], 0,
            12, [0, 0, 0],
            (0, 0, 0), (2, 0, 0),
            false,
        ),
        row(
            "x86vector",
            "The Intel x86 vector instruction set",
            14,
            [0, 2, 4, 8], 1,
            [2, 10, 2], 0,
            [14, 0, 0],
            [14, 0, 0], 0,
            3, [0, 0, 0],
            (0, 0, 0), (0, 0, 0),
            false,
        ),
    ]
}

/// Corpus-wide totals, used by tests and the analysis reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusTotals {
    /// Total dialects.
    pub dialects: usize,
    /// Total operations.
    pub ops: usize,
    /// Total types.
    pub types: usize,
    /// Total attributes.
    pub attrs: usize,
}

/// Sums the metadata table.
pub fn totals() -> CorpusTotals {
    let ds = dialects();
    CorpusTotals {
        dialects: ds.len(),
        ops: ds.iter().map(|d| d.num_ops).sum(),
        types: ds.iter().map(|d| d.num_types).sum(),
        attrs: ds.iter().map(|d| d.num_attrs).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(part: usize, whole: usize) -> f64 {
        100.0 * part as f64 / whole as f64
    }

    #[test]
    fn rows_are_internally_consistent() {
        for d in dialects() {
            d.validate();
        }
    }

    #[test]
    fn corpus_totals_match_paper() {
        let t = totals();
        assert_eq!(t.dialects, 28, "paper: 28 dialects");
        assert_eq!(t.ops, 942, "paper: 942 operations");
        assert_eq!(t.types, 62, "paper: 62 types");
        assert_eq!(t.attrs, 30, "paper: 30 attributes");
    }

    #[test]
    fn operand_marginals_match_paper() {
        // Paper §6.2: 12% zero, 41% one, 32% two, 16% three+.
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let mut hist = [0usize; 4];
        for d in &ds {
            for (h, v) in hist.iter_mut().zip(d.operand_hist) {
                *h += v;
            }
        }
        assert!((pct(hist[0], total) - 12.0).abs() < 3.0, "zero-operand: {hist:?}");
        assert!((pct(hist[1], total) - 41.0).abs() < 3.0, "one-operand: {hist:?}");
        assert!((pct(hist[2], total) - 32.0).abs() < 3.0, "two-operand: {hist:?}");
        assert!((pct(hist[3], total) - 16.0).abs() < 3.0, "3+-operand: {hist:?}");
    }

    #[test]
    fn variadic_operand_marginals_match_paper() {
        // Paper: 17% of ops variadic; 79% of dialects have >=1; 46% of
        // dialects have >25% of their ops variadic.
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let variadic: usize = ds.iter().map(|d| d.variadic_operand_ops).sum();
        assert!((pct(variadic, total) - 17.0).abs() < 2.5, "variadic ops: {variadic}");
        let with = ds.iter().filter(|d| d.variadic_operand_ops > 0).count();
        assert!((pct(with, ds.len()) - 79.0).abs() < 6.0, "dialects with variadic: {with}");
        let heavy = ds
            .iter()
            .filter(|d| 4 * d.variadic_operand_ops > d.num_ops)
            .count();
        assert!((pct(heavy, ds.len()) - 46.0).abs() < 8.0, "heavy dialects: {heavy}");
    }

    #[test]
    fn result_marginals_match_paper() {
        // Paper: 16% zero results, 84% one, ~1% two; 3% variadic results,
        // half the dialects have >=1 variadic result, none has 2+ variadic.
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let mut hist = [0usize; 3];
        for d in &ds {
            for (h, v) in hist.iter_mut().zip(d.result_hist) {
                *h += v;
            }
        }
        assert!((pct(hist[0], total) - 16.0).abs() < 3.0, "zero-result: {hist:?}");
        assert!((pct(hist[1], total) - 84.0).abs() < 4.0, "one-result: {hist:?}");
        assert!(pct(hist[2], total) < 4.5, "two-result: {hist:?}");
        let variadic: usize = ds.iter().map(|d| d.variadic_result_ops).sum();
        assert!((pct(variadic, total) - 3.0).abs() < 1.5, "variadic results: {variadic}");
        let with = ds.iter().filter(|d| d.variadic_result_ops > 0).count();
        assert!((pct(with, ds.len()) - 50.0).abs() < 8.0, "dialects with variadic result: {with}");
    }

    #[test]
    fn attribute_marginals_match_paper() {
        // Paper: 73% zero attributes, 16% one, 11% two+; 76% of dialects
        // define at least one op with attributes; 46% have >=25%.
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let mut hist = [0usize; 3];
        for d in &ds {
            for (h, v) in hist.iter_mut().zip(d.attr_hist) {
                *h += v;
            }
        }
        assert!((pct(hist[0], total) - 73.0).abs() < 3.0, "zero-attr: {hist:?}");
        assert!((pct(hist[1], total) - 16.0).abs() < 3.0, "one-attr: {hist:?}");
        assert!((pct(hist[2], total) - 11.0).abs() < 3.0, "two+-attr: {hist:?}");
        let with = ds.iter().filter(|d| d.attr_ops() > 0).count();
        assert!((pct(with, ds.len()) - 76.0).abs() < 8.0, "dialects with attr ops: {with}");
    }

    #[test]
    fn region_marginals_match_paper() {
        // Paper: 96% of ops define zero regions, 4% one, ~1% two; 54% of
        // dialects have at least one region op; builtin and scf have >50%.
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let zero: usize = ds.iter().map(|d| d.region_hist[0]).sum();
        assert!((pct(zero, total) - 96.0).abs() < 2.0, "zero-region: {zero}");
        let with = ds.iter().filter(|d| d.region_ops() > 0).count();
        assert!((pct(with, ds.len()) - 54.0).abs() < 8.0, "dialects with regions: {with}");
        for name in ["builtin", "scf"] {
            let d = ds.iter().find(|d| d.name == name).unwrap();
            assert!(
                2 * d.region_ops() > d.num_ops,
                "{name} should have >50% region ops"
            );
        }
    }

    #[test]
    fn verifier_marginals_match_paper() {
        // Paper: 30% of ops require a C++ (native) global verifier; 97% of
        // ops express local constraints in IRDL (3% need IRDL-C++).
        let ds = dialects();
        let total: usize = ds.iter().map(|d| d.num_ops).sum();
        let native: usize = ds.iter().map(|d| d.native_verifier_ops).sum();
        assert!((pct(native, total) - 30.0).abs() < 3.0, "native verifiers: {native}");
        let local: usize =
            ds.iter().map(|d| d.native_local.iter().sum::<usize>()).sum();
        assert!((pct(local, total) - 3.0).abs() < 1.5, "native local: {local}");
        // Figure 11a: 20 of 28 dialects express all local constraints in IRDL.
        let pure = ds
            .iter()
            .filter(|d| d.native_local.iter().sum::<usize>() == 0)
            .count();
        assert_eq!(pure, 20, "dialects with pure-IRDL local constraints");
    }

    #[test]
    fn type_attr_marginals_match_paper() {
        // Paper §6.3: 97% of types / 77% of attributes use only IRDL
        // parameters; 16% of types / 20% of attributes have a native
        // verifier; 14 of 28 dialects define a type or attribute; only
        // llvm, builtin, sparse_tensor need IRDL-C++ parameters.
        let ds = dialects();
        let types: usize = ds.iter().map(|d| d.num_types).sum();
        let attrs: usize = ds.iter().map(|d| d.num_attrs).sum();
        let t_native: usize = ds.iter().map(|d| d.types_native_param).sum();
        let a_native: usize = ds.iter().map(|d| d.attrs_native_param).sum();
        assert!((pct(types - t_native, types) - 97.0).abs() < 2.0, "{t_native}/{types}");
        assert!((pct(attrs - a_native, attrs) - 77.0).abs() < 5.0, "{a_native}/{attrs}");
        let t_verif: usize = ds.iter().map(|d| d.types_native_verifier).sum();
        let a_verif: usize = ds.iter().map(|d| d.attrs_native_verifier).sum();
        assert!((pct(t_verif, types) - 16.0).abs() < 5.0, "type verifiers: {t_verif}");
        assert!((pct(a_verif, attrs) - 20.0).abs() < 7.0, "attr verifiers: {a_verif}");
        let defining = ds.iter().filter(|d| d.num_types + d.num_attrs > 0).count();
        assert_eq!(defining, 14, "dialects defining a type or attribute");
        for d in &ds {
            if d.types_native_param + d.attrs_native_param > 0 {
                assert!(
                    ["llvm", "builtin", "sparse_tensor", "affine"].contains(&d.name),
                    "{} should not need native parameters",
                    d.name
                );
            }
        }
    }

    #[test]
    fn figure12_totals() {
        // Figure 12: integer inequalities are the largest category (~0-20
        // scale), then stride checks, then struct opacity.
        let ds = dialects();
        let mut by_category = [0usize; 3];
        for d in &ds {
            for (t, v) in by_category.iter_mut().zip(d.native_local) {
                *t += v;
            }
        }
        let [ineq, stride, opaque] = by_category;
        assert!(ineq > stride && stride > opaque, "{by_category:?}");
        assert!(ineq <= 20, "paper's Figure 12 axis tops out at 20: {ineq}");
    }

    #[test]
    fn largest_dialects_match_figure4() {
        // Figure 4: smallest are builtin and arm_neon (3 ops); llvm and
        // spv exceed 100.
        let ds = dialects();
        for name in ["builtin", "arm_neon"] {
            assert_eq!(ds.iter().find(|d| d.name == name).unwrap().num_ops, 3);
        }
        for name in ["llvm", "spv"] {
            assert!(ds.iter().find(|d| d.name == name).unwrap().num_ops > 100);
        }
    }

}
