//! Corpus-wide parse→print→parse fixpoint test for the zero-copy text
//! pipeline.
//!
//! For every dialect of the 28-dialect corpus this builds one module
//! containing an instance of each instantiable operation (via `genir`),
//! prints it, parses the text back, and checks:
//!
//! - printing the reparsed module reproduces the text byte-for-byte (the
//!   printer is a fixpoint of parse∘print);
//! - parsing that text again yields a structurally identical module: same
//!   op count and identical generic form (names, operands, attributes,
//!   regions all agree).
//!
//! `corpus_irgen.rs` round-trips each generated instance in isolation;
//! this test exercises whole-module parsing — shared value scopes, block
//! labels, many ops per region — which is what the span-based lexer and
//! interning parser actually optimize.

use irdl::genir::{instantiate_op, Instantiation};
use irdl_ir::parse::parse_module;
use irdl_ir::print::{op_to_string, op_to_string_generic};
use irdl_ir::Context;

#[test]
fn corpus_parse_print_parse_fixpoint() {
    let natives = irdl_dialects::corpus_natives();
    // Parsing context with the whole corpus registered once.
    let mut pctx = Context::new();
    irdl_dialects::register_corpus(&mut pctx).unwrap();
    // Generation context, compiled cumulatively: later dialects reference
    // earlier ones (e.g. `builtin.complex`).
    let mut gctx = Context::new();

    let mut dialect_count = 0usize;
    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).unwrap();
        for dialect in &file.dialects {
            dialect_count += 1;
            // One module holding every instantiable op of this dialect.
            let compiled =
                irdl::compile_dialect_collecting(&mut gctx, dialect, &natives).unwrap();
            let module = gctx.create_module();
            let block = gctx.module_block(module);
            let mut built = 0usize;
            for op in compiled {
                match instantiate_op(&mut gctx, &op, block) {
                    Instantiation::Built(_) => built += 1,
                    // CFG terminators need successor context; skipped, as in
                    // the generation stress test.
                    Instantiation::Skipped(_) => {}
                }
            }
            assert!(built > 0, "{dialect_name}: no instantiable ops");
            let text = op_to_string(&gctx, module);
            gctx.erase_op(module);

            // parse → print must reproduce the text exactly.
            let ops_before = pctx.num_ops();
            let reparsed = parse_module(&mut pctx, &text).unwrap_or_else(|e| {
                panic!("{dialect_name}: reparse failed:\n{text}\n{e}")
            });
            let ops_first = pctx.num_ops() - ops_before;
            let reprinted = op_to_string(&pctx, reparsed);
            assert_eq!(
                reprinted, text,
                "{dialect_name}: print is not a fixpoint of parse∘print"
            );

            // parse again: the module must be structurally identical.
            let ops_before = pctx.num_ops();
            let reparsed2 = parse_module(&mut pctx, &reprinted).unwrap_or_else(|e| {
                panic!("{dialect_name}: second reparse failed:\n{reprinted}\n{e}")
            });
            let ops_second = pctx.num_ops() - ops_before;
            assert_eq!(
                ops_first, ops_second,
                "{dialect_name}: reparse changed the op count"
            );
            assert_eq!(
                op_to_string_generic(&pctx, reparsed),
                op_to_string_generic(&pctx, reparsed2),
                "{dialect_name}: reparse is not structurally identical"
            );
            pctx.erase_op(reparsed);
            pctx.erase_op(reparsed2);
        }
    }
    assert_eq!(dialect_count, 28, "the corpus defines 28 dialects");
}
