//! Lowers every corpus dialect to `irdl` meta-IR, verifies that IR,
//! raises it back, and checks the recompiled registry is identical — the
//! "IRDL definitions are themselves IR" property of the upstream design,
//! exercised at the full 28-dialect scale.

use irdl::meta::{from_meta_ir, register_meta_dialect, to_meta_ir};
use irdl_ir::verify::verify_op;
use irdl_ir::Context;

#[test]
fn corpus_survives_the_meta_ir_roundtrip() {
    let natives = irdl_dialects::corpus_natives();

    // Compile the original corpus for reference.
    let mut original = Context::new();
    irdl_dialects::register_corpus(&mut original).unwrap();

    // Lower every dialect to meta-IR, verify, raise, and recompile.
    let mut meta_ctx = Context::new();
    register_meta_dialect(&mut meta_ctx).unwrap();
    let mut raised_ctx = Context::new();

    for (name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).unwrap();
        for dialect in &file.dialects {
            let module = meta_ctx.create_module();
            let block = meta_ctx.module_block(module);
            let meta_op = to_meta_ir(&mut meta_ctx, dialect, block)
                .unwrap_or_else(|e| panic!("{name}: lowering failed: {e}"));
            verify_op(&meta_ctx, module)
                .unwrap_or_else(|e| panic!("{name}: meta-IR invalid: {}", e[0]));
            let raised = from_meta_ir(&mut meta_ctx, meta_op)
                .unwrap_or_else(|e| panic!("{name}: raising failed: {e}"));
            irdl::compile_dialect(&mut raised_ctx, &raised, &natives)
                .unwrap_or_else(|e| panic!("{name}: recompile failed: {e}"));
            meta_ctx.erase_op(module);
        }
    }

    // The recompiled registry matches the original on every statistic the
    // evaluation relies on.
    for meta in irdl_dialects::dialects() {
        let stats = |ctx: &Context| {
            let sym = ctx.symbol_lookup(meta.name).unwrap();
            let d = ctx.registry().dialect(sym).unwrap();
            let mut ops: Vec<(String, irdl_ir::dialect::OpDeclStats, bool)> = d
                .ops()
                .map(|o| (ctx.symbol_str(o.name).to_string(), o.decl.clone(), o.is_terminator))
                .collect();
            ops.sort_by(|a, b| a.0.cmp(&b.0));
            (d.num_ops(), d.num_types(), d.num_attrs(), ops)
        };
        assert_eq!(stats(&original), stats(&raised_ctx), "{}", meta.name);
    }
}
