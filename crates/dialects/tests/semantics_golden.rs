//! Golden tests for the registered execution semantics.
//!
//! Every eval hook family (builtin containers, scf control flow, complex
//! arithmetic, the showcase `cmath`/`arith` ops, and the fuzzer's scalar
//! arithmetic) gets table-driven cases pinning *exact* results and trap
//! diagnostics: overflow wraps two's-complement, division by zero traps
//! with a pinned message, zero-trip loops return their inits, and a
//! diverging loop exhausts fuel instead of hanging.

use irdl_dialects::{corpus_semantics, showcase_semantics};
use irdl_interp::{run_module, EvalOptions, EvalRegistry, EvalValue, Execution, TrapKind};
use irdl_ir::parse::parse_module;
use irdl_ir::types::FloatKind;
use irdl_ir::Context;

/// Parses `text` with the corpus registered and runs it under `registry`.
fn run_corpus(text: &str, registry: &EvalRegistry, opts: EvalOptions) -> Execution {
    let mut ctx = Context::new();
    irdl_dialects::register_corpus(&mut ctx).expect("corpus registers");
    let module = parse_module(&mut ctx, text).expect("test module parses");
    run_module(&ctx, registry, module, opts)
}

/// Runs `text` under the showcase semantics (cmath/arith/func).
fn run_showcase(text: &str, opts: EvalOptions) -> Execution {
    let mut ctx = Context::new();
    irdl_dialects::showcase::register_showcase(&mut ctx).expect("showcase registers");
    let module = parse_module(&mut ctx, text).expect("test module parses");
    run_module(&ctx, &showcase_semantics(), module, opts)
}

/// The operand values of the single observed sink named `name` in an
/// execution that must not trap. (Region terminators like `scf.yield` are
/// themselves observable sinks, so executions often record more than one
/// observation; tests select the one they pinned.)
fn sink_values(run: &Execution, name: &str) -> Vec<EvalValue> {
    assert!(run.trap.is_none(), "unexpected trap: {:?}", run.trap);
    let mut hits = run.observed.iter().filter(|(n, _)| n == name);
    let hit = hits.next().unwrap_or_else(|| panic!("no `{name}` observed: {:?}", run.observed));
    assert!(hits.next().is_none(), "more than one `{name}` observed: {:?}", run.observed);
    hit.1.clone()
}

#[test]
fn fuzz_arith_golden_table() {
    // (lhs, rhs, op, expected value at i32)
    let cases: &[(i64, i64, &str, i128)] = &[
        (7, 5, "addi", 12),
        (2147483647, 1, "addi", -2147483648), // wraps at the i32 boundary
        (5, 7, "subi", -2),
        (-2147483648, 1, "subi", 2147483647),
        (100000, 100000, "muli", 1410065408), // 10^10 mod 2^32, signed
        (-7, 2, "divi", -3),                  // truncating division
    ];
    let registry = corpus_semantics();
    for &(lhs, rhs, op, expected) in cases {
        let text = format!(
            r#""builtin.module"() ({{
  %a = "fuzz.const"() {{value = {lhs} : i32}} : () -> i32
  %b = "fuzz.const"() {{value = {rhs} : i32}} : () -> i32
  %r = "fuzz.{op}"(%a, %b) : (i32, i32) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}}) : () -> ()"#
        );
        let run = run_corpus(&text, &registry, EvalOptions::default());
        let values = sink_values(&run, "fuzz.sink");
        assert_eq!(
            values[0],
            EvalValue::int(expected, 32),
            "{lhs} {op} {rhs} must give {expected}"
        );
    }
}

#[test]
fn division_by_zero_traps_with_pinned_diagnostic() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 9 : i32} : () -> i32
  %z = "fuzz.const"() {value = 0 : i32} : () -> i32
  %r = "fuzz.divi"(%a, %z) : (i32, i32) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &corpus_semantics(), EvalOptions::default());
    let trap = run.trap.expect("division by zero must trap");
    assert_eq!(trap.kind, TrapKind::DivByZero);
    assert_eq!(trap.to_string(), "trap [div-by-zero] at `fuzz.divi`: divisor is zero");
    // The trap aborts before the sink executes.
    assert!(run.observed.is_empty());
}

#[test]
fn for_loop_golden_zero_trip_counted_and_fuel_capped() {
    let loop_text = |lb: i64, ub: i64| {
        format!(
            r#""builtin.module"() ({{
  %lb = "fuzz.const"() {{value = {lb} : index}} : () -> index
  %ub = "fuzz.const"() {{value = {ub} : index}} : () -> index
  %st = "fuzz.const"() {{value = 1 : index}} : () -> index
  %init = "fuzz.const"() {{value = 42 : index}} : () -> index
  %r = "scf.for_op"(%lb, %ub, %st, %init) ({{
  ^bb0(%iv: index):
    "scf.yield"(%iv) : (index) -> ()
  }}) : (index, index, index, index) -> index
  "fuzz.sink"(%r) : (index) -> ()
}}) : () -> ()"#
        )
    };
    let registry = corpus_semantics();

    // Zero-trip (lb == ub): the loop-carried init flows through untouched.
    let run = run_corpus(&loop_text(5, 5), &registry, EvalOptions::default());
    assert_eq!(sink_values(&run, "fuzz.sink")[0], EvalValue::int(42, 64));

    // Three iterations: the final yield sees the last induction value.
    let run = run_corpus(&loop_text(0, 3), &registry, EvalOptions::default());
    assert_eq!(sink_values(&run, "fuzz.sink")[0], EvalValue::int(2, 64));

    // A long loop under a tiny fuel budget traps instead of spinning.
    let run = run_corpus(
        &loop_text(0, 1_000_000),
        &registry,
        EvalOptions { fuel: 8, ..EvalOptions::default() },
    );
    let trap = run.trap.expect("fuel must run out");
    assert_eq!(trap.kind, TrapKind::FuelExhausted);
    assert_eq!(trap.op, "scf.for_op");
    assert_eq!(trap.detail, "control-transfer budget of 8 exhausted");
}

#[test]
fn for_loop_with_nonpositive_step_is_malformed() {
    let text = r#""builtin.module"() ({
  %lb = "fuzz.const"() {value = 0 : index} : () -> index
  %ub = "fuzz.const"() {value = 4 : index} : () -> index
  %st = "fuzz.const"() {value = 0 : index} : () -> index
  %r = "scf.for_op"(%lb, %ub, %st) ({
  ^bb0(%iv: index):
    "scf.yield"(%iv) : (index) -> ()
  }) : (index, index, index) -> index
  "fuzz.sink"(%r) : (index) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &corpus_semantics(), EvalOptions::default());
    let trap = run.trap.expect("zero step over a non-empty range must trap");
    assert_eq!(trap.kind, TrapKind::MalformedOp);
    assert_eq!(trap.detail, "non-positive step 0 with lower bound 0 < upper bound 4");
}

#[test]
fn if_op_selects_then_or_else() {
    let branch_text = |cond: i64| {
        format!(
            r#""builtin.module"() ({{
  %c = "fuzz.const"() {{value = {cond} : i1}} : () -> i1
  %r = "scf.if_op"(%c) ({{
    %t = "fuzz.const"() {{value = 7 : i32}} : () -> i32
    "scf.yield"(%t) : (i32) -> ()
  }}, {{
    %e = "fuzz.const"() {{value = 9 : i32}} : () -> i32
    "scf.yield"(%e) : (i32) -> ()
  }}) : (i1) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}}) : () -> ()"#
        )
    };
    let registry = corpus_semantics();
    let then_run = run_corpus(&branch_text(1), &registry, EvalOptions::default());
    assert_eq!(sink_values(&then_run, "fuzz.sink")[0], EvalValue::int(7, 32));
    let else_run = run_corpus(&branch_text(0), &registry, EvalOptions::default());
    assert_eq!(sink_values(&else_run, "fuzz.sink")[0], EvalValue::int(9, 32));
}

#[test]
fn while_loop_runs_before_and_after_regions() {
    // The before-region condition is a constant false: the loop must pass
    // its condition args straight through as results, never running
    // `after` (whose yield would supply 5).
    let text = r#""builtin.module"() ({
  %init = "fuzz.const"() {value = 3 : i32} : () -> i32
  %tok = "fuzz.const"() {value = 1 : i1} : () -> i1
  %r = "scf.while_op"(%init, %tok) ({
  ^bb0(%arg: i32):
    %stop = "fuzz.const"() {value = 0 : i1} : () -> i1
    "scf.condition"(%stop, %arg) : (i1, i32) -> ()
  }, {
  ^bb0(%arg: i32):
    %n = "fuzz.const"() {value = 5 : i32} : () -> i32
    "scf.yield"(%n) : (i32) -> ()
  }) : (i32, i1) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &corpus_semantics(), EvalOptions::default());
    assert_eq!(sink_values(&run, "fuzz.sink")[0], EvalValue::int(3, 32));
}

#[test]
fn complex_arithmetic_golden() {
    let registry = corpus_semantics();
    // |3 + 4i| = 5, observed at f32.
    let text = r#""builtin.module"() ({
  %re = "fuzz.const"() {value = 3.0 : f32} : () -> f32
  %im = "fuzz.const"() {value = 4.0 : f32} : () -> f32
  %z = "complex.create"(%re, %im) : (f32, f32) -> !builtin.complex<f32>
  %n = "complex.abs"(%z) : (!builtin.complex<f32>) -> f32
  "fuzz.sink"(%n) : (f32) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &registry, EvalOptions::default());
    assert_eq!(sink_values(&run, "fuzz.sink")[0], EvalValue::float(5.0, FloatKind::F32));

    // (1 + 2i) * conj(1 + 2i) = |z|^2 = 5 (+ 0i).
    let text = r#""builtin.module"() ({
  %re = "fuzz.const"() {value = 1.0 : f32} : () -> f32
  %im = "fuzz.const"() {value = 2.0 : f32} : () -> f32
  %z = "complex.create"(%re, %im) : (f32, f32) -> !builtin.complex<f32>
  %c = "complex.conj"(%z) : (!builtin.complex<f32>) -> !builtin.complex<f32>
  %p = "complex.mul"(%z, %c) : (!builtin.complex<f32>, !builtin.complex<f32>) -> !builtin.complex<f32>
  "fuzz.sink"(%p) : (!builtin.complex<f32>) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &registry, EvalOptions::default());
    assert_eq!(sink_values(&run, "fuzz.sink")[0], EvalValue::complex(5.0, 0.0, FloatKind::F32));

    // `complex.constant` denotes zero; dividing by it traps.
    let text = r#""builtin.module"() ({
  %re = "fuzz.const"() {value = 1.0 : f32} : () -> f32
  %z = "complex.create"(%re, %re) : (f32, f32) -> !builtin.complex<f32>
  %zero = "complex.constant"() : () -> !builtin.complex<f32>
  %q = "complex.div"(%z, %zero) : (!builtin.complex<f32>, !builtin.complex<f32>) -> !builtin.complex<f32>
  "fuzz.sink"(%q) : (!builtin.complex<f32>) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &registry, EvalOptions::default());
    let trap = run.trap.expect("dividing by the zero constant must trap");
    assert_eq!(trap.kind, TrapKind::DivByZero);
    assert_eq!(
        trap.to_string(),
        "trap [div-by-zero] at `complex.div`: complex divisor is exactly zero"
    );
}

#[test]
fn unrealized_conversion_cast_forwards_operands() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 11 : i32} : () -> i32
  %b = "fuzz.const"() {value = 2.5 : f64} : () -> f64
  %c:2 = "builtin.unrealized_conversion_cast"(%a, %b) : (i32, f64) -> (i64, f64)
  "fuzz.sink"(%c#0, %c#1) : (i64, f64) -> ()
}) : () -> ()"#;
    let run = run_corpus(text, &corpus_semantics(), EvalOptions::default());
    let values = sink_values(&run, "fuzz.sink");
    // Values forward bit-for-bit; the cast does not re-encode them.
    assert_eq!(values[0], EvalValue::int(11, 32));
    assert_eq!(values[1], EvalValue::float(2.5, FloatKind::F64));
}

#[test]
fn showcase_cmath_and_arith_golden() {
    // norm(3 + 4i) * 2.5 = 12.5 at f32.
    let text = r#""builtin.module"() ({
  %z = "cmath.create_constant"() {re = 3.0 : f32, im = 4.0 : f32} : () -> !cmath.complex<f32>
  %n = "cmath.norm"(%z) : (!cmath.complex<f32>) -> f32
  %k = "arith.constant"() {value = 2.5 : f32} : () -> f32
  %r = "arith.mulf"(%n, %k) : (f32, f32) -> f32
  "func.return_op"(%r) : (f32) -> ()
}) : () -> ()"#;
    let run = run_showcase(text, EvalOptions::default());
    let values = sink_values(&run, "func.return_op");
    assert_eq!(values[0], EvalValue::float(12.5, FloatKind::F32));

    // cmath.mul matches the conorm identity: norm(p*q) == norm(p)*norm(q)
    // on exact inputs.
    let text = r#""builtin.module"() ({
  %p = "cmath.create_constant"() {re = 3.0 : f32, im = 4.0 : f32} : () -> !cmath.complex<f32>
  %q = "cmath.create_constant"() {re = 1.0 : f32, im = 0.0 : f32} : () -> !cmath.complex<f32>
  %m = "cmath.mul"(%p, %q) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
  %n = "cmath.norm"(%m) : (!cmath.complex<f32>) -> f32
  "func.return_op"(%n) : (f32) -> ()
}) : () -> ()"#;
    let run = run_showcase(text, EvalOptions::default());
    assert_eq!(sink_values(&run, "func.return_op")[0], EvalValue::float(5.0, FloatKind::F32));
}

#[test]
fn function_bodies_run_once_with_derived_inputs() {
    // The func body observes its argument: running twice with the same
    // seed gives identical digests, a different seed changes the input.
    let text = r#""builtin.module"() ({
  "builtin.func"() ({
  ^bb0(%arg: i32):
    "fuzz.sink"(%arg) : (i32) -> ()
  }) {sym_name = "f"} : () -> ()
}) : () -> ()"#;
    let registry = corpus_semantics();
    let a = run_corpus(text, &registry, EvalOptions::default());
    let b = run_corpus(text, &registry, EvalOptions::default());
    assert!(a.trap.is_none());
    assert_eq!(a.digest(), b.digest());
    let c = run_corpus(
        text,
        &registry,
        EvalOptions { input_seed: 1, ..EvalOptions::default() },
    );
    assert_ne!(a.observed, c.observed);
}

#[test]
fn strict_mode_pins_missing_semantics_diagnostic() {
    let text = r#""builtin.module"() ({
  %x = "fuzz.src"() : () -> i32
}) : () -> ()"#;
    let run = run_corpus(
        text,
        &corpus_semantics(),
        EvalOptions { strict: true, ..EvalOptions::default() },
    );
    let trap = run.trap.expect("strict mode must trap on fuzz.src");
    assert_eq!(trap.kind, TrapKind::MissingSemantics);
    assert_eq!(
        trap.to_string(),
        "trap [missing-semantics] at `fuzz.src`: no evaluator registered for this operation"
    );
}
