//! Round-trips every corpus specification through the IRDL pretty-printer:
//! parse → print → parse → print must be a fixpoint, and the reprinted
//! source must compile to the same registry statistics.

use irdl::printer::{print_source, strip_spans};
use irdl_ir::Context;

#[test]
fn corpus_specs_print_parse_fixpoint() {
    for (name, source) in irdl_dialects::corpus_sources() {
        let mut first = irdl::parse_irdl(&source)
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&source)));
        let printed = print_source(&first);
        let mut second = irdl::parse_irdl(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form fails: {}", e.render(&printed)));
        strip_spans(&mut first);
        strip_spans(&mut second);
        assert_eq!(
            print_source(&second),
            printed,
            "{name}: printing is not a fixpoint"
        );
    }
}

#[test]
fn reprinted_corpus_compiles_identically() {
    // Compile the original corpus and the pretty-printed corpus; both
    // registries must agree on every per-dialect count.
    let mut original = Context::new();
    irdl_dialects::register_corpus(&mut original).unwrap();

    let mut reprinted = Context::new();
    let natives = irdl_dialects::corpus_natives();
    for (name, source) in irdl_dialects::corpus_sources() {
        let ast = irdl::parse_irdl(&source).unwrap();
        let printed = print_source(&ast);
        irdl::register_dialects_with(&mut reprinted, &printed, &natives)
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(&printed)));
    }

    for meta in irdl_dialects::dialects() {
        let check = |ctx: &Context| {
            let sym = ctx.symbol_lookup(meta.name).unwrap();
            let d = ctx.registry().dialect(sym).unwrap();
            (d.num_ops(), d.num_types(), d.num_attrs())
        };
        assert_eq!(check(&original), check(&reprinted), "{}", meta.name);
    }
}
