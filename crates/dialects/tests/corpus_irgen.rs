//! Corpus-wide generation stress test: instantiate every operation of the
//! 28-dialect corpus from its compiled constraints and check that the
//! synthesized verifier accepts every generated instance.
//!
//! This drives the constraint *evaluator* across all 942 operation
//! definitions — every constraint the corpus uses is exercised both as a
//! generator (sampling a witness) and as a checker (verifying the witness).

use irdl::genir::{instantiate_op, Instantiation};
use irdl_ir::verify::verify_op_structural;
use irdl_ir::Context;

#[test]
fn every_corpus_op_instantiates_and_verifies() {
    let mut ctx = Context::new();
    let natives = irdl_dialects::corpus_natives();
    let mut built = 0usize;
    let mut skipped = Vec::new();
    let mut total = 0usize;
    // Secondary context for textual round-trips, with the whole corpus
    // registered once.
    let mut ctx2 = Context::new();
    irdl_dialects::register_corpus(&mut ctx2).unwrap();

    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).unwrap();
        for dialect in &file.dialects {
            let compiled =
                irdl::compile_dialect_collecting(&mut ctx, dialect, &natives).unwrap();
            for op in compiled {
                total += 1;
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(built_op) => {
                        built += 1;
                        // The generated instance must satisfy the verifier
                        // synthesized from the same definition.
                        let info = ctx.op_info(built_op).unwrap_or_else(|| {
                            panic!(
                                "{dialect_name}: {} not registered",
                                built_op.name(&ctx).display(&ctx)
                            )
                        });
                        let verifier = info.verifier.clone().expect("compiled verifier");
                        verifier.verify(&ctx, built_op).unwrap_or_else(|e| {
                            panic!(
                                "{dialect_name}: generated {} does not verify: {e}\n{}",
                                built_op.name(&ctx).display(&ctx),
                                irdl_ir::print::op_to_string_generic(&ctx, built_op),
                            )
                        });
                        // Structural verification of the containing module
                        // (dominance, terminator placement) must succeed;
                        // hooks are skipped because region terminators are
                        // created bare, without their own sampled operands.
                        verify_op_structural(&ctx, module).unwrap_or_else(|errs| {
                            panic!(
                                "{dialect_name}: module around {} is invalid: {}",
                                built_op.name(&ctx).display(&ctx),
                                errs[0]
                            )
                        });
                        // Every generated module must round-trip through
                        // the textual format.
                        let text = irdl_ir::print::op_to_string(&ctx, module);
                        let module2 = irdl_ir::parse::parse_module(&mut ctx2, &text)
                            .unwrap_or_else(|e| {
                                panic!("{dialect_name}: reparse failed:\n{text}\n{e}")
                            });
                        assert_eq!(
                            irdl_ir::print::op_to_string(&ctx2, module2),
                            text,
                            "{dialect_name}: print is not a fixpoint"
                        );
                    }
                    Instantiation::Skipped(reason) => {
                        skipped.push(format!("{dialect_name}: {reason}"));
                    }
                }
                ctx.erase_op(module);
            }
        }
    }

    assert_eq!(total, 942, "the corpus defines 942 operations");
    // Terminators with successors are legitimately skipped (they need CFG
    // context); everything else must instantiate.
    let expected_skips: usize =
        irdl_dialects::dialects().iter().map(|d| d.successor_ops).sum();
    assert_eq!(
        built + skipped.len(),
        total,
        "every op is either built or skipped"
    );
    assert!(
        skipped.len() <= expected_skips,
        "unexpected skips beyond CFG terminators:\n{}",
        skipped.join("\n")
    );
    assert!(
        built >= total - expected_skips,
        "built {built} of {total} (allowed skips: {expected_skips})"
    );
}
