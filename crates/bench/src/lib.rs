//! Shared workload builders for the benchmark harness.

use irdl_ir::{Context, OpRef, OperationState};

/// A fresh context with the 28-dialect corpus registered; returns the
/// corpus dialect names alongside.
pub fn corpus_context() -> (Context, Vec<String>) {
    let mut ctx = Context::new();
    let names = irdl_dialects::register_corpus(&mut ctx).expect("corpus compiles");
    (ctx, names)
}

/// A fresh context with the showcase dialects (`cmath`/`arith`/`func`).
pub fn showcase_context() -> Context {
    let mut ctx = Context::new();
    irdl_dialects::showcase::register_showcase(&mut ctx).expect("showcase compiles");
    ctx
}

/// Builds a module of `n` verifiable `cmath.mul` operations.
pub fn mul_chain_module(ctx: &mut Context, n: usize) -> OpRef {
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex = ctx
        .parametric_type("cmath", "complex", [f32a])
        .expect("cmath registered");
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.op_name("test", "source");
    let first = ctx.create_op(OperationState::new(src).add_result_types([complex]));
    ctx.append_op(block, first);
    let mut value = first.result(ctx, 0);
    let mul = ctx.op_name("cmath", "mul");
    for _ in 0..n {
        let op = ctx.create_op(
            OperationState::new(mul)
                .add_operands([value, value])
                .add_result_types([complex]),
        );
        ctx.append_op(block, op);
        value = op.result(ctx, 0);
    }
    module
}

/// The textual source of a straight-line module with `n` cmath operations
/// in custom syntax, for parse benchmarks.
pub fn mul_chain_source(n: usize) -> String {
    let mut out = String::from("%v0 = \"test.source\"() : () -> !cmath.complex<f32>\n");
    for i in 0..n {
        out.push_str(&format!("%v{} = cmath.mul %v{i}, %v{i} : f32\n", i + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::verify::verify_op;

    #[test]
    fn workloads_build_and_verify() {
        let mut ctx = showcase_context();
        let module = mul_chain_module(&mut ctx, 10);
        verify_op(&ctx, module).unwrap();
        let src = mul_chain_source(5);
        let parsed = irdl_ir::parse::parse_module(&mut ctx, &src).unwrap();
        verify_op(&ctx, parsed).unwrap();
    }

    #[test]
    fn corpus_context_builds() {
        let (_ctx, names) = corpus_context();
        assert_eq!(names.len(), 28);
    }
}
