//! Checked-rewrite throughput benchmark: incremental vs full re-verification.
//!
//! The workload is the shape the incremental verifier was built for: a
//! straight-line chain of `cmath.mul` ops over `!cmath.complex<f32>` and a
//! pattern rewriting `cmath.mul(x, x)` into `bench.sqr(x)`. Every rewrite
//! rewires the next link of the chain, so the greedy driver cascades down
//! the module applying exactly one rewrite per chain op — and a checked
//! driver re-verifies after every one of them.
//!
//! With `CheckLevel::Full` each of those checks walks the whole module, so
//! the drive is O(n^2) in the chain length. With `CheckLevel::Incremental`
//! the change journal names the one created op, the one rewired user, and
//! the dirty block, so each check is O(touched) and the drive is O(n).
//!
//! The gated quantity is the *paired* speedup of the incremental drive over
//! the full drive: in each round the two run back-to-back, so a load spike
//! degrades both sides instead of skewing their ratio, and the best round
//! wins. The floor is 5x at a 200-op chain. Two more properties are
//! enforced on every run:
//!
//! - both checked drives apply exactly `CHAIN_LEN` rewrites and produce
//!   byte-identical output to the unchecked drive;
//! - the incremental drive's allocations per rewrite stay bounded by a
//!   small constant (no per-rewrite `.to_vec()` of the worklist state).
//!
//! Results are written to `BENCH_rewrite.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin rewritebench --release [-- --quick]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::time::Instant;

use irdl_bench::{mul_chain_module, showcase_context};
use irdl_ir::print::op_to_string;
use irdl_ir::{Context, OpName, OperationState, OpRef};
use irdl_rewrite::{
    rewrite_greedily_with, CheckLevel, PatternSet, RewritePattern, Rewriter,
};

/// Chain length for the gated configuration. Long enough that the O(n^2)
/// full-check drive is clearly separated from the O(n) incremental one,
/// short enough that calibration stays fast in `--quick` CI runs.
const CHAIN_LEN: usize = 200;

/// The paired-speedup floor at [`CHAIN_LEN`].
const REQUIRED_SPEEDUP: f64 = 5.0;

/// Allocation ceiling per incremental checked rewrite (steady state). The
/// journal, worklist, and dirty sets are all recycled across rewrites, so
/// the only steady-state allocations are occasional re-growth and the
/// per-check diagnostics scratch — far below this bound. A per-rewrite
/// copy of the worklist or journal would blow straight past it.
const MAX_INCR_ALLOCS_PER_REWRITE: f64 = 32.0;

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counts every allocation request so a measured drive can report how many
/// times it hit the heap. Deallocations are not interesting here.
struct CountingAlloc;

static ALLOCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// Rewrites `cmath.mul(x, x)` into `bench.sqr(x)`. Replacing the result
/// rewires the next chain link's operands, which requeues it, which makes
/// the driver cascade one rewrite per chain op.
struct MulToSqr {
    mul: OpName,
    sqr: OpName,
}

impl RewritePattern for MulToSqr {
    fn root(&self) -> Option<OpName> {
        Some(self.mul)
    }
    fn name(&self) -> &str {
        "mul-to-sqr"
    }
    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
        let op = rewriter.root();
        let ctx = rewriter.ctx();
        if op.num_operands(ctx) != 2 || op.operand(ctx, 0) != op.operand(ctx, 1) {
            return false;
        }
        let x = op.operand(ctx, 0);
        let result_ty = op.result_types(ctx)[0];
        let sqr = rewriter.insert_before_root(
            OperationState::new(self.sqr).add_operands([x]).add_result_types([result_ty]),
        );
        let replacement = sqr.result(rewriter.ctx(), 0);
        rewriter.replace_root(&[replacement]);
        true
    }
}

/// A pristine context holding the untouched chain; every measured drive
/// clones it so each drive starts from identical IR and a warm verdict
/// cache, outside the timed region.
struct Workload {
    pristine: Context,
    module: OpRef,
    patterns: PatternSet,
}

fn build_workload() -> Workload {
    let mut ctx = showcase_context();
    let module = mul_chain_module(&mut ctx, CHAIN_LEN);
    let mut patterns = PatternSet::new();
    patterns.add(std::sync::Arc::new(MulToSqr {
        mul: ctx.op_name("cmath", "mul"),
        sqr: ctx.op_name("bench", "sqr"),
    }));
    Workload { pristine: ctx, module, patterns }
}

/// One checked drive over a fresh clone of the pristine chain. Only the
/// drive itself is timed; the clone happens outside the timer.
struct Drive {
    secs: f64,
    allocs: u64,
}

fn drive_once(w: &Workload, check: CheckLevel) -> Drive {
    let mut ctx = w.pristine.clone();
    let allocs_before = allocs();
    let start = Instant::now();
    let stats = rewrite_greedily_with(&mut ctx, w.module, &w.patterns, check)
        .expect("the chain stays valid under rewriting");
    let secs = start.elapsed().as_secs_f64();
    let allocs = allocs() - allocs_before;
    assert_eq!(stats.rewrites, CHAIN_LEN, "one rewrite per chain op");
    Drive { secs, allocs }
}

/// The printed module after a drive at `check`, for the output-equivalence
/// gate.
fn drive_output(w: &Workload, check: CheckLevel) -> String {
    let mut ctx = w.pristine.clone();
    rewrite_greedily_with(&mut ctx, w.module, &w.patterns, check)
        .expect("the chain stays valid under rewriting");
    op_to_string(&ctx, w.module)
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Warm up and calibrate an iteration count targeting `budget` seconds per
/// timed round.
fn calibrate(w: &Workload, check: CheckLevel, budget: f64) -> usize {
    for _ in 0..2 {
        drive_once(w, check);
    }
    let once = drive_once(w, check).secs.max(1e-9);
    ((budget / once) as usize).clamp(3, 10_000)
}

/// One timed round of `iters` drives; returns per-drive seconds and
/// per-drive allocations.
fn round(w: &Workload, check: CheckLevel, iters: usize) -> (f64, f64) {
    let mut secs = 0.0;
    let mut drive_allocs = 0u64;
    for _ in 0..iters {
        let drive = drive_once(w, check);
        secs += drive.secs;
        drive_allocs += drive.allocs;
    }
    (secs / iters as f64, drive_allocs as f64 / iters as f64)
}

/// Best-of-rounds for one check level.
#[derive(Clone, Copy)]
struct Measurement {
    best_secs: f64,
    allocs_per_drive: f64,
}

impl Measurement {
    fn new() -> Measurement {
        Measurement { best_secs: f64::INFINITY, allocs_per_drive: 0.0 }
    }

    fn record(&mut self, w: &Workload, check: CheckLevel, iters: usize) -> f64 {
        let (secs, allocs_per_drive) = round(w, check, iters);
        self.best_secs = self.best_secs.min(secs);
        // Steady-state allocations only: keep the last round's figure.
        self.allocs_per_drive = allocs_per_drive;
        secs
    }

    fn drives_per_sec(&self) -> f64 {
        1.0 / self.best_secs
    }

    fn allocs_per_rewrite(&self) -> f64 {
        self.allocs_per_drive / CHAIN_LEN as f64
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

struct Summary {
    speedup: f64,
    unchecked: Measurement,
    full: Measurement,
    incremental: Measurement,
    outputs_identical: bool,
}

fn report_json(s: &Summary) -> String {
    let mut out = String::new();
    out.push_str(
        "{\n  \"benchmark\": \"checked greedy rewriting: incremental vs full re-verification\",\n",
    );
    out.push_str("  \"command\": \"cargo run -p irdl-bench --bin rewritebench --release\",\n");
    out.push_str(&format!("  \"required_speedup\": {REQUIRED_SPEEDUP:.1},\n"));
    out.push_str(&format!("  \"chain_len\": {CHAIN_LEN},\n"));
    out.push_str(&format!("  \"rewrites_per_drive\": {CHAIN_LEN},\n"));
    out.push_str(&format!("  \"speedup\": {:.2},\n", s.speedup));
    out.push_str(&format!(
        "  \"unchecked_drives_per_sec\": {:.1},\n",
        s.unchecked.drives_per_sec()
    ));
    out.push_str(&format!(
        "  \"full_checked_drives_per_sec\": {:.1},\n",
        s.full.drives_per_sec()
    ));
    out.push_str(&format!(
        "  \"incremental_checked_drives_per_sec\": {:.1},\n",
        s.incremental.drives_per_sec()
    ));
    out.push_str(&format!(
        "  \"incremental_check_overhead\": {:.2},\n",
        s.incremental.best_secs / s.unchecked.best_secs
    ));
    out.push_str(&format!(
        "  \"full_allocs_per_rewrite\": {:.1},\n",
        s.full.allocs_per_rewrite()
    ));
    out.push_str(&format!(
        "  \"incremental_allocs_per_rewrite\": {:.1},\n",
        s.incremental.allocs_per_rewrite()
    ));
    out.push_str(&format!(
        "  \"max_incremental_allocs_per_rewrite\": {MAX_INCR_ALLOCS_PER_REWRITE:.1},\n"
    ));
    out.push_str(&format!("  \"outputs_identical\": {}\n}}\n", s.outputs_identical));
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode trims the per-round budget for CI smoke runs; the speedup
    // floor stays enforced, so the budget stays large enough for the
    // full/incremental ratio to be stable on a loaded machine.
    let budget = if quick { 0.15 } else { 0.4 };
    let rounds = 3;

    let workload = build_workload();

    // Output equivalence: both checked drives must leave the module
    // byte-identical to the unchecked drive.
    let baseline = drive_output(&workload, CheckLevel::Off);
    let outputs_identical = drive_output(&workload, CheckLevel::Full) == baseline
        && drive_output(&workload, CheckLevel::Incremental) == baseline;
    assert!(outputs_identical, "checked drives must not change rewrite outcomes");
    assert!(
        baseline.contains("bench.sqr") && !baseline.contains("cmath.mul"),
        "the cascade must rewrite the whole chain"
    );

    let off_iters = calibrate(&workload, CheckLevel::Off, budget);
    let full_iters = calibrate(&workload, CheckLevel::Full, budget);
    let incr_iters = calibrate(&workload, CheckLevel::Incremental, budget);

    let mut unchecked = Measurement::new();
    let mut full = Measurement::new();
    let mut incremental = Measurement::new();
    let mut speedup: f64 = 0.0;
    for _ in 0..rounds {
        unchecked.record(&workload, CheckLevel::Off, off_iters);
        let full_secs = full.record(&workload, CheckLevel::Full, full_iters);
        let incr_secs = incremental.record(&workload, CheckLevel::Incremental, incr_iters);
        speedup = speedup.max(full_secs / incr_secs);
    }

    let summary = Summary { speedup, unchecked, full, incremental, outputs_identical };
    let json = report_json(&summary);
    print!("{json}");
    eprintln!(
        "rewrite: {CHAIN_LEN}-op chain, full-checked {:.1} drives/s, incremental \
         {:.1} drives/s ({speedup:.2}x paired, floor {REQUIRED_SPEEDUP:.1}x), \
         incremental allocs/rewrite {:.1}",
        full.drives_per_sec(),
        incremental.drives_per_sec(),
        incremental.allocs_per_rewrite(),
    );

    if quick {
        // Smoke runs enforce the gates but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_rewrite.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rewrite.json");
        std::fs::write(path, &json).expect("write BENCH_rewrite.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: speedup {speedup:.2}x is below the required {REQUIRED_SPEEDUP:.1}x");
        failed = true;
    }
    if incremental.allocs_per_rewrite() > MAX_INCR_ALLOCS_PER_REWRITE {
        eprintln!(
            "FAIL: {:.1} allocations per incremental checked rewrite exceeds the \
             {MAX_INCR_ALLOCS_PER_REWRITE:.1} ceiling",
            incremental.allocs_per_rewrite()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
