//! Multi-core batch-pipeline throughput benchmark.
//!
//! Compiles the 28-dialect evaluation corpus into one shared
//! [`DialectBundle`], generates one module text per instantiable corpus
//! operation (each holding several instances of the op), and runs the
//! whole corpus through the batch pipeline — parse → verify → print per
//! module — once sequentially (`jobs = 1`) and once fanned out across
//! worker threads (`jobs = 4`).
//!
//! The gated quantity is the *paired* speedup: in each round the
//! sequential and parallel batches run back-to-back, so a load spike
//! degrades both sides instead of skewing their ratio, and the best round
//! wins (scheduling noise only ever slows a round down). The required
//! speedup scales with the machine: 2.5x where at least 4 cores are
//! available, a weaker floor on smaller hosts where a 4-worker pool cannot
//! physically reach 2.5x.
//!
//! Two more properties are enforced on every run:
//!
//! - dialect compilation happens exactly once, at setup — instantiating
//!   worker contexts from the bundle must not recompile anything;
//! - the parallel batch's outputs are byte-identical to the sequential
//!   batch's, in input order.
//!
//! Results are written to `BENCH_pipeline.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin pipelinebench --release [-- --quick]
//! ```

use std::time::Instant;

use irdl::genir::{instantiate_op, Instantiation};
use irdl::DialectBundle;
use irdl_ir::print::op_to_string;
use irdl_rewrite::pipeline::{run_batch, PipelineOptions, PipelineReport};
use irdl_rewrite::PatternSet;

/// Worker count for the parallel side (the gated configuration).
const JOBS: usize = 4;

/// Instances of each operation per generated module, so per-module work
/// dominates per-module bookkeeping.
const OPS_PER_MODULE: usize = 8;

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// One module text per instantiable corpus operation, each containing
/// [`OPS_PER_MODULE`] generated instances of that operation.
fn corpus_inputs(bundle: &DialectBundle) -> Vec<String> {
    let mut ctx = bundle.instantiate();
    let natives = irdl_dialects::corpus_natives();
    let mut texts = Vec::new();
    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            // Recompile in a scratch context clone only to recover the
            // structured per-op artifacts; the bundle used for the timed
            // runs is untouched.
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                let mut built = 0;
                // Terminators must be last in their block, so they get one
                // instance per module; everything else is stacked.
                let mut target = OPS_PER_MODULE;
                while built < target {
                    match instantiate_op(&mut ctx, &op, block) {
                        Instantiation::Built(instance) => {
                            built += 1;
                            if ctx.is_terminator(instance) {
                                target = 1;
                            }
                        }
                        // CFG terminators need successor context; skip, as
                        // the corpus generation test does.
                        Instantiation::Skipped(_) => break,
                    }
                }
                if built == target {
                    texts.push(op_to_string(&ctx, module));
                }
                ctx.erase_op(module);
            }
        }
    }
    texts
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct BatchTiming {
    secs: f64,
    report: PipelineReport,
}

fn timed_batch(
    bundle: &DialectBundle,
    patterns: &PatternSet,
    inputs: &[String],
    jobs: usize,
) -> BatchTiming {
    let opts = PipelineOptions { jobs, verify: true, ..Default::default() };
    let start = Instant::now();
    let report = run_batch(bundle, patterns, inputs, &opts);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(report.errors(), 0, "every corpus module must pipeline cleanly");
    BatchTiming { secs, report }
}

/// The speedup floor, scaled to what the host can physically deliver with
/// a 4-worker pool. CI (>= 4 cores) enforces the real 2.5x gate; smaller
/// hosts still gate against gross regressions (and a single-core host
/// merely bounds the parallel overhead).
fn required_speedup(cores: usize) -> f64 {
    match cores {
        0 | 1 => 0.7,
        2 | 3 => 1.3,
        _ => 2.5,
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Everything the JSON report (and the gates) need from the measured runs.
struct Summary {
    modules: usize,
    cores: usize,
    required: f64,
    speedup: f64,
    seq_best: f64,
    par_best: f64,
    compiles_setup: u64,
    compiles_measured: u64,
    outputs_identical: bool,
}

fn report_json(s: &Summary, last_parallel: &PipelineReport) -> String {
    let Summary {
        modules,
        cores,
        required,
        speedup,
        seq_best,
        par_best,
        compiles_setup,
        compiles_measured,
        outputs_identical,
    } = *s;
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"batch pipeline: shared dialect bundle across cores\",\n");
    out.push_str("  \"command\": \"cargo run -p irdl-bench --bin pipelinebench --release\",\n");
    out.push_str(&format!("  \"jobs\": {JOBS},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"required_speedup\": {required:.2},\n  \"required_speedup_note\": \
         \"2.5 with >= 4 cores, 1.3 on 2-3 cores; on 1 core no speedup is \
         physically possible, so the gate is an overhead bound: the 4-worker \
         pool may cost at most ~1.4x sequential time (paired speedup >= 0.7)\",\n"
    ));
    out.push_str(&format!("  \"modules\": {modules},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    out.push_str(&format!(
        "  \"sequential_modules_per_sec\": {:.1},\n",
        modules as f64 / seq_best
    ));
    out.push_str(&format!(
        "  \"parallel_modules_per_sec\": {:.1},\n",
        modules as f64 / par_best
    ));
    out.push_str(&format!(
        "  \"dialect_compiles\": {{ \"setup\": {compiles_setup}, \"during_measurement\": {compiles_measured} }},\n"
    ));
    out.push_str(&format!("  \"outputs_identical_to_sequential\": {outputs_identical},\n"));
    out.push_str("  \"workers\": [\n");
    for (i, w) in last_parallel.workers.iter().enumerate() {
        let total = w.verdict_hits + w.verdict_misses;
        let rate = if total == 0 { 0.0 } else { w.verdict_hits as f64 / total as f64 };
        out.push_str(&format!(
            "    {{ \"modules\": {}, \"verdict_hits\": {}, \"verdict_misses\": {}, \
             \"hit_rate\": {:.3} }}{}\n",
            w.modules,
            w.verdict_hits,
            w.verdict_misses,
            rate,
            if i + 1 == last_parallel.workers.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 2 } else { 5 };

    let natives = irdl_dialects::corpus_natives();
    let sources = irdl_dialects::corpus_sources();
    let bundle = DialectBundle::compile(&sources, &natives).expect("corpus compiles");

    let candidates = corpus_inputs(&bundle);
    let patterns = PatternSet::new();

    // Probe pass: a few generated ops carry nested regions whose
    // synthesized terminators do not satisfy the full recursive module
    // verifier (a genir limitation, not a pipeline one). Drop them up
    // front — and say so, rather than silently shrinking the corpus.
    let probe_opts = PipelineOptions { jobs: 1, verify: true, ..Default::default() };
    let probe = run_batch(&bundle, &patterns, &candidates, &probe_opts);
    let inputs: Vec<String> = candidates
        .into_iter()
        .zip(&probe.results)
        .filter_map(|(text, result)| result.is_ok().then_some(text))
        .collect();
    if probe.errors() > 0 {
        eprintln!(
            "note: dropped {} generated module(s) that fail recursive verification",
            probe.errors()
        );
    }
    assert!(inputs.len() >= 100, "corpus should yield a real batch, got {}", inputs.len());

    // Everything above this line is setup; from here on, instantiating
    // contexts must never recompile a dialect.
    let compiles_setup = irdl::dialect_compile_count();

    // Warm-up: one sequential pass (also the output baseline) and one
    // parallel pass.
    let baseline = timed_batch(&bundle, &patterns, &inputs, 1);
    let warm_par = timed_batch(&bundle, &patterns, &inputs, JOBS);
    let outputs_identical = baseline
        .report
        .results
        .iter()
        .zip(&warm_par.report.results)
        .all(|(s, p)| match (s, p) {
            (Ok(s), Ok(p)) => s.output == p.output,
            _ => false,
        });
    assert!(outputs_identical, "parallel outputs must be byte-identical and input-ordered");

    let mut speedup: f64 = 0.0;
    let mut seq_best = f64::INFINITY;
    let mut par_best = f64::INFINITY;
    let mut last_parallel = warm_par.report;
    for _ in 0..rounds {
        let seq = timed_batch(&bundle, &patterns, &inputs, 1);
        let par = timed_batch(&bundle, &patterns, &inputs, JOBS);
        speedup = speedup.max(seq.secs / par.secs);
        seq_best = seq_best.min(seq.secs);
        par_best = par_best.min(par.secs);
        last_parallel = par.report;
    }

    let compiles_measured = irdl::dialect_compile_count() - compiles_setup;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let required = required_speedup(cores);

    let summary = Summary {
        modules: inputs.len(),
        cores,
        required,
        speedup,
        seq_best,
        par_best,
        compiles_setup,
        compiles_measured,
        outputs_identical,
    };
    let json = report_json(&summary, &last_parallel);
    print!("{json}");
    eprintln!(
        "pipeline: {} modules, seq {:.1} modules/s, {JOBS}-worker {:.1} modules/s \
         ({speedup:.2}x paired, {cores} core(s), floor {required:.2}x)",
        inputs.len(),
        inputs.len() as f64 / seq_best,
        inputs.len() as f64 / par_best,
    );
    for (i, w) in last_parallel.workers.iter().enumerate() {
        let total = w.verdict_hits + w.verdict_misses;
        let rate = if total == 0 { 0.0 } else { 100.0 * w.verdict_hits as f64 / total as f64 };
        eprintln!(
            "worker {i}: {} modules, verdict cache {}/{} hits ({rate:.1}%)",
            w.modules, w.verdict_hits, total,
        );
    }

    if quick {
        // Smoke runs enforce the gates but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_pipeline.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
        std::fs::write(path, &json).expect("write BENCH_pipeline.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if compiles_measured != 0 {
        eprintln!(
            "FAIL: {compiles_measured} dialect compilation(s) during measurement; \
             the bundle must compile everything exactly once at setup"
        );
        failed = true;
    }
    if speedup < required {
        eprintln!("FAIL: speedup {speedup:.2}x is below the required {required:.2}x");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
