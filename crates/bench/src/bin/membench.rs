//! Zero-dependency memory benchmark: allocations per constructed op.
//!
//! PR 8 left op construction at ~8 heap allocations per operation: six
//! per-op `Vec`s in `OperationData`, a `Vec<Vec<Use>>` use-list, and
//! operand-vector clones on the erase path. The compact-storage layer
//! (inline payloads, intrusive use-chains, pooled spill buffers — see
//! DESIGN.md "Op storage layout") exists to break that floor. This bench
//! substantiates the claim with a counting global allocator:
//!
//! - **text_parse**: the corpus module workload (one module per
//!   instantiable corpus op plus the combined big file, as `bytebench`
//!   measures). Gates: ≤ 3 allocs/op and ≥ 1.3x the PR 8 parse
//!   throughput baseline.
//! - **bytecode_decode**: the same modules decoded from `IRBC` bytecode.
//!   Gates: ≤ 2 allocs/op and ≥ 1.3x the PR 8 decode throughput baseline.
//! - **steady_rewrite**: a warmed journaled rewrite loop (insert a
//!   replacement op, forward uses, erase the old op, via the rewrite
//!   `Rewriter`). After warmup every buffer involved — inline op payloads,
//!   the spill pool, arena free lists, journal vectors, order-key
//!   respacing — is recycled, so the gate is **exactly zero** allocations
//!   per rewrite step.
//!
//! The throughput baselines are the PR 8 numbers recorded in
//! BENCH_bytecode.json on this machine; the alloc gates are
//! deterministic counts, independent of machine load. Results are written
//! to `BENCH_mem.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin membench --release [-- --quick]
//! ```
//!
//! `--quick` trims measurement budgets for CI smoke runs and skips the
//! machine-relative throughput floors (load-sensitive); the deterministic
//! allocation gates are always enforced.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use irdl::genir::{instantiate_op, Instantiation};
use irdl_ir::bytecode::{decode_module, encode_module};
use irdl_ir::parse::parse_module;
use irdl_ir::print::op_to_string;
use irdl_ir::{ChangeJournal, Context, OpRef, OperationState};
use irdl_rewrite::Rewriter;

// ---------------------------------------------------------------------------
// Gates and baselines
// ---------------------------------------------------------------------------

/// Construction from text must average at most this many heap allocations
/// per op over the corpus workload.
const MAX_PARSE_ALLOCS_PER_OP: f64 = 3.0;
/// Construction from bytecode must average at most this many.
const MAX_DECODE_ALLOCS_PER_OP: f64 = 2.0;
/// A warmed rewrite step must not allocate at all.
const MAX_REWRITE_ALLOCS: u64 = 0;
/// Parse and decode must beat the PR 8 baseline by at least this factor.
const REQUIRED_THROUGHPUT_SPEEDUP: f64 = 1.3;

/// PR 8 corpus parse throughput (ops/s) from BENCH_bytecode.json, recorded
/// at 8.34 allocs/op on this machine.
const PR8_PARSE_OPS_PER_SEC: f64 = 1_002_322.7;
/// PR 8 corpus decode throughput (ops/s), recorded at 7.46 allocs/op.
const PR8_DECODE_OPS_PER_SEC: f64 = 2_007_525.5;

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counts every allocation request (including reallocs) so a measured pass
/// can report how many times it hit the heap.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Generates one module text per instantiable corpus op plus one combined
/// module holding every instance (the same set `bytebench` loads).
fn corpus_texts() -> Vec<String> {
    let mut ctx = Context::new();
    let natives = irdl_dialects::corpus_natives();
    let mut texts = Vec::new();

    let big_module = ctx.create_module();
    let big_block = ctx.module_block(big_module);

    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(_) => {
                        texts.push(op_to_string(&ctx, module));
                        ctx.erase_op(module);
                        let again = instantiate_op(&mut ctx, &op, big_block);
                        assert!(matches!(again, Instantiation::Built(_)));
                    }
                    Instantiation::Skipped(_) => ctx.erase_op(module),
                }
            }
        }
    }
    texts.push(op_to_string(&ctx, big_module));
    texts
}

struct Measurement {
    ops_per_sec: f64,
    allocs_per_op: f64,
}

/// Warm up, calibrate an iteration count targeting `budget` seconds, then
/// take the best of three timed repeats. Allocations are averaged across
/// all timed passes — the count is deterministic per pass once warm.
fn measure(mut pass: impl FnMut() -> usize, ops: usize, budget: f64) -> Measurement {
    for _ in 0..3 {
        black_box(pass());
    }
    let start = Instant::now();
    black_box(pass());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget / once) as usize).clamp(3, 50_000);

    let mut best_secs = f64::INFINITY;
    let allocs_before = allocs();
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(pass());
        }
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
    }
    let allocs_after = allocs();
    Measurement {
        ops_per_sec: (ops * iters) as f64 / best_secs,
        allocs_per_op: (allocs_after - allocs_before) as f64 / (3 * ops * iters) as f64,
    }
}

struct LoadReport {
    modules: usize,
    ops: usize,
    parse: Measurement,
    decode: Measurement,
}

/// Parse and decode the corpus module set in one long-lived
/// corpus-registered context, erasing each module after the load so
/// arenas and pools reach steady state.
fn run_construction(budget: f64) -> LoadReport {
    let texts = corpus_texts();
    let (mut ctx, _) = irdl_bench::corpus_context();

    let mut encoded = Vec::with_capacity(texts.len());
    let mut total_ops = 0usize;
    for text in &texts {
        let before = ctx.num_ops();
        let module = parse_module(&mut ctx, text)
            .unwrap_or_else(|e| panic!("workload text parses: {e}\n{text}"));
        total_ops += ctx.num_ops() - before;
        encoded.push(encode_module(&ctx, module).expect("workload module encodes"));
        ctx.erase_op(module);
    }

    let parse = measure(
        || {
            let mut ok = 0;
            for text in &texts {
                let module = parse_module(&mut ctx, text).expect("parses");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        total_ops,
        budget,
    );
    let decode = measure(
        || {
            let mut ok = 0;
            for bytes in &encoded {
                let module = decode_module(&mut ctx, bytes).expect("decodes");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        total_ops,
        budget,
    );

    LoadReport { modules: texts.len(), ops: total_ops, parse, decode }
}

struct RewriteReport {
    steps: usize,
    total_allocs: u64,
    steps_per_sec: f64,
}

/// A journaled replace-forward-erase loop: each step inserts a fresh op
/// before the current one, forwards the current op's uses to it, and
/// erases the old op — the canonical greedy-rewrite inner step. After
/// warmup the step count is exact: zero heap allocations.
fn run_steady_rewrite(steps: usize) -> RewriteReport {
    let mut ctx = Context::new();
    let f32t = ctx.f32_type();
    let src_name = ctx.op_name("m", "src");
    let mid_name = ctx.op_name("m", "mid");
    let sink_name = ctx.op_name("m", "sink");

    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.create_op(OperationState::new(src_name).add_result_types([f32t]));
    ctx.append_op(block, src);
    let feed = src.result(&ctx, 0);
    let mut current =
        ctx.create_op(OperationState::new(mid_name).add_operands([feed]).add_result_types([f32t]));
    ctx.append_op(block, current);
    let sink = ctx
        .create_op(OperationState::new(sink_name).add_operands([current.result(&ctx, 0)]));
    ctx.append_op(block, sink);

    let mut journal = ChangeJournal::new();
    let step = |ctx: &mut Context, journal: &mut ChangeJournal, current: OpRef| {
        journal.clear();
        let mut rw = Rewriter::new(ctx, current, journal);
        let fresh = rw.insert_before(
            current,
            OperationState::new(mid_name).add_operands([feed]).add_result_types([f32t]),
        );
        let old = current.result(rw.ctx(), 0);
        let new = fresh.result(rw.ctx(), 0);
        rw.replace_all_uses(old, new);
        rw.erase(current);
        fresh
    };

    // Warmup: grow every reusable buffer (journal vectors, spill pool,
    // arena free lists, erase scratch) and cycle past an order-key
    // respace so the measured loop runs entirely on recycled storage.
    for _ in 0..4096 {
        current = step(&mut ctx, &mut journal, current);
    }

    let before = allocs();
    let start = Instant::now();
    for _ in 0..steps {
        current = step(&mut ctx, &mut journal, current);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let total_allocs = allocs() - before;
    black_box(current);

    RewriteReport { steps, total_allocs, steps_per_sec: steps as f64 / secs }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn json_f(value: f64) -> String {
    if value.is_finite() { format!("{value:.1}") } else { "null".to_string() }
}

fn report_json(load: &LoadReport, rewrite: &RewriteReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"op construction allocations\",\n",
            "  \"command\": \"cargo run -p irdl-bench --bin membench --release\",\n",
            "  \"max_parse_allocs_per_op\": {},\n",
            "  \"max_decode_allocs_per_op\": {},\n",
            "  \"max_rewrite_allocs_per_step\": {},\n",
            "  \"required_throughput_speedup\": {},\n",
            "  \"baseline\": {{\n",
            "    \"note\": \"PR 8 (pre-compact-storage) corpus numbers, this machine\",\n",
            "    \"parse_ops_per_sec\": {},\n",
            "    \"parse_allocs_per_op\": 8.34,\n",
            "    \"decode_ops_per_sec\": {},\n",
            "    \"decode_allocs_per_op\": 7.46\n",
            "  }},\n",
            "  \"text_parse\": {{\n",
            "    \"modules\": {},\n",
            "    \"ops\": {},\n",
            "    \"ops_per_sec\": {},\n",
            "    \"allocs_per_op\": {:.2},\n",
            "    \"speedup_vs_pr8\": {:.2}\n",
            "  }},\n",
            "  \"bytecode_decode\": {{\n",
            "    \"modules\": {},\n",
            "    \"ops\": {},\n",
            "    \"ops_per_sec\": {},\n",
            "    \"allocs_per_op\": {:.2},\n",
            "    \"speedup_vs_pr8\": {:.2}\n",
            "  }},\n",
            "  \"steady_rewrite\": {{\n",
            "    \"steps\": {},\n",
            "    \"total_allocs\": {},\n",
            "    \"steps_per_sec\": {}\n",
            "  }}\n",
            "}}\n",
        ),
        MAX_PARSE_ALLOCS_PER_OP,
        MAX_DECODE_ALLOCS_PER_OP,
        MAX_REWRITE_ALLOCS,
        REQUIRED_THROUGHPUT_SPEEDUP,
        json_f(PR8_PARSE_OPS_PER_SEC),
        json_f(PR8_DECODE_OPS_PER_SEC),
        load.modules,
        load.ops,
        json_f(load.parse.ops_per_sec),
        load.parse.allocs_per_op,
        load.parse.ops_per_sec / PR8_PARSE_OPS_PER_SEC,
        load.modules,
        load.ops,
        json_f(load.decode.ops_per_sec),
        load.decode.allocs_per_op,
        load.decode.ops_per_sec / PR8_DECODE_OPS_PER_SEC,
        rewrite.steps,
        rewrite.total_allocs,
        json_f(rewrite.steps_per_sec),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick { 0.08 } else { 0.5 };
    let rewrite_steps = if quick { 20_000 } else { 200_000 };

    eprintln!("generating corpus module workload...");
    let load = run_construction(budget);
    eprintln!(
        "text_parse: {} modules / {} ops, {:.0} ops/s, {:.2} allocs/op ({:.2}x vs PR 8)",
        load.modules,
        load.ops,
        load.parse.ops_per_sec,
        load.parse.allocs_per_op,
        load.parse.ops_per_sec / PR8_PARSE_OPS_PER_SEC,
    );
    eprintln!(
        "bytecode_decode: {} modules / {} ops, {:.0} ops/s, {:.2} allocs/op ({:.2}x vs PR 8)",
        load.modules,
        load.ops,
        load.decode.ops_per_sec,
        load.decode.allocs_per_op,
        load.decode.ops_per_sec / PR8_DECODE_OPS_PER_SEC,
    );

    let rewrite = run_steady_rewrite(rewrite_steps);
    eprintln!(
        "steady_rewrite: {} steps, {} total allocs, {:.0} steps/s",
        rewrite.steps, rewrite.total_allocs, rewrite.steps_per_sec,
    );

    let json = report_json(&load, &rewrite);
    print!("{json}");
    if quick {
        eprintln!("quick mode: not rewriting BENCH_mem.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem.json");
        std::fs::write(path, &json).expect("write BENCH_mem.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if load.parse.allocs_per_op > MAX_PARSE_ALLOCS_PER_OP {
        eprintln!(
            "FAIL: parse at {:.2} allocs/op exceeds the {MAX_PARSE_ALLOCS_PER_OP} gate",
            load.parse.allocs_per_op
        );
        failed = true;
    }
    if load.decode.allocs_per_op > MAX_DECODE_ALLOCS_PER_OP {
        eprintln!(
            "FAIL: decode at {:.2} allocs/op exceeds the {MAX_DECODE_ALLOCS_PER_OP} gate",
            load.decode.allocs_per_op
        );
        failed = true;
    }
    if rewrite.total_allocs > MAX_REWRITE_ALLOCS {
        eprintln!(
            "FAIL: steady-state rewrite performed {} allocations over {} steps (gate: {})",
            rewrite.total_allocs, rewrite.steps, MAX_REWRITE_ALLOCS
        );
        failed = true;
    }
    // Throughput floors compare against fixed numbers recorded on an idle
    // machine, so they are only meaningful in full runs.
    if !quick {
        if load.parse.ops_per_sec < REQUIRED_THROUGHPUT_SPEEDUP * PR8_PARSE_OPS_PER_SEC {
            eprintln!(
                "FAIL: parse throughput {:.0} ops/s is below {REQUIRED_THROUGHPUT_SPEEDUP}x \
                 the PR 8 baseline ({PR8_PARSE_OPS_PER_SEC} ops/s)",
                load.parse.ops_per_sec
            );
            failed = true;
        }
        if load.decode.ops_per_sec < REQUIRED_THROUGHPUT_SPEEDUP * PR8_DECODE_OPS_PER_SEC {
            eprintln!(
                "FAIL: decode throughput {:.0} ops/s is below {REQUIRED_THROUGHPUT_SPEEDUP}x \
                 the PR 8 baseline ({PR8_DECODE_OPS_PER_SEC} ops/s)",
                load.decode.ops_per_sec
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
