//! Zero-dependency bytecode benchmark: binary vs textual load paths.
//!
//! Measures the loads the bytecode layer exists to accelerate, each gated
//! against its textual counterpart *measured in the same run*:
//!
//! - **module_load**: decoding `IRBC` module bytecode into a
//!   corpus-registered context vs parsing the same modules from text.
//!   The workload is one generated module per instantiable operation of
//!   the 28-dialect corpus plus the combined "big file" module, the same
//!   set `parsebench` parses. Corpus IR is *construction-bound*: both
//!   paths end in the same arena op-building, so the ceiling is parse's
//!   lex/resolve overhead (~2-3x; see DESIGN.md "Bytecode format").
//!   Gate: decode ≥ 1.5x parse (ops/s).
//! - **weights_distinct**: modules whose ops each carry their own large
//!   constant array. Every element is a fresh attribute on both paths, so
//!   hash-consing the elements into the context dominates parse *and*
//!   decode alike and bounds the ratio near the corpus ceiling.
//!   Gate: decode ≥ 1.5x parse (elements/s).
//! - **weights_shared**: the payload shape binary IR formats exist for —
//!   many ops referencing a small set of large constant arrays (shared
//!   initializers). The printed text has no attribute aliases, so it
//!   repeats the full literal at every use and parse re-lexes and
//!   re-interns every copy; the bytecode pool stores each unique array
//!   once and op references are O(1) index reads. Gate: decode ≥ 10x
//!   parse (elements/s).
//! - **bundle_cold_start**: rehydrating the full 28-dialect corpus from a
//!   saved `IRDB` artifact ([`DialectBundle::load`]) vs compiling it from
//!   IRDL source through the frontend ([`DialectBundle::compile`]).
//!   Registration into the context registry is shared by both paths, so
//!   the ratio is bounded by frontend-vs-artifact-decode (~4x asymptote).
//!   Gate: load ≥ 1.5x compile (bundles/s).
//!
//! Timing uses `std::time::Instant` only. A counting global allocator
//! reports per-op heap allocations on both module paths, substantiating
//! that decode does strictly less work than parse. Results are written to
//! `BENCH_bytecode.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin bytebench --release [-- --quick]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use irdl::genir::{instantiate_op, Instantiation};
use irdl::DialectBundle;
use irdl_ir::bytecode::{decode_module, encode_module};
use irdl_ir::parse::parse_module;
use irdl_ir::print::op_to_string;
use irdl_ir::Context;

// ---------------------------------------------------------------------------
// Gates
// ---------------------------------------------------------------------------

/// Corpus module decode must beat text parse by at least this factor
/// (construction-bound workload; see the module docs).
const REQUIRED_DECODE_SPEEDUP: f64 = 1.5;
/// Distinct-constant (weights) module decode must beat text parse by at
/// least this factor (interning-bound workload; see the module docs).
const REQUIRED_WEIGHTS_DISTINCT_SPEEDUP: f64 = 1.5;
/// Shared-constant (weights) module decode must beat text parse by at
/// least this factor: the pool stores each unique array once while the
/// alias-free text repeats it per use.
const REQUIRED_WEIGHTS_SHARED_SPEEDUP: f64 = 10.0;
/// Bundle load must beat frontend compile by at least this factor
/// (registration-bound workload; see the module docs).
const REQUIRED_LOAD_SPEEDUP: f64 = 1.5;

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counts every allocation request so a measured pass can report how many
/// times it hit the heap. Deallocations are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Generates one module text per instantiable corpus op plus one combined
/// module holding every instance (the `parsebench` corpus workload).
fn corpus_texts() -> Vec<String> {
    let mut ctx = Context::new();
    let natives = irdl_dialects::corpus_natives();
    let mut texts = Vec::new();

    let big_module = ctx.create_module();
    let big_block = ctx.module_block(big_module);

    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(_) => {
                        texts.push(op_to_string(&ctx, module));
                        ctx.erase_op(module);
                        let again = instantiate_op(&mut ctx, &op, big_block);
                        assert!(matches!(again, Instantiation::Built(_)));
                    }
                    // CFG terminators need successor context; skip, as the
                    // corpus generation test does.
                    Instantiation::Skipped(_) => ctx.erase_op(module),
                }
            }
        }
    }
    texts.push(op_to_string(&ctx, big_module));
    texts
}

struct Measurement {
    units_per_sec: f64,
    allocs_per_unit: f64,
}

/// Warm up, calibrate an iteration count targeting `budget` seconds, then
/// take the best of three timed repeats (noise only ever slows a run
/// down). `units` is the work per pass.
fn measure(mut pass: impl FnMut() -> usize, expected: usize, units: usize, budget: f64) -> Measurement {
    for _ in 0..3 {
        let ok = pass();
        assert_eq!(ok, expected, "benchmark pass must process every unit");
    }
    let start = Instant::now();
    black_box(pass());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget / once) as usize).clamp(3, 50_000);

    let mut best_secs = f64::INFINITY;
    let allocs_before = allocs();
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(pass());
        }
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
    }
    let allocs_after = allocs();
    Measurement {
        units_per_sec: (units * iters) as f64 / best_secs,
        allocs_per_unit: (allocs_after - allocs_before) as f64 / (3 * units * iters) as f64,
    }
}

struct ModuleLoadReport {
    modules: usize,
    ops: usize,
    text_bytes: usize,
    bytecode_bytes: usize,
    parse: Measurement,
    decode: Measurement,
}

impl ModuleLoadReport {
    fn speedup(&self) -> f64 {
        self.decode.units_per_sec / self.parse.units_per_sec
    }
}

/// Parse vs decode over the corpus module set, in one long-lived
/// corpus-registered context (modules are erased per pass so arenas stay
/// bounded).
fn run_module_load(budget: f64) -> ModuleLoadReport {
    let texts = corpus_texts();
    let (mut ctx, _) = irdl_bench::corpus_context();

    // Encode every text once, from the measurement context itself, and
    // count ops on the probe pass.
    let mut encoded = Vec::with_capacity(texts.len());
    let mut total_ops = 0usize;
    for text in &texts {
        let before = ctx.num_ops();
        let module = parse_module(&mut ctx, text)
            .unwrap_or_else(|e| panic!("workload text parses: {e}\n{text}"));
        total_ops += ctx.num_ops() - before;
        encoded.push(encode_module(&ctx, module).expect("workload module encodes"));
        ctx.erase_op(module);
    }
    let text_bytes = texts.iter().map(String::len).sum();
    let bytecode_bytes = encoded.iter().map(Vec::len).sum();
    let expected = texts.len();

    let parse = measure(
        || {
            let mut ok = 0;
            for text in &texts {
                let module = parse_module(&mut ctx, text).expect("parses");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        expected,
        total_ops,
        budget,
    );
    let decode = measure(
        || {
            let mut ok = 0;
            for bytes in &encoded {
                let module = decode_module(&mut ctx, bytes).expect("decodes");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        expected,
        total_ops,
        budget,
    );

    ModuleLoadReport { modules: expected, ops: total_ops, text_bytes, bytecode_bytes, parse, decode }
}

struct WeightsReport {
    modules: usize,
    distinct_arrays: usize,
    elements: usize,
    text_bytes: usize,
    bytecode_bytes: usize,
    parse: Measurement,
    decode: Measurement,
}

impl WeightsReport {
    fn speedup(&self) -> f64 {
        self.decode.units_per_sec / self.parse.units_per_sec
    }
}

/// Parse vs decode over constant-heavy modules: `MODULES` modules of
/// `OPS_PER_MODULE` generic ops, each op carrying one array attribute of
/// `ELEMS` integer attributes. With `distinct_arrays = OPS_PER_MODULE`
/// every op carries its own array (the measured win is literal decode);
/// with a smaller count, ops share arrays — the pool stores each unique
/// array once while text repeats the full literal at every use.
fn run_weights(budget: f64, distinct_arrays: usize) -> WeightsReport {
    const MODULES: usize = 8;
    const OPS_PER_MODULE: usize = 16;
    const ELEMS: usize = 256;

    let mut ctx = Context::new();
    let weight = ctx.symbol("weight");
    let i64t = ctx.i64_type();
    let const_name = ctx.op_name("w", "const");
    let mut texts = Vec::with_capacity(MODULES);
    let mut encoded = Vec::with_capacity(MODULES);
    for m in 0..MODULES {
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let arrays: Vec<_> = (0..distinct_arrays)
            .map(|a| {
                let base = ((m * OPS_PER_MODULE + a) * ELEMS) as i128;
                let items: Vec<_> =
                    (0..ELEMS).map(|e| ctx.int_attr(base + e as i128, i64t)).collect();
                ctx.array_attr(items)
            })
            .collect();
        for o in 0..OPS_PER_MODULE {
            let value = arrays[o % arrays.len()];
            let op = ctx.create_op(
                irdl_ir::OperationState::new(const_name)
                    .add_result_types([i64t])
                    .add_attribute(weight, value),
            );
            ctx.append_op(block, op);
        }
        texts.push(op_to_string(&ctx, module));
        encoded.push(encode_module(&ctx, module).expect("weights module encodes"));
        ctx.erase_op(module);
    }
    let text_bytes = texts.iter().map(String::len).sum();
    let bytecode_bytes = encoded.iter().map(Vec::len).sum();
    let elements = MODULES * OPS_PER_MODULE * ELEMS;

    let parse = measure(
        || {
            let mut ok = 0;
            for text in &texts {
                let module = parse_module(&mut ctx, text).expect("parses");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        MODULES,
        elements,
        budget,
    );
    let decode = measure(
        || {
            let mut ok = 0;
            for bytes in &encoded {
                let module = decode_module(&mut ctx, bytes).expect("decodes");
                ok += 1;
                ctx.erase_op(module);
            }
            ok
        },
        MODULES,
        elements,
        budget,
    );

    WeightsReport { modules: MODULES, distinct_arrays, elements, text_bytes, bytecode_bytes, parse, decode }
}

struct BundleReport {
    dialects: usize,
    source_bytes: usize,
    artifact_bytes: usize,
    compile: Measurement,
    load: Measurement,
}

impl BundleReport {
    fn speedup(&self) -> f64 {
        self.load.units_per_sec / self.compile.units_per_sec
    }
}

/// Frontend compile vs artifact load of the full 28-dialect corpus.
fn run_bundle_cold_start(budget: f64) -> BundleReport {
    let natives = irdl_dialects::corpus_natives();
    let sources = irdl_dialects::corpus_sources();
    let bundle = DialectBundle::compile(&sources, &natives).expect("corpus compiles");
    let artifact = bundle.save().expect("corpus bundle saves");
    let dialects = bundle.recipes().len();
    let source_bytes = sources.iter().map(|(_, s)| s.len()).sum();

    let compile = measure(
        || {
            let bundle = DialectBundle::compile(&sources, &natives).expect("compiles");
            black_box(&bundle);
            1
        },
        1,
        1,
        budget,
    );
    let load = measure(
        || {
            let bundle = DialectBundle::load(&artifact, &natives).expect("loads");
            black_box(&bundle);
            1
        },
        1,
        1,
        budget,
    );

    BundleReport { dialects, source_bytes, artifact_bytes: artifact.len(), compile, load }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn json_f(value: f64) -> String {
    if value.is_finite() { format!("{value:.1}") } else { "null".to_string() }
}

fn weights_json(key: &str, weights: &WeightsReport) -> String {
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"modules\": {},\n",
            "    \"distinct_arrays_per_module\": {},\n",
            "    \"elements\": {},\n",
            "    \"text_bytes\": {},\n",
            "    \"bytecode_bytes\": {},\n",
            "    \"parse_elems_per_sec\": {},\n",
            "    \"decode_elems_per_sec\": {},\n",
            "    \"decode_speedup_vs_parse\": {}\n",
            "  }},\n",
        ),
        key,
        weights.modules,
        weights.distinct_arrays,
        weights.elements,
        weights.text_bytes,
        weights.bytecode_bytes,
        json_f(weights.parse.units_per_sec),
        json_f(weights.decode.units_per_sec),
        json_f(weights.speedup()),
    )
}

fn report_json(
    modules: &ModuleLoadReport,
    distinct: &WeightsReport,
    shared: &WeightsReport,
    bundles: &BundleReport,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"bytecode load paths\",\n",
            "  \"command\": \"cargo run -p irdl-bench --bin bytebench --release\",\n",
            "  \"required_decode_speedup\": {},\n",
            "  \"required_weights_distinct_speedup\": {},\n",
            "  \"required_weights_shared_speedup\": {},\n",
            "  \"required_load_speedup\": {},\n",
            "  \"module_load\": {{\n",
            "    \"modules\": {},\n",
            "    \"ops\": {},\n",
            "    \"text_bytes\": {},\n",
            "    \"bytecode_bytes\": {},\n",
            "    \"parse_ops_per_sec\": {},\n",
            "    \"parse_allocs_per_op\": {:.2},\n",
            "    \"decode_ops_per_sec\": {},\n",
            "    \"decode_allocs_per_op\": {:.2},\n",
            "    \"decode_speedup_vs_parse\": {}\n",
            "  }},\n",
            "{}",
            "{}",
            "  \"bundle_cold_start\": {{\n",
            "    \"dialects\": {},\n",
            "    \"source_bytes\": {},\n",
            "    \"artifact_bytes\": {},\n",
            "    \"compiles_per_sec\": {},\n",
            "    \"loads_per_sec\": {},\n",
            "    \"load_speedup_vs_compile\": {}\n",
            "  }}\n",
            "}}\n",
        ),
        REQUIRED_DECODE_SPEEDUP,
        REQUIRED_WEIGHTS_DISTINCT_SPEEDUP,
        REQUIRED_WEIGHTS_SHARED_SPEEDUP,
        REQUIRED_LOAD_SPEEDUP,
        modules.modules,
        modules.ops,
        modules.text_bytes,
        modules.bytecode_bytes,
        json_f(modules.parse.units_per_sec),
        modules.parse.allocs_per_unit,
        json_f(modules.decode.units_per_sec),
        modules.decode.allocs_per_unit,
        json_f(modules.speedup()),
        weights_json("weights_distinct", distinct),
        weights_json("weights_shared", shared),
        bundles.dialects,
        bundles.source_bytes,
        bundles.artifact_bytes,
        json_f(bundles.compile.units_per_sec),
        json_f(bundles.load.units_per_sec),
        json_f(bundles.speedup()),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode trims the per-workload budget for CI smoke runs; floors
    // stay enforced.
    let budget = if quick { 0.08 } else { 0.5 };

    eprintln!("generating corpus module workload...");
    let modules = run_module_load(budget);
    eprintln!(
        "module_load: {} modules / {} ops, text {} B vs bytecode {} B, \
         parse {:.0} ops/s ({:.2} allocs/op) vs decode {:.0} ops/s ({:.2} allocs/op), \
         speedup {:.2}x",
        modules.modules,
        modules.ops,
        modules.text_bytes,
        modules.bytecode_bytes,
        modules.parse.units_per_sec,
        modules.parse.allocs_per_unit,
        modules.decode.units_per_sec,
        modules.decode.allocs_per_unit,
        modules.speedup(),
    );

    let report_weights = |label: &str, weights: &WeightsReport| {
        eprintln!(
            "{label}: {} modules / {} elements ({} distinct arrays/module), \
             text {} B vs bytecode {} B, \
             parse {:.0} elems/s vs decode {:.0} elems/s, speedup {:.2}x",
            weights.modules,
            weights.elements,
            weights.distinct_arrays,
            weights.text_bytes,
            weights.bytecode_bytes,
            weights.parse.units_per_sec,
            weights.decode.units_per_sec,
            weights.speedup(),
        );
    };
    let distinct = run_weights(budget, 16);
    report_weights("weights_distinct", &distinct);
    let shared = run_weights(budget, 2);
    report_weights("weights_shared", &shared);

    let bundles = run_bundle_cold_start(budget);
    eprintln!(
        "bundle_cold_start: {} dialects, source {} B vs artifact {} B, \
         compile {:.2}/s vs load {:.2}/s, speedup {:.2}x",
        bundles.dialects,
        bundles.source_bytes,
        bundles.artifact_bytes,
        bundles.compile.units_per_sec,
        bundles.load.units_per_sec,
        bundles.speedup(),
    );

    let json = report_json(&modules, &distinct, &shared, &bundles);
    print!("{json}");
    if quick {
        // Smoke runs enforce the floors but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_bytecode.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bytecode.json");
        std::fs::write(path, &json).expect("write BENCH_bytecode.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if modules.speedup() < REQUIRED_DECODE_SPEEDUP {
        eprintln!(
            "FAIL: module decode speedup {:.2}x is below the required {REQUIRED_DECODE_SPEEDUP}x",
            modules.speedup()
        );
        failed = true;
    }
    if distinct.speedup() < REQUIRED_WEIGHTS_DISTINCT_SPEEDUP {
        eprintln!(
            "FAIL: distinct-weights decode speedup {:.2}x is below the required \
             {REQUIRED_WEIGHTS_DISTINCT_SPEEDUP}x",
            distinct.speedup()
        );
        failed = true;
    }
    if shared.speedup() < REQUIRED_WEIGHTS_SHARED_SPEEDUP {
        eprintln!(
            "FAIL: shared-weights decode speedup {:.2}x is below the required \
             {REQUIRED_WEIGHTS_SHARED_SPEEDUP}x",
            shared.speedup()
        );
        failed = true;
    }
    if bundles.speedup() < REQUIRED_LOAD_SPEEDUP {
        eprintln!(
            "FAIL: bundle load speedup {:.2}x is below the required {REQUIRED_LOAD_SPEEDUP}x",
            bundles.speedup()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
