//! Pattern-match dispatch benchmark: shared matcher automaton vs
//! per-pattern scan.
//!
//! The workload is the catalog shape root indexing cannot help with: `K`
//! declarative patterns all rooted at the same `pat.root` symbol,
//! discriminated only by the defining op of the root's first operand (see
//! `irdl_fuzz_lib::genpat`). The per-pattern scan must attempt all `K`
//! patterns on every `pat.root` it visits; the automaton resolves the
//! same question with one def-switch lookup. Measured catalog sizes:
//! {1, 32, 128, 512}.
//!
//! Per size, the timed module contains only *cold* roots (fed straight by
//! `pat.src`, so no pattern fires): a drive to fixpoint is then pure
//! match cost, and per-op cost is `drive_secs / ops`. The timing is
//! paired — each round runs scan then automaton back-to-back and the best
//! round wins — so load spikes degrade both sides instead of skewing the
//! ratio.
//!
//! Three properties are enforced on every run:
//!
//! - **gate**: at the 512-pattern catalog, automaton match throughput is
//!   at least 5x the scan's;
//! - **differential**: at *every* measured size, a mixed hot/cold module
//!   driven in both modes applies the same rewrites and prints
//!   byte-identical output;
//! - **compile-once**: matcher compilation happens at seal time only —
//!   zero compilations during measurement.
//!
//! A report-only section drives fuzz-generated corpus modules with the
//! canonicalization catalog auto-derived from the 28-dialect corpus, as a
//! realistic (root-diverse) counterpoint to the adversarial synthetic
//! shape.
//!
//! Results are written to `BENCH_matcher.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin matcherbench --release [-- --quick]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use irdl_fuzz_lib::{
    derive_canon_catalog, generate_module, pat_dialect_spec, synthetic_catalog, FuzzTarget,
    GenConfig, SplitMix64,
};
use irdl_ir::print::op_to_string;
use irdl_ir::Context;
use irdl_rewrite::{
    matcher_compile_count, parse_patterns, rewrite_greedily_matched, CheckLevel, MatcherMode,
    PatternSet,
};

/// Measured catalog sizes. The last one carries the throughput gate.
const SIZES: [usize; 4] = [1, 32, 128, 512];

/// Cold (never-matching) root ops in each timed module.
const COLD_OPS: usize = 256;

/// Hot (firing) roots in each differential module; capped by the catalog
/// size so every size stays exact.
const HOT_OPS: usize = 8;

/// Required automaton-vs-scan match-throughput ratio at the largest size.
const REQUIRED_SPEEDUP: f64 = 5.0;

/// Fuzz-generated corpus modules in the report-only section.
const CORPUS_MODULES: usize = 64;

/// A module of `cold` roots fed straight by the source (no pattern
/// matches them), plus `hot` roots each fed by a distinct unary op
/// (pattern `k` of the synthetic catalog fires on hot root `k`).
fn pat_module(cold: usize, hot: usize) -> String {
    let mut text = String::from("%s = \"pat.src\"() : () -> i32\n");
    for i in 0..cold {
        let _ = writeln!(text, "%c{i} = \"pat.root\"(%s, %s) : (i32, i32) -> i32");
    }
    for k in 0..hot {
        let _ = writeln!(text, "%u{k} = \"pat.u{k}\"(%s) : (i32) -> i32");
        let _ = writeln!(text, "%h{k} = \"pat.root\"(%u{k}, %s) : (i32, i32) -> i32");
    }
    text
}

/// Parses `text` in a fresh instance and drives it to a fixpoint in
/// `mode`; returns (drive seconds, rewrites, printed output).
fn drive(
    target: &FuzzTarget,
    patterns: &PatternSet,
    text: &str,
    mode: MatcherMode,
) -> (f64, usize, String) {
    let mut ctx = target.bundle.instantiate();
    let module = irdl_ir::parse::parse_module(&mut ctx, text).expect("bench module parses");
    let start = Instant::now();
    let stats = rewrite_greedily_matched(&mut ctx, module, patterns, CheckLevel::Off, mode)
        .expect("unchecked drive cannot fail");
    let secs = start.elapsed().as_secs_f64();
    (secs, stats.rewrites, op_to_string(&ctx, module))
}

struct SizeResult {
    patterns: usize,
    scan_ns_per_op: f64,
    auto_ns_per_op: f64,
    speedup: f64,
    rewrites: usize,
    outputs_identical: bool,
}

fn measure_size(size: usize, rounds: usize) -> SizeResult {
    let target = FuzzTarget::from_sources(
        &[("pat".to_string(), pat_dialect_spec(size))],
        &irdl::NativeRegistry::new(),
    )
    .expect("pat dialect compiles");
    let mut ctx = target.bundle.instantiate();
    let patterns = parse_patterns(&mut ctx, &synthetic_catalog(size)).expect("catalog parses");
    drop(ctx);
    patterns.seal();

    // Differential: a mixed module must drive identically in both modes,
    // with exactly one rewrite per hot root.
    let hot = HOT_OPS.min(size);
    let mixed = pat_module(COLD_OPS, hot);
    let (_, scan_rewrites, scan_out) = drive(&target, &patterns, &mixed, MatcherMode::Scan);
    let (_, auto_rewrites, auto_out) = drive(&target, &patterns, &mixed, MatcherMode::Auto);
    let outputs_identical = scan_out == auto_out && scan_rewrites == auto_rewrites;
    assert_eq!(scan_rewrites, hot, "every hot root fires exactly once");

    // Timed: cold-only module, paired rounds, best round wins.
    let timed = pat_module(COLD_OPS, 0);
    let mut scan_best = f64::INFINITY;
    let mut auto_best = f64::INFINITY;
    let mut speedup: f64 = 0.0;
    for _ in 0..rounds {
        let (scan_secs, r, _) = drive(&target, &patterns, &timed, MatcherMode::Scan);
        assert_eq!(r, 0, "cold module must not rewrite");
        let (auto_secs, r, _) = drive(&target, &patterns, &timed, MatcherMode::Auto);
        assert_eq!(r, 0, "cold module must not rewrite");
        scan_best = scan_best.min(scan_secs);
        auto_best = auto_best.min(auto_secs);
        speedup = speedup.max(scan_secs / auto_secs);
    }

    SizeResult {
        patterns: size,
        scan_ns_per_op: scan_best * 1e9 / COLD_OPS as f64,
        auto_ns_per_op: auto_best * 1e9 / COLD_OPS as f64,
        speedup,
        rewrites: scan_rewrites,
        outputs_identical,
    }
}

struct CorpusResult {
    derived_patterns: usize,
    modules: usize,
    scan_ms: f64,
    auto_ms: f64,
    speedup: f64,
    outputs_identical: bool,
}

/// Report-only: the auto-derived corpus canonicalization catalog over
/// fuzz-generated corpus modules. Root-diverse, so plain root indexing
/// already discriminates well — the realistic counterpoint.
fn measure_corpus(rounds: usize) -> CorpusResult {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let mut ctx: Context = target.bundle.instantiate();
    let (canon_text, derived) = derive_canon_catalog(&ctx, &target.catalog);
    let patterns = parse_patterns(&mut ctx, &canon_text).expect("canon catalog parses");
    drop(ctx);
    patterns.seal();

    let mut rng = SplitMix64::new(0xC0FFEE);
    let config = GenConfig::default();
    let texts: Vec<String> = (0..CORPUS_MODULES)
        .map(|_| {
            let mut ctx = target.bundle.instantiate();
            let module = generate_module(&mut ctx, &target.catalog, &config, &mut rng);
            op_to_string(&ctx, module)
        })
        .collect();

    let run = |mode: MatcherMode| -> (f64, Vec<(usize, String)>) {
        let start = Instant::now();
        let results =
            texts.iter().map(|t| { let (_, r, out) = drive(&target, &patterns, t, mode); (r, out) }).collect();
        (start.elapsed().as_secs_f64(), results)
    };
    let mut scan_best = f64::INFINITY;
    let mut auto_best = f64::INFINITY;
    let mut speedup: f64 = 0.0;
    let mut outputs_identical = true;
    for _ in 0..rounds {
        let (scan_secs, scan_results) = run(MatcherMode::Scan);
        let (auto_secs, auto_results) = run(MatcherMode::Auto);
        outputs_identical &= scan_results == auto_results;
        scan_best = scan_best.min(scan_secs);
        auto_best = auto_best.min(auto_secs);
        speedup = speedup.max(scan_secs / auto_secs);
    }

    CorpusResult {
        derived_patterns: derived,
        modules: CORPUS_MODULES,
        scan_ms: scan_best * 1e3,
        auto_ms: auto_best * 1e3,
        speedup,
        outputs_identical,
    }
}

fn report_json(sizes: &[SizeResult], corpus: &CorpusResult, compiles_measured: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"pattern dispatch: shared matcher automaton vs per-pattern scan\",\n");
    out.push_str("  \"command\": \"cargo run -p irdl-bench --bin matcherbench --release\",\n");
    out.push_str(&format!("  \"ops_per_module\": {COLD_OPS},\n"));
    out.push_str(&format!("  \"required_speedup_at_largest\": {REQUIRED_SPEEDUP:.1},\n"));
    out.push_str(&format!(
        "  \"required_speedup_note\": \"gated at the {}-pattern single-root catalog, \
         the shape root indexing cannot discriminate; smaller sizes are informational\",\n",
        SIZES[SIZES.len() - 1]
    ));
    out.push_str(&format!("  \"matcher_compiles_during_measurement\": {compiles_measured},\n"));
    out.push_str("  \"sizes\": [\n");
    for (i, s) in sizes.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"patterns\": {}, \"scan_ns_per_op\": {:.1}, \"auto_ns_per_op\": {:.1}, \
             \"speedup\": {:.2}, \"differential_rewrites\": {}, \"outputs_identical\": {} }}{}\n",
            s.patterns,
            s.scan_ns_per_op,
            s.auto_ns_per_op,
            s.speedup,
            s.rewrites,
            s.outputs_identical,
            if i + 1 == sizes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"corpus_canon\": {{ \"derived_patterns\": {}, \"modules\": {}, \
         \"scan_ms\": {:.2}, \"auto_ms\": {:.2}, \"speedup\": {:.2}, \
         \"outputs_identical\": {}, \"gated\": false }}\n",
        corpus.derived_patterns,
        corpus.modules,
        corpus.scan_ms,
        corpus.auto_ms,
        corpus.speedup,
        corpus.outputs_identical,
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 3 } else { 7 };

    let mut results = Vec::new();
    for size in SIZES {
        // Setup (dialect + catalog + matcher compilation) happens inside
        // measure_size before its timed rounds; the global compile-once
        // check below therefore brackets only the timed drives of the
        // *last* size plus the corpus section — so track per-size instead:
        // seal() compiles the matcher, and the timed rounds must not.
        let before = matcher_compile_count();
        let result = measure_size(size, rounds);
        let compiled = matcher_compile_count() - before;
        assert_eq!(
            compiled, 1,
            "size {size}: exactly one matcher compilation (at seal), got {compiled}"
        );
        eprintln!(
            "catalog {size:>4}: scan {:>8.1} ns/op, automaton {:>7.1} ns/op, {:.2}x \
             ({} differential rewrites, outputs identical: {})",
            result.scan_ns_per_op,
            result.auto_ns_per_op,
            result.speedup,
            result.rewrites,
            result.outputs_identical,
        );
        results.push(result);
    }

    let before_corpus = matcher_compile_count();
    let corpus = measure_corpus(rounds.min(3));
    let corpus_compiled = matcher_compile_count() - before_corpus;
    assert_eq!(corpus_compiled, 1, "corpus canon catalog compiles its matcher exactly once");
    eprintln!(
        "corpus canon (report-only): {} derived patterns, {} modules, scan {:.2} ms, \
         automaton {:.2} ms, {:.2}x",
        corpus.derived_patterns, corpus.modules, corpus.scan_ms, corpus.auto_ms, corpus.speedup,
    );

    let json = report_json(&results, &corpus, 0);
    print!("{json}");

    if quick {
        // Smoke runs enforce the gates but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_matcher.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json");
        std::fs::write(path, &json).expect("write BENCH_matcher.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    for s in &results {
        if !s.outputs_identical {
            eprintln!(
                "FAIL: catalog {}: scan and automaton drives diverge (this is a \
                 correctness bug, not a performance miss)",
                s.patterns
            );
            failed = true;
        }
    }
    if !corpus.outputs_identical {
        eprintln!("FAIL: corpus canon drive diverges between scan and automaton");
        failed = true;
    }
    let gated = results.last().expect("at least one size");
    if gated.speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "FAIL: {}-pattern speedup {:.2}x is below the required {REQUIRED_SPEEDUP:.1}x",
            gated.patterns, gated.speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
