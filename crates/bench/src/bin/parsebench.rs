//! Zero-dependency parse/print throughput benchmark.
//!
//! Measures the textual pipeline — lexing, parsing, and printing — over
//! three workloads:
//!
//! - **corpus_parse**: one generated module per instantiable operation of
//!   the 28-dialect corpus (the paper's §6 evaluation set), printed to text
//!   and re-parsed each pass;
//! - **genir_module_parse**: one large module holding every instantiable
//!   corpus op, parsed as a single text — the "big file" shape;
//! - **cmath_chain_parse**: a straight-line custom-syntax `cmath.mul` chain,
//!   exercising the dialect `OpSyntax` parse path;
//! - **print_buffered**: per-op printing into a caller-provided reusable
//!   buffer, which must be allocation-free at steady state.
//!
//! Timing uses `std::time::Instant` only. A counting global allocator
//! reports steady-state heap allocations, substantiating the zero-copy
//! claims directly. Parse throughput is gated against the pre-change
//! baseline recorded below: the run fails if the corpus workload does not
//! reach 1.5x the owned-token pipeline it replaced.
//!
//! Results are written to `BENCH_textio.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin parsebench --release [-- --quick]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::time::Instant;

use irdl::genir::{instantiate_op, Instantiation};
use irdl_ir::parse::parse_module;
use irdl_ir::print::{op_to_string, print_op_into, PrintScratch};
use irdl_ir::Context;

// ---------------------------------------------------------------------------
// Pre-change baseline
// ---------------------------------------------------------------------------

// Parse throughput of the owned-token pipeline (String-payload tokens,
// String-keyed scopes, format!-based printer) measured on this machine at
// the commit preceding the zero-copy change, release profile, default
// iteration budget. The floor below is enforced against these numbers.
const BASELINE_CORPUS_PARSE_OPS_PER_SEC: f64 = 789_000.0;
const BASELINE_GENIR_PARSE_OPS_PER_SEC: f64 = 638_000.0;
const BASELINE_CHAIN_PARSE_OPS_PER_SEC: f64 = 607_500.0;
const BASELINE_PRINT_ALLOCS_PER_OP: f64 = 19.3;

const REQUIRED_PARSE_SPEEDUP: f64 = 1.5;

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counts every allocation request so a measured pass can report how many
/// times it hit the heap. Deallocations are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

use std::sync::atomic::{AtomicU64, Ordering};

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// A set of module texts parsed into a long-lived corpus-registered context
/// each pass; parsed modules are erased so arenas stay bounded.
struct ParseWorkload {
    ctx: Context,
    texts: Vec<String>,
    /// Total operations across all texts, counted once on a probe parse.
    total_ops: usize,
    /// Total source bytes across all texts.
    bytes: usize,
}

impl ParseWorkload {
    fn new(mut ctx: Context, texts: Vec<String>) -> ParseWorkload {
        let bytes = texts.iter().map(String::len).sum();
        let mut total_ops = 0usize;
        for text in &texts {
            let before = ctx.num_ops();
            let module = parse_module(&mut ctx, text)
                .unwrap_or_else(|e| panic!("workload text parses: {e}\n{text}"));
            total_ops += ctx.num_ops() - before;
            ctx.erase_op(module);
        }
        ParseWorkload { ctx, texts, total_ops, bytes }
    }

    /// One pass: parse every text, erase the parsed module.
    fn pass(&mut self) -> usize {
        let mut ok = 0;
        for text in &self.texts {
            let module = parse_module(&mut self.ctx, text).expect("parses");
            ok += 1;
            self.ctx.erase_op(module);
        }
        ok
    }
}

/// Generates `(per-op module texts, one combined large module text)` from
/// the corpus: every instantiable operation is built from its compiled
/// constraints via `genir` and printed.
fn corpus_texts() -> (Vec<String>, String) {
    let mut ctx = Context::new();
    let natives = irdl_dialects::corpus_natives();
    let mut texts = Vec::new();

    // The combined module accumulates every instance in one body.
    let big_module = ctx.create_module();
    let big_block = ctx.module_block(big_module);

    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(_) => {}
                    // CFG terminators need successor context; skip, as the
                    // corpus generation test does.
                    Instantiation::Skipped(_) => {
                        ctx.erase_op(module);
                        continue;
                    }
                }
                texts.push(op_to_string(&ctx, module));
                ctx.erase_op(module);
                if instantiate_op(&mut ctx, &op, big_block).is_skipped() {
                    unreachable!("skipped ops are filtered above");
                }
            }
        }
    }
    let big = op_to_string(&ctx, big_module);
    (texts, big)
}

trait InstantiationExt {
    fn is_skipped(&self) -> bool;
}

impl InstantiationExt for Instantiation {
    fn is_skipped(&self) -> bool {
        matches!(self, Instantiation::Skipped(_))
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Measurement {
    units_per_sec: f64,
    allocs_per_unit: f64,
}

/// Warm up, calibrate an iteration count targeting `budget` seconds of
/// measurement, then time the pass and report per-unit throughput plus
/// steady-state allocations. `units` is the work per pass (ops parsed or
/// printed).
fn measure(mut pass: impl FnMut() -> usize, expected: usize, units: usize, budget: f64) -> Measurement {
    for _ in 0..3 {
        let ok = pass();
        assert_eq!(ok, expected, "benchmark pass must process every unit");
    }
    let start = Instant::now();
    black_box(pass());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget / once) as usize).clamp(3, 50_000);

    // Best of three timed repeats: scheduling noise only ever slows a run
    // down, so the fastest repeat is the most faithful estimate.
    let mut best_secs = f64::INFINITY;
    let allocs_before = allocs();
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(pass());
        }
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
    }
    let allocs_after = allocs();
    Measurement {
        units_per_sec: (units * iters) as f64 / best_secs,
        allocs_per_unit: (allocs_after - allocs_before) as f64 / (3 * units * iters) as f64,
    }
}

struct ParseReport {
    name: &'static str,
    modules: usize,
    ops: usize,
    bytes: usize,
    measurement: Measurement,
    baseline_ops_per_sec: f64,
}

impl ParseReport {
    fn mb_per_sec(&self) -> f64 {
        // Scale bytes/pass by the measured op throughput.
        self.measurement.units_per_sec * self.bytes as f64 / (self.ops as f64 * 1e6)
    }

    fn speedup(&self) -> f64 {
        if self.baseline_ops_per_sec > 0.0 {
            self.measurement.units_per_sec / self.baseline_ops_per_sec
        } else {
            f64::NAN
        }
    }
}

fn run_parse(
    name: &'static str,
    ctx: Context,
    texts: Vec<String>,
    baseline: f64,
    budget: f64,
) -> ParseReport {
    let mut w = ParseWorkload::new(ctx, texts);
    let expected = w.texts.len();
    let units = w.total_ops;
    let measurement = measure(|| w.pass(), expected, units, budget);
    ParseReport {
        name,
        modules: expected,
        ops: w.total_ops,
        bytes: w.bytes,
        measurement,
        baseline_ops_per_sec: baseline,
    }
}

/// Per-op printing into one reusable buffer with reusable id-map scratch.
/// Once buffer and map capacities settle during warmup, the steady-state
/// passes must not touch the heap at all.
fn run_print(big_text: &str, budget: f64) -> (usize, Measurement) {
    let mut ctx = Context::new();
    irdl_dialects::register_corpus(&mut ctx).expect("corpus compiles");
    let module = parse_module(&mut ctx, big_text).expect("big module parses");
    let block = ctx.module_block(module);
    let ops: Vec<_> = block.ops(&ctx).to_vec();
    let expected = ops.len();
    let mut out = String::new();
    let mut scratch = PrintScratch::default();
    let measurement = measure(
        || {
            let mut ok = 0;
            for &op in &ops {
                out.clear();
                print_op_into(&ctx, op, &mut out, &mut scratch);
                black_box(out.len());
                ok += 1;
            }
            ok
        },
        expected,
        expected,
        budget,
    );
    (expected, measurement)
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn json_f(value: f64) -> String {
    if value.is_finite() { format!("{value:.1}") } else { "null".to_string() }
}

fn report_json(
    parses: &[ParseReport],
    print_ops: usize,
    print: &Measurement,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"zero-copy text pipeline\",\n");
    out.push_str("  \"command\": \"cargo run -p irdl-bench --bin parsebench --release\",\n");
    out.push_str(&format!(
        "  \"required_parse_speedup\": {REQUIRED_PARSE_SPEEDUP},\n"
    ));
    out.push_str(&format!(
        concat!(
            "  \"baseline\": {{\n",
            "    \"note\": \"owned-token pipeline at the pre-change commit, this machine\",\n",
            "    \"corpus_parse_ops_per_sec\": {},\n",
            "    \"genir_module_parse_ops_per_sec\": {},\n",
            "    \"cmath_chain_parse_ops_per_sec\": {},\n",
            "    \"print_allocs_per_op\": {}\n",
            "  }},\n",
        ),
        json_f(BASELINE_CORPUS_PARSE_OPS_PER_SEC),
        json_f(BASELINE_GENIR_PARSE_OPS_PER_SEC),
        json_f(BASELINE_CHAIN_PARSE_OPS_PER_SEC),
        json_f(BASELINE_PRINT_ALLOCS_PER_OP),
    ));
    out.push_str("  \"workloads\": {\n");
    for r in parses {
        out.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"modules\": {},\n",
                "      \"ops\": {},\n",
                "      \"source_bytes\": {},\n",
                "      \"parse_ops_per_sec\": {},\n",
                "      \"parse_mb_per_sec\": {},\n",
                "      \"parse_allocs_per_op\": {:.2},\n",
                "      \"speedup_vs_baseline\": {}\n",
                "    }},\n",
            ),
            r.name,
            r.modules,
            r.ops,
            r.bytes,
            json_f(r.measurement.units_per_sec),
            json_f(r.mb_per_sec()),
            r.measurement.allocs_per_unit,
            json_f(r.speedup()),
        ));
    }
    out.push_str(&format!(
        concat!(
            "    \"print_buffered\": {{\n",
            "      \"ops\": {},\n",
            "      \"print_ops_per_sec\": {},\n",
            "      \"print_allocs_per_op\": {:.2}\n",
            "    }}\n",
            "  }}\n",
            "}}\n",
        ),
        print_ops,
        json_f(print.units_per_sec),
        print.allocs_per_unit,
    ));
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode trims the per-workload budget for CI smoke runs; floors
    // stay enforced.
    let budget = if quick { 0.06 } else { 0.4 };

    eprintln!("generating corpus texts...");
    let (texts, big) = corpus_texts();
    let chain = irdl_bench::mul_chain_source(2048);

    let parses = vec![
        run_parse(
            "corpus_parse",
            irdl_bench::corpus_context().0,
            texts,
            BASELINE_CORPUS_PARSE_OPS_PER_SEC,
            budget,
        ),
        run_parse(
            "genir_module_parse",
            irdl_bench::corpus_context().0,
            vec![big.clone()],
            BASELINE_GENIR_PARSE_OPS_PER_SEC,
            budget,
        ),
        run_parse(
            "cmath_chain_parse",
            irdl_bench::showcase_context(),
            vec![chain],
            BASELINE_CHAIN_PARSE_OPS_PER_SEC,
            budget,
        ),
    ];
    let (print_ops, print) = run_print(&big, budget);

    let json = report_json(&parses, print_ops, &print);
    print!("{json}");
    for r in &parses {
        eprintln!(
            "{}: {} modules / {} ops / {} bytes, {:.0} ops/s ({:.1} MB/s), \
             {:.2} allocs/op, speedup {:.2}x",
            r.name,
            r.modules,
            r.ops,
            r.bytes,
            r.measurement.units_per_sec,
            r.mb_per_sec(),
            r.measurement.allocs_per_unit,
            r.speedup(),
        );
    }
    eprintln!(
        "print_buffered: {} ops, {:.0} ops/s, {:.2} allocs/op",
        print_ops, print.units_per_sec, print.allocs_per_unit,
    );

    if quick {
        // Smoke runs enforce the floors but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_textio.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_textio.json");
        std::fs::write(path, &json).expect("write BENCH_textio.json");
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    let corpus = &parses[0];
    if corpus.baseline_ops_per_sec > 0.0 && corpus.speedup() < REQUIRED_PARSE_SPEEDUP {
        eprintln!(
            "FAIL: corpus parse speedup {:.2}x is below the required {REQUIRED_PARSE_SPEEDUP}x",
            corpus.speedup()
        );
        failed = true;
    }
    if BASELINE_PRINT_ALLOCS_PER_OP > 0.0 && print.allocs_per_unit > 0.0 {
        eprintln!(
            "FAIL: buffered printer allocates {:.2} per op at steady state (must be 0)",
            print.allocs_per_unit
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
