//! Zero-dependency verifier throughput benchmark.
//!
//! Compares the retained tree-walking constraint interpreter
//! ([`CompiledOp::verify`]) against the registered flat-program fast path
//! over two workloads:
//!
//! - **corpus**: one generated, verifying instance of every instantiable
//!   operation of the 28-dialect corpus (the paper's §6 evaluation set);
//! - **cmath_mul_chain**: a straight-line module of `cmath.mul` ops over
//!   `!cmath.complex<f32>` — the Listing-1 showcase dialect — which is the
//!   shape the rewrite driver re-verifies between pattern applications.
//!
//! Timing uses `std::time::Instant` only. A counting global allocator
//! reports steady-state heap allocations per verification pass, which
//! substantiates the "allocation-free success path" claim directly: after
//! warm-up the fast path must not allocate on valid IR.
//!
//! Results are written to `BENCH_verifier.json` at the repository root.
//!
//! ```text
//! cargo run -p irdl-bench --bin verifybench --release [-- --quick]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use irdl::genir::{instantiate_op, Instantiation};
use irdl::program::{EvalScratch, OpProgram};
use irdl::verifier::CompiledOp;
use irdl_ir::{Context, OpRef, OpVerifier};

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

/// Counts every allocation request so a measured pass can report how many
/// times it hit the heap. Deallocations are not interesting here.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// One operation kind: the tree interpreter, the flat program, and the
/// registered production verifier (flat program + lazy diagnostics).
struct Kind {
    compiled: Arc<CompiledOp>,
    program: OpProgram,
    registered: Arc<dyn OpVerifier>,
}

/// A set of live, valid op instances, each pointing at its kind.
struct Workload {
    ctx: Context,
    kinds: Vec<Kind>,
    /// `(kind index, instance)` pairs — the unit of one verification.
    instances: Vec<(usize, OpRef)>,
}

impl Workload {
    /// One pass of the tree-walking interpreter over every instance.
    fn pass_tree(&self) -> usize {
        let mut ok = 0;
        for &(kind, op) in &self.instances {
            if self.kinds[kind].compiled.verify(&self.ctx, op).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// One pass of the registered fast-path verifier (the production
    /// entry point: flat program, verdict cache, lazy diagnostics).
    fn pass_fast(&self) -> usize {
        let mut ok = 0;
        for &(kind, op) in &self.instances {
            if self.kinds[kind].registered.verify(&self.ctx, op).is_ok() {
                ok += 1;
            }
        }
        ok
    }

    /// One pass of the bare declarative program with caller-owned scratch
    /// (the shape `ModuleVerifier` reuse exposes).
    fn pass_program(&self, scratch: &mut EvalScratch) -> usize {
        let mut ok = 0;
        for &(kind, op) in &self.instances {
            if self.kinds[kind].program.check(&self.ctx, op, scratch) {
                ok += 1;
            }
        }
        ok
    }
}

/// Every instantiable operation of the 28-dialect corpus, one instance
/// each, generated from its own compiled constraints.
fn corpus_workload() -> Workload {
    let mut ctx = Context::new();
    let natives = irdl_dialects::corpus_natives();
    let mut kinds = Vec::new();
    let mut instances = Vec::new();
    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                let built = match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(built) => built,
                    // CFG terminators need successor context; skip, as the
                    // corpus generation test does.
                    Instantiation::Skipped(_) => continue,
                };
                let registered = ctx
                    .op_info(built)
                    .and_then(|info| info.verifier.clone())
                    .expect("compiled op has a registered verifier");
                let program = OpProgram::build(&mut ctx, &op);
                instances.push((kinds.len(), built));
                kinds.push(Kind { compiled: op, program, registered });
            }
        }
    }
    Workload { ctx, kinds, instances }
}

/// A straight-line chain of `n` `cmath.mul` ops over `!cmath.complex<f32>`.
fn mul_chain_workload(n: usize) -> Workload {
    let mut ctx = Context::new();
    let natives = irdl::NativeRegistry::default();
    let file =
        irdl::parse_irdl(irdl_dialects::showcase::SHOWCASE_SPEC).expect("showcase parses");
    let mul_name = ctx.op_name("cmath", "mul");
    let mut mul = None;
    for dialect in &file.dialects {
        for op in irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
            .expect("showcase compiles")
        {
            if op.name == mul_name {
                mul = Some(op);
            }
        }
    }
    let mul = mul.expect("showcase defines cmath.mul");
    let registered = ctx
        .registry()
        .op_info(mul_name.dialect, mul_name.name)
        .and_then(|info| info.verifier.clone())
        .expect("cmath.mul has a registered verifier");
    let program = OpProgram::build(&mut ctx, &mul);

    let module = irdl_bench::mul_chain_module(&mut ctx, n);
    let block = ctx.module_block(module);
    let instances: Vec<(usize, OpRef)> = block
        .ops(&ctx)
        .iter()
        .filter(|op| op.name(&ctx) == mul_name)
        .map(|&op| (0usize, op))
        .collect();
    assert_eq!(instances.len(), n);
    Workload { ctx, kinds: vec![Kind { compiled: mul, program, registered }], instances }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Measurement {
    ops_per_sec: f64,
    allocs_per_pass: f64,
}

/// Warm up and calibrate an iteration count targeting `budget` seconds per
/// timed round.
fn calibrate(pass: &mut impl FnMut() -> usize, expected: usize, budget: f64) -> usize {
    for _ in 0..3 {
        let ok = pass();
        assert_eq!(ok, expected, "benchmark pass must verify every instance");
    }
    let start = Instant::now();
    black_box(pass());
    let once = start.elapsed().as_secs_f64().max(1e-9);
    ((budget / once) as usize).clamp(5, 50_000)
}

/// One timed round of `iters` passes; returns elapsed seconds and the
/// number of heap allocations the round performed.
fn round(pass: &mut impl FnMut() -> usize, iters: usize) -> (f64, u64) {
    let allocs_before = allocs();
    let start = Instant::now();
    for _ in 0..iters {
        black_box(pass());
    }
    (start.elapsed().as_secs_f64(), allocs() - allocs_before)
}

/// Accumulates interleaved rounds into a best-observed measurement.
/// Scheduling noise only ever slows a round down, so the fastest round is
/// the most faithful estimate; interleaving the competing passes means a
/// load spike degrades all of them rather than skewing their ratio.
struct Bestof {
    iters: usize,
    best_secs: f64,
    total_allocs: u64,
    rounds: usize,
}

impl Bestof {
    fn new(iters: usize) -> Bestof {
        Bestof { iters, best_secs: f64::INFINITY, total_allocs: 0, rounds: 0 }
    }

    /// Times one round and returns the per-pass seconds it observed.
    fn record(&mut self, pass: &mut impl FnMut() -> usize) -> f64 {
        let (secs, allocs) = round(pass, self.iters);
        self.best_secs = self.best_secs.min(secs);
        self.total_allocs += allocs;
        self.rounds += 1;
        secs / self.iters as f64
    }

    fn finish(&self, expected: usize) -> Measurement {
        Measurement {
            ops_per_sec: (expected * self.iters) as f64 / self.best_secs,
            allocs_per_pass: self.total_allocs as f64 / (self.rounds * self.iters) as f64,
        }
    }
}

struct WorkloadReport {
    name: &'static str,
    instances: usize,
    tree: Measurement,
    fast: Measurement,
    program: Measurement,
    /// Best tree/fast ratio over rounds where the two passes ran
    /// back-to-back, so a load spike degrades both sides rather than
    /// skewing the comparison. This is the gated quantity.
    speedup: f64,
}

fn run_workload(name: &'static str, workload: &mut Workload, budget: f64) -> WorkloadReport {
    let expected = workload.instances.len();
    let mut scratch = EvalScratch::new();

    let tree_iters = calibrate(&mut || workload.pass_tree(), expected, budget);
    let fast_iters = calibrate(&mut || workload.pass_fast(), expected, budget);
    let program_iters =
        calibrate(&mut || workload.pass_program(&mut scratch), expected, budget);

    let mut tree = Bestof::new(tree_iters);
    let mut fast = Bestof::new(fast_iters);
    let mut program = Bestof::new(program_iters);
    let mut speedup: f64 = 0.0;
    for _ in 0..3 {
        let tree_pass_secs = tree.record(&mut || workload.pass_tree());
        let fast_pass_secs = fast.record(&mut || workload.pass_fast());
        speedup = speedup.max(tree_pass_secs / fast_pass_secs);
        program.record(&mut || workload.pass_program(&mut scratch));
    }
    WorkloadReport {
        name,
        instances: expected,
        tree: tree.finish(expected),
        fast: fast.finish(expected),
        program: program.finish(expected),
        speedup,
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn json_f(value: f64) -> String {
    if value.is_finite() { format!("{value:.1}") } else { "null".to_string() }
}

fn report_json(reports: &[WorkloadReport], cache: (usize, u64, u64)) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"verifier fast path vs tree interpreter\",\n");
    out.push_str(
        "  \"command\": \"cargo run -p irdl-bench --bin verifybench --release\",\n",
    );
    out.push_str("  \"required_speedup\": 1.5,\n  \"workloads\": {\n");
    let mut worst: f64 = f64::INFINITY;
    for (i, r) in reports.iter().enumerate() {
        worst = worst.min(r.speedup);
        out.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"instances\": {},\n",
                "      \"tree_ops_per_sec\": {},\n",
                "      \"fast_ops_per_sec\": {},\n",
                "      \"speedup\": {:.2},\n",
                "      \"program_check_ops_per_sec\": {},\n",
                "      \"tree_allocs_per_pass\": {},\n",
                "      \"fast_allocs_per_pass\": {},\n",
                "      \"program_check_allocs_per_pass\": {}\n",
                "    }}{}\n",
            ),
            r.name,
            r.instances,
            json_f(r.tree.ops_per_sec),
            json_f(r.fast.ops_per_sec),
            r.speedup,
            json_f(r.program.ops_per_sec),
            json_f(r.tree.allocs_per_pass),
            json_f(r.fast.allocs_per_pass),
            json_f(r.program.allocs_per_pass),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    let (entries, hits, misses) = cache;
    out.push_str(&format!(
        concat!(
            "  }},\n",
            "  \"min_speedup\": {:.2},\n",
            "  \"verdict_cache\": {{ \"entries\": {}, \"hits\": {}, \"misses\": {} }}\n",
            "}}\n",
        ),
        worst, entries, hits, misses,
    ));
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode trims the per-workload budget for CI smoke runs; the
    // speedup floor stays enforced, so the budget stays large enough for
    // the tree/fast ratio to be stable on a loaded machine.
    let budget = if quick { 0.2 } else { 0.4 };
    let mut corpus = corpus_workload();
    let mut chain = mul_chain_workload(512);

    let reports = vec![
        run_workload("corpus", &mut corpus, budget),
        run_workload("cmath_mul_chain", &mut chain, budget),
    ];

    // Cache statistics from the corpus context, where kind diversity makes
    // memoization do real work.
    let (hits, misses) = corpus.ctx.verdict_cache_stats();
    let cache = (corpus.ctx.verdict_cache_len(), hits, misses);

    let json = report_json(&reports, cache);
    print!("{json}");
    for r in &reports {
        eprintln!(
            "{}: {} instances, tree {:.0} ops/s, fast {:.0} ops/s ({:.2}x paired), \
             fast allocs/pass {:.1}",
            r.name, r.instances, r.tree.ops_per_sec, r.fast.ops_per_sec,
            r.speedup, r.fast.allocs_per_pass,
        );
    }

    if quick {
        // Smoke runs enforce the floors but must not overwrite the
        // committed full-budget numbers.
        eprintln!("quick mode: not rewriting BENCH_verifier.json");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verifier.json");
        std::fs::write(path, &json).expect("write BENCH_verifier.json");
        eprintln!("wrote {path}");
    }

    let worst = reports.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    if worst < 1.5 {
        eprintln!("FAIL: speedup {worst:.2}x is below the required 1.5x");
        std::process::exit(1);
    }
}
