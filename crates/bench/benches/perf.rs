//! Performance benches on the core pipeline: IRDL parsing and compilation,
//! verifier throughput (IRDL-synthesized vs hand-written native baseline —
//! the C++-verifier world the paper's flow replaces), textual round-trips,
//! and the greedy rewrite driver.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irdl_bench::{mul_chain_module, mul_chain_source, showcase_context};
use irdl_dialects::showcase::{build_conorm_workload, CONORM_PATTERN, SHOWCASE_SPEC};
use irdl_ir::print::op_to_string;
use irdl_ir::verify::verify_op;
use irdl_ir::{Context, OpRef};

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("irdl_frontend");
    let spv = irdl_dialects::corpus_sources()
        .into_iter()
        .find(|(name, _)| name == "spv")
        .expect("spv in corpus")
        .1;

    group.bench_function("parse_cmath_spec", |b| {
        b.iter(|| black_box(irdl::parse_irdl(SHOWCASE_SPEC).unwrap()))
    });
    group.bench_function("parse_spv_spec_227_ops", |b| {
        b.iter(|| black_box(irdl::parse_irdl(&spv).unwrap()))
    });
    group.bench_function("compile_cmath_spec", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            irdl::register_dialects(&mut ctx, SHOWCASE_SPEC).unwrap();
            black_box(ctx.num_types())
        })
    });
    group.bench_function("compile_spv_spec_227_ops", |b| {
        let natives = irdl_dialects::corpus_natives();
        b.iter(|| {
            let mut ctx = Context::new();
            irdl::register_dialects_with(&mut ctx, &spv, &natives).unwrap();
            black_box(ctx.num_types())
        })
    });
    group.finish();
}

/// Registers a `cmath`-shaped dialect whose verifier is a hand-written
/// native closure (the Listing 2 baseline) instead of IRDL constraints.
fn native_baseline_context() -> Context {
    let mut ctx = Context::new();
    irdl_dialects::showcase::register_showcase(&mut ctx).expect("showcase");
    // Replace the IRDL-synthesized verifier of cmath.mul with a native one
    // equivalent to Listing 2's MulOp::verify().
    let cmath = ctx.symbol("cmath");
    let mul = ctx.symbol("mul");
    let complex = ctx.symbol("complex");
    let dialect = ctx.registry_mut().dialect_mut(cmath).expect("cmath registered");
    let mut info = dialect.op(mul).expect("mul registered").clone();
    info.verifier = Some(Rc::new(move |ctx: &Context, op: OpRef| {
        if op.num_operands(ctx) != 2 || op.num_results(ctx) != 1 || op.num_regions(ctx) != 0 {
            return Err(irdl_ir::Diagnostic::new("mul expects 2 operands, 1 result"));
        }
        let lhs = op.operand(ctx, 0).ty(ctx);
        let rhs = op.operand(ctx, 1).ty(ctx);
        let res = op.result_types(ctx)[0];
        if lhs.parametric_name(ctx).map(|(_, n)| n) != Some(complex) {
            return Err(irdl_ir::Diagnostic::new("operand is not a complex type"));
        }
        if lhs != rhs || rhs != res {
            return Err(irdl_ir::Diagnostic::new("mismatched types"));
        }
        Ok(())
    }));
    dialect.add_op(info);
    ctx
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    for n in [100usize, 1000] {
        // IRDL-synthesized verifier.
        let mut ctx = showcase_context();
        let module = mul_chain_module(&mut ctx, n);
        group.bench_with_input(BenchmarkId::new("irdl_synthesized", n), &n, |b, _| {
            b.iter(|| black_box(verify_op(&ctx, module).is_ok()))
        });
        // Hand-written native verifier (the C++-style baseline).
        let mut native_ctx = native_baseline_context();
        let native_module = mul_chain_module(&mut native_ctx, n);
        group.bench_with_input(BenchmarkId::new("native_baseline", n), &n, |b, _| {
            b.iter(|| black_box(verify_op(&native_ctx, native_module).is_ok()))
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("text");
    for n in [100usize, 1000] {
        let source = mul_chain_source(n);
        group.bench_with_input(BenchmarkId::new("parse_custom_syntax", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = showcase_context();
                black_box(irdl_ir::parse::parse_module(&mut ctx, &source).unwrap())
            })
        });
        let mut ctx = showcase_context();
        let module = mul_chain_module(&mut ctx, n);
        group.bench_with_input(BenchmarkId::new("print_custom_syntax", n), &n, |b, _| {
            b.iter(|| black_box(op_to_string(&ctx, module).len()))
        });
    }
    group.finish();
}

fn bench_rewriting(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    group.sample_size(20);
    for n in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("conorm_greedy", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = showcase_context();
                let module = build_conorm_workload(&mut ctx, n).unwrap();
                let patterns = irdl_rewrite::parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
                let stats = irdl_rewrite::rewrite_greedily(&mut ctx, module, &patterns);
                assert_eq!(stats.rewrites, n);
                black_box(stats.rewrites)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_verification, bench_roundtrip, bench_rewriting);
criterion_main!(benches);
