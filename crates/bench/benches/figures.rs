//! One benchmark per paper table/figure: each target regenerates the
//! corresponding artifact from the compiled corpus, so `cargo bench --bench
//! figures` is the "reproduce the evaluation" harness. Timings measure the
//! cost of the introspection/analysis pipeline itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use irdl_analysis::{figures, CorpusStats};
use irdl_bench::corpus_context;

fn bench_figures(c: &mut Criterion) {
    let (ctx, names) = corpus_context();
    let stats = CorpusStats::collect(&ctx, &names);

    let mut group = c.benchmark_group("figures");
    group.sample_size(20);

    group.bench_function("table1", |b| b.iter(|| black_box(figures::table1())));
    group.bench_function("fig3_timeline", |b| b.iter(|| black_box(figures::fig3())));
    group.bench_function("fig4_ops_per_dialect", |b| {
        b.iter(|| black_box(figures::fig4(&stats)))
    });
    group.bench_function("fig5a_operands", |b| b.iter(|| black_box(figures::fig5a(&stats))));
    group.bench_function("fig5b_variadic_operands", |b| {
        b.iter(|| black_box(figures::fig5b(&stats)))
    });
    group.bench_function("fig6a_results", |b| b.iter(|| black_box(figures::fig6a(&stats))));
    group.bench_function("fig6b_variadic_results", |b| {
        b.iter(|| black_box(figures::fig6b(&stats)))
    });
    group.bench_function("fig7a_attributes", |b| b.iter(|| black_box(figures::fig7a(&stats))));
    group.bench_function("fig7b_regions", |b| b.iter(|| black_box(figures::fig7b(&stats))));
    group.bench_function("fig8_param_kinds", |b| b.iter(|| black_box(figures::fig8(&stats))));
    group.bench_function("fig9_type_expressiveness", |b| {
        b.iter(|| black_box(figures::fig9(&stats)))
    });
    group.bench_function("fig10_attr_expressiveness", |b| {
        b.iter(|| black_box(figures::fig10(&stats)))
    });
    group.bench_function("fig11_op_constraints", |b| {
        b.iter(|| black_box(figures::fig11(&stats)))
    });
    group.bench_function("fig12_native_census", |b| {
        b.iter(|| black_box(figures::fig12(&stats)))
    });
    group.finish();

    // The pipeline feeding every figure: compiling the 28-dialect corpus
    // (942 ops) from IRDL text into a live registry, then collecting stats.
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("compile_28_dialects", |b| {
        b.iter(|| {
            let (ctx, names) = corpus_context();
            black_box((ctx.num_types(), names.len()))
        })
    });
    group.bench_function("collect_stats", |b| {
        b.iter(|| black_box(CorpusStats::collect(&ctx, &names).num_ops()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
