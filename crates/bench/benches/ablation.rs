//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - constraint variables vs exact type constraints (the cost of the
//!   binding environment),
//! - `AnyOf` alternative ordering (the cost of backtracking),
//! - custom declarative formats vs the generic print/parse path,
//! - structural uniquing (interning hit path vs fresh construction).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use irdl_bench::mul_chain_module;
use irdl_ir::print::{op_to_string, op_to_string_generic};
use irdl_ir::verify::verify_op;
use irdl_ir::Context;

/// cmath.mul spec'd with a constraint variable (the paper's Listing 3).
const VAR_SPEC: &str = r#"
Dialect cmath {
  Type complex { Parameters (elementType: !AnyOf<!f32, !f64>) }
  Operation mul {
    ConstraintVar (!T: !complex<!AnyOf<!f32, !f64>>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
  }
}
"#;

/// The same op pinned to exact types: no variables, no equality checks.
const EXACT_SPEC: &str = r#"
Dialect cmath {
  Type complex { Parameters (elementType: !AnyOf<!f32, !f64>) }
  Operation mul {
    Operands (lhs: !complex<!f32>, rhs: !complex<!f32>)
    Results (res: !complex<!f32>)
  }
}
"#;

fn context_with(spec: &str) -> Context {
    let mut ctx = Context::new();
    irdl::register_dialects(&mut ctx, spec).expect("spec compiles");
    ctx
}

fn bench_constraint_vars(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_constraint_vars");
    let n = 1000;
    let mut var_ctx = context_with(VAR_SPEC);
    let var_module = mul_chain_module(&mut var_ctx, n);
    group.bench_function("with_constraint_var", |b| {
        b.iter(|| black_box(verify_op(&var_ctx, var_module).is_ok()))
    });
    let mut exact_ctx = context_with(EXACT_SPEC);
    let exact_module = mul_chain_module(&mut exact_ctx, n);
    group.bench_function("with_exact_types", |b| {
        b.iter(|| black_box(verify_op(&exact_ctx, exact_module).is_ok()))
    });
    group.finish();
}

fn bench_anyof_ordering(c: &mut Criterion) {
    // The operand type is f64: with `AnyOf<!f32, !f64>` the first
    // alternative fails (one rollback); with `AnyOf<!f64, !f32>` the first
    // alternative hits.
    let miss_first = r#"
Dialect t { Operation use_val { Operands (x: AnyOf<!f32, !f64>) } }
"#;
    let hit_first = r#"
Dialect t { Operation use_val { Operands (x: AnyOf<!f64, !f32>) } }
"#;
    let mut group = c.benchmark_group("ablation_anyof_order");
    for (label, spec) in [("miss_first", miss_first), ("hit_first", hit_first)] {
        let mut ctx = context_with(spec);
        let f64 = ctx.f64_type();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let src = ctx.op_name("test", "src");
        let def = ctx.create_op(irdl_ir::OperationState::new(src).add_result_types([f64]));
        ctx.append_op(block, def);
        let v = def.result(&ctx, 0);
        let use_name = ctx.op_name("t", "use_val");
        for _ in 0..1000 {
            let op = ctx.create_op(irdl_ir::OperationState::new(use_name).add_operands([v]));
            ctx.append_op(block, op);
        }
        group.bench_function(label, |b| {
            b.iter(|| black_box(verify_op(&ctx, module).is_ok()))
        });
    }
    group.finish();
}

fn bench_format_vs_generic(c: &mut Criterion) {
    let mut ctx = irdl_bench::showcase_context();
    let module = mul_chain_module(&mut ctx, 500);
    let mut group = c.benchmark_group("ablation_print_path");
    group.bench_function("custom_format", |b| {
        b.iter(|| black_box(op_to_string(&ctx, module).len()))
    });
    group.bench_function("generic_form", |b| {
        b.iter(|| black_box(op_to_string_generic(&ctx, module).len()))
    });
    group.finish();
}

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interning");
    group.bench_function("intern_hit_path", |b| {
        let mut ctx = Context::new();
        // Prime the table.
        for w in 1..=64 {
            ctx.int_type(w);
        }
        b.iter(|| {
            let mut acc = 0usize;
            for w in 1..=64 {
                acc += ctx.int_type(w).index();
            }
            black_box(acc)
        })
    });
    group.bench_function("intern_fresh_context", |b| {
        b.iter(|| {
            let mut ctx = Context::new();
            let mut acc = 0usize;
            for w in 1..=64 {
                acc += ctx.int_type(w).index();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_constraint_vars,
    bench_anyof_ordering,
    bench_format_vs_generic,
    bench_interning
);
criterion_main!(benches);
