//! Introspection over registered dialects.
//!
//! IRDL's self-contained, structured definitions "make it easy to
//! introspect and generate IRs" (paper §3); this module is that interface:
//! it renders the registry into plain-data reports the analysis tooling
//! (and any future IDE/LSP integration) can consume without touching hook
//! objects.

use irdl_ir::dialect::{OpDeclStats, ParamKind};
use irdl_ir::Context;

/// A plain-data snapshot of one operation definition.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    /// Operation name (unqualified).
    pub name: String,
    /// Documentation summary.
    pub summary: String,
    /// Whether the operation is a terminator.
    pub is_terminator: bool,
    /// Whether a custom declarative/native syntax is registered.
    pub has_custom_syntax: bool,
    /// Declarative statistics (operand/result/attribute/region counts,
    /// variadic usage, native-constraint usage).
    pub decl: OpDeclStats,
}

/// A plain-data snapshot of one type or attribute definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeAttrReport {
    /// Definition name (unqualified).
    pub name: String,
    /// Documentation summary.
    pub summary: String,
    /// Classified parameter kinds (paper Figure 8).
    pub param_kinds: Vec<ParamKind>,
    /// Whether a native verifier or native constraint participates.
    pub has_native_verifier: bool,
}

impl TypeAttrReport {
    /// Returns `true` when every parameter is expressible in pure IRDL.
    pub fn params_in_irdl(&self) -> bool {
        self.param_kinds.iter().all(ParamKind::is_builtin)
    }
}

/// A plain-data snapshot of one dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectReport {
    /// Dialect namespace.
    pub name: String,
    /// Documentation summary.
    pub summary: String,
    /// Operation snapshots, sorted by name.
    pub ops: Vec<OpReport>,
    /// Type snapshots, sorted by name.
    pub types: Vec<TypeAttrReport>,
    /// Attribute snapshots, sorted by name.
    pub attrs: Vec<TypeAttrReport>,
    /// Number of enum definitions.
    pub num_enums: usize,
}

/// Snapshots every dialect registered in `ctx`, sorted by dialect name.
pub fn report(ctx: &Context) -> Vec<DialectReport> {
    let mut dialects: Vec<DialectReport> = ctx
        .registry()
        .dialects()
        .map(|d| {
            let name = d.name.map(|s| ctx.symbol_str(s).to_string()).unwrap_or_default();
            let mut ops: Vec<OpReport> = d
                .ops()
                .map(|op| OpReport {
                    name: ctx.symbol_str(op.name).to_string(),
                    summary: op.summary.clone(),
                    is_terminator: op.is_terminator,
                    has_custom_syntax: op.syntax.is_some(),
                    decl: op.decl.clone(),
                })
                .collect();
            ops.sort_by(|a, b| a.name.cmp(&b.name));
            let mut types: Vec<TypeAttrReport> = d.types().map(|t| snapshot(ctx, t)).collect();
            types.sort_by(|a, b| a.name.cmp(&b.name));
            let mut attrs: Vec<TypeAttrReport> = d.attrs().map(|t| snapshot(ctx, t)).collect();
            attrs.sort_by(|a, b| a.name.cmp(&b.name));
            DialectReport {
                name,
                summary: d.summary.clone(),
                ops,
                types,
                attrs,
                num_enums: d.enums().count(),
            }
        })
        .collect();
    dialects.sort_by(|a, b| a.name.cmp(&b.name));
    dialects
}

fn snapshot(ctx: &Context, info: &irdl_ir::TypeDefInfo) -> TypeAttrReport {
    TypeAttrReport {
        name: ctx.symbol_str(info.name).to_string(),
        summary: info.summary.clone(),
        param_kinds: info.param_kinds.clone(),
        has_native_verifier: info.has_native_verifier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_registered_dialects() {
        let mut ctx = Context::new();
        crate::compile::register_dialects(
            &mut ctx,
            r#"Dialect cmath {
                Summary "Complex arithmetic"
                Type complex { Parameters (elementType: !AnyOf<!f32, !f64>) }
                Operation norm {
                    ConstraintVar (!T: !AnyOf<!f32, !f64>)
                    Operands (c: !complex<!T>)
                    Results (res: !T)
                }
            }"#,
        )
        .unwrap();
        let reports = report(&ctx);
        let cmath = reports.iter().find(|d| d.name == "cmath").unwrap();
        assert_eq!(cmath.summary, "Complex arithmetic");
        assert_eq!(cmath.ops.len(), 1);
        assert_eq!(cmath.ops[0].decl.operand_defs, 1);
        assert_eq!(cmath.types.len(), 1);
        assert_eq!(cmath.types[0].param_kinds, vec![ParamKind::Type]);
        assert!(cmath.types[0].params_in_irdl());
        // builtin is registered by default.
        assert!(reports.iter().any(|d| d.name == "builtin"));
    }
}
