//! The verifier fast path: flat constraint programs.
//!
//! [`crate::constraint::eval`] walks the `Rc`-linked [`Constraint`] tree and
//! renders a `format!` diagnostic for every violation — including the
//! rejected alternatives of a successful `AnyOf`. That is the right shape
//! for error reporting and exactly the wrong shape for the hot loop: module
//! verification re-checks the same uniqued types against the same
//! constraints thousands of times.
//!
//! This module lowers each [`CompiledOp`] / [`CompiledParams`] into a
//! [`ConstraintProgram`]: a contiguous instruction vector ([`Inst`]) whose
//! combinators reference their children through an index pool instead of
//! heap pointers. Evaluation ([`ConstraintProgram::eval`]) dispatches over
//! the flat vector, returns a bare verdict (`bool`), and uses a trail-based
//! undo log for `AnyOf`/`Not` backtracking, so the success path performs no
//! heap allocation at all. Diagnostics are rendered lazily: only when the
//! fast path rejects an op does the adapter re-run the retained tree
//! interpreter to produce the human-readable message.
//!
//! At lowering time every node is classified as *pure* (its verdict depends
//! only on the value, not on constraint-variable bindings or native
//! predicate state). Pure composite nodes get a cache slot; their verdicts
//! are memoized in the owning [`Context`], keyed on `(verdict domain,
//! value)`. This is sound because types and attributes are uniqued,
//! immutable indices: a `!cmath.complex<f32>` checked once is checked
//! forever.

use std::sync::Arc;

use irdl_ir::attrs::AttrData;
use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::types::TypeData;
use irdl_ir::{Attribute, Context, OpName, OpRef, Signedness, Symbol, Type};

use crate::ast::{IntKind, Variadicity};
use crate::constraint::{CVal, Constraint, NativePred, TypeClass};
use crate::verifier::{CompiledOp, CompiledParams, CompiledRegion};
use crate::variadic::{resolve_segments_into, OPERAND_SEGMENT_ATTR, RESULT_SEGMENT_ATTR};

/// Sentinel for "this node has no verdict-cache slot".
const NO_SLOT: u32 = u32::MAX;

/// A `(start, len)` range into [`ConstraintProgram::children`].
#[derive(Debug, Clone, Copy)]
struct Children {
    start: u32,
    len: u32,
}

/// One flat instruction. Mirrors [`Constraint`] but replaces owned
/// subtrees with index ranges into the shared child pool.
#[derive(Clone)]
enum Inst {
    Any,
    AnyType,
    AnyAttr,
    ExactType(Type),
    BaseType { dialect: Symbol, name: Symbol },
    ParametricType { dialect: Symbol, name: Symbol, children: Children },
    Class(TypeClass),
    ExactAttr(Attribute),
    BaseAttr { dialect: Symbol, name: Symbol },
    ParametricAttr { dialect: Symbol, name: Symbol, children: Children },
    Int(IntKind),
    IntLiteral { value: i128, kind: IntKind },
    FloatAttr(Option<irdl_ir::FloatKind>),
    StringAny,
    StringLiteral(Box<str>),
    BoolAttr,
    UnitAttr,
    SymbolRefAttr,
    LocationAttr,
    TypeIdAttr,
    ArrayAny,
    ArrayOf(u32),
    ArrayExact(Children),
    EnumAny { dialect: Symbol, name: Symbol },
    EnumVariant { dialect: Symbol, name: Symbol, variant: Symbol },
    NativeParam { kind: Symbol },
    AnyOf(Children),
    And(Children),
    Not(u32),
    Var(u32),
    Native(NativePred),
}

#[derive(Clone)]
struct Node {
    inst: Inst,
    /// Verdict-cache slot, or [`NO_SLOT`]. Only pure composite nodes are
    /// cached: leaves are cheaper to re-check than to look up.
    cache_slot: u32,
}

/// A lowered constraint set: all constraints of one op (or one type/attr
/// definition) in a single contiguous instruction vector.
pub struct ConstraintProgram {
    nodes: Vec<Node>,
    /// Child-index pool referenced by [`Children`] ranges.
    children: Vec<u32>,
    /// Root node of each constraint variable's declared constraint.
    var_roots: Vec<u32>,
    /// First verdict-cache domain owned by this program; slot `s` maps to
    /// domain `domain_base + s`. Domains are reserved from the [`Context`]
    /// at build time, so distinct programs can never collide on a key.
    domain_base: u32,
    num_slots: u32,
}

impl ConstraintProgram {
    fn children(&self, range: Children) -> &[u32] {
        &self.children[range.start as usize..(range.start + range.len) as usize]
    }

    /// Number of memoizable (pure composite) nodes.
    pub fn num_cache_slots(&self) -> u32 {
        self.num_slots
    }

    fn cache_key(&self, slot: u32, val: CVal) -> u64 {
        let (tag, index) = match val {
            CVal::Type(ty) => (0u64, ty.index() as u64),
            CVal::Attr(attr) => (1u64, attr.index() as u64),
        };
        (((self.domain_base + slot) as u64) << 33) | (tag << 32) | index
    }

    /// Evaluates node `idx` against `val`. Allocation-free; returns the
    /// bare verdict.
    fn eval(&self, ctx: &Context, idx: u32, val: CVal, scratch: &mut EvalScratch) -> bool {
        let node = &self.nodes[idx as usize];
        if node.cache_slot != NO_SLOT {
            let key = self.cache_key(node.cache_slot, val);
            if let Some(verdict) = ctx.cached_verdict(key) {
                return verdict;
            }
            let verdict = self.eval_inst(ctx, &node.inst, val, scratch);
            ctx.cache_verdict(key, verdict);
            return verdict;
        }
        self.eval_inst(ctx, &node.inst, val, scratch)
    }

    fn eval_inst(&self, ctx: &Context, inst: &Inst, val: CVal, scratch: &mut EvalScratch) -> bool {
        match inst {
            Inst::Any => true,
            Inst::AnyType => matches!(val, CVal::Type(_)),
            Inst::AnyAttr => matches!(val, CVal::Attr(_)),
            Inst::ExactType(expected) => val == CVal::Type(*expected),
            Inst::BaseType { dialect, name } => match val {
                CVal::Type(ty) => ty.parametric_name(ctx) == Some((*dialect, *name)),
                CVal::Attr(_) => false,
            },
            Inst::ParametricType { dialect, name, children } => {
                let CVal::Type(ty) = val else { return false };
                if ty.parametric_name(ctx) != Some((*dialect, *name)) {
                    return false;
                }
                let actual = ty.params(ctx);
                let params = self.children(*children);
                actual.len() == params.len()
                    && params.iter().zip(actual.iter()).all(|(&pc, &attr)| {
                        self.eval(ctx, pc, CVal::from_attr(ctx, attr), scratch)
                    })
            }
            Inst::Class(class) => match val {
                CVal::Type(ty) => class.matches(ctx, ty),
                CVal::Attr(_) => false,
            },
            Inst::ExactAttr(expected) => val == CVal::Attr(*expected),
            Inst::BaseAttr { dialect, name } => match val {
                CVal::Attr(attr) => attr.parametric_name(ctx) == Some((*dialect, *name)),
                CVal::Type(_) => false,
            },
            Inst::ParametricAttr { dialect, name, children } => {
                let CVal::Attr(attr) = val else { return false };
                if attr.parametric_name(ctx) != Some((*dialect, *name)) {
                    return false;
                }
                let AttrData::Parametric { params: actual, .. } = ctx.attr_data(attr) else {
                    unreachable!("parametric_name implies parametric data")
                };
                let params = self.children(*children);
                actual.len() == params.len()
                    && params.iter().zip(actual.iter()).all(|(&pc, &a)| {
                        self.eval(ctx, pc, CVal::from_attr(ctx, a), scratch)
                    })
            }
            Inst::Int(kind) => int_ok(ctx, val, *kind, None),
            Inst::IntLiteral { value, kind } => int_ok(ctx, val, *kind, Some(*value)),
            Inst::FloatAttr(kind) => match val {
                CVal::Attr(attr) => match ctx.attr_data(attr) {
                    AttrData::Float { kind: actual, .. } => {
                        kind.is_none_or(|expected| *actual == expected)
                    }
                    _ => false,
                },
                _ => false,
            },
            Inst::StringAny => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::String(_)))
            }
            Inst::StringLiteral(expected) => attr_of(val).is_some_and(|a| {
                matches!(ctx.attr_data(a), AttrData::String(s) if **s == **expected)
            }),
            Inst::BoolAttr => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::Bool(_)))
            }
            Inst::UnitAttr => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::Unit))
            }
            Inst::SymbolRefAttr => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::SymbolRef(_)))
            }
            Inst::LocationAttr => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::Location { .. }))
            }
            Inst::TypeIdAttr => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::TypeId(_)))
            }
            Inst::ArrayAny => {
                attr_of(val).is_some_and(|a| matches!(ctx.attr_data(a), AttrData::Array(_)))
            }
            Inst::ArrayOf(inner) => {
                let Some(items) = array_items(ctx, val) else { return false };
                items
                    .iter()
                    .all(|&item| self.eval(ctx, *inner, CVal::from_attr(ctx, item), scratch))
            }
            Inst::ArrayExact(children) => {
                let Some(items) = array_items(ctx, val) else { return false };
                let constraints = self.children(*children);
                items.len() == constraints.len()
                    && constraints.iter().zip(items.iter()).all(|(&pc, &item)| {
                        self.eval(ctx, pc, CVal::from_attr(ctx, item), scratch)
                    })
            }
            Inst::EnumAny { dialect, name } => attr_of(val).is_some_and(|a| {
                matches!(ctx.attr_data(a),
                    AttrData::EnumValue { dialect: d, enum_name: e, .. }
                        if d == dialect && e == name)
            }),
            Inst::EnumVariant { dialect, name, variant } => attr_of(val).is_some_and(|a| {
                matches!(ctx.attr_data(a),
                    AttrData::EnumValue { dialect: d, enum_name: e, variant: v }
                        if d == dialect && e == name && v == variant)
            }),
            Inst::NativeParam { kind } => attr_of(val).is_some_and(|a| {
                matches!(ctx.attr_data(a), AttrData::Native { kind: k, .. } if k == kind)
            }),
            Inst::AnyOf(children) => {
                // Each alternative starts from the bindings as they were at
                // entry; a failed attempt's bindings are undone via the
                // trail, a successful one's are committed — exactly the
                // clone/commit semantics of the tree interpreter.
                for &choice in self.children(*children) {
                    let mark = scratch.mark();
                    if self.eval(ctx, choice, val, scratch) {
                        return true;
                    }
                    scratch.rollback(mark);
                }
                false
            }
            Inst::And(children) => self
                .children(*children)
                .iter()
                .all(|&part| self.eval(ctx, part, val, scratch)),
            Inst::Not(inner) => {
                // The probe must not leak bindings whether it succeeds or
                // fails (the tree interpreter evaluates on a discarded
                // clone).
                let mark = scratch.mark();
                let matched = self.eval(ctx, *inner, val, scratch);
                scratch.rollback(mark);
                !matched
            }
            Inst::Var(i) => match scratch.binding(*i) {
                Some(bound) => bound == val,
                None => {
                    // First use: the value must satisfy the variable's
                    // declared constraint, then it binds.
                    let decl_ok = match self.var_roots.get(*i as usize) {
                        Some(&root) => self.eval(ctx, root, val, scratch),
                        None => true,
                    };
                    if decl_ok {
                        scratch.bind(*i, val);
                    }
                    decl_ok
                }
            },
            Inst::Native(pred) => pred(ctx, &val).is_ok(),
        }
    }
}

fn attr_of(val: CVal) -> Option<Attribute> {
    match val {
        CVal::Attr(attr) => Some(attr),
        CVal::Type(_) => None,
    }
}

fn array_items(ctx: &Context, val: CVal) -> Option<&[Attribute]> {
    match ctx.attr_data(attr_of(val)?) {
        AttrData::Array(items) => Some(items),
        _ => None,
    }
}

/// Allocation-free twin of `constraint::int_matches`.
fn int_ok(ctx: &Context, val: CVal, kind: IntKind, literal: Option<i128>) -> bool {
    let Some(attr) = attr_of(val) else { return false };
    let AttrData::Integer { value, ty } = ctx.attr_data(attr) else {
        return false;
    };
    let (value, ty) = (*value, *ty);
    let TypeData::Integer { width, signedness } = ctx.type_data(ty) else {
        return false;
    };
    if *width != kind.width {
        return false;
    }
    let sign_ok = match signedness {
        Signedness::Signless => true,
        Signedness::Signed => !kind.unsigned,
        Signedness::Unsigned => kind.unsigned,
    };
    sign_ok && kind.fits(value) && literal.is_none_or(|expected| value == expected)
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Bottom-up lowering of [`Constraint`] trees into one flat program.
struct Builder {
    nodes: Vec<Node>,
    children: Vec<u32>,
    /// Purity per node, parallel to `nodes`; build-time only.
    pure: Vec<bool>,
    num_slots: u32,
}

impl Builder {
    fn new() -> Self {
        Builder { nodes: Vec::new(), children: Vec::new(), pure: Vec::new(), num_slots: 0 }
    }

    fn push(&mut self, inst: Inst, pure: bool, cacheable: bool) -> u32 {
        let cache_slot = if pure && cacheable {
            let slot = self.num_slots;
            self.num_slots += 1;
            slot
        } else {
            NO_SLOT
        };
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { inst, cache_slot });
        self.pure.push(pure);
        idx
    }

    fn lower_list(&mut self, constraints: &[Constraint]) -> (Children, bool) {
        let mut indices = Vec::with_capacity(constraints.len());
        let mut pure = true;
        for c in constraints {
            let idx = self.lower(c);
            pure &= self.pure[idx as usize];
            indices.push(idx);
        }
        let start = self.children.len() as u32;
        self.children.extend_from_slice(&indices);
        (Children { start, len: indices.len() as u32 }, pure)
    }

    fn lower(&mut self, c: &Constraint) -> u32 {
        match c {
            Constraint::Any => self.push(Inst::Any, true, false),
            Constraint::AnyType => self.push(Inst::AnyType, true, false),
            Constraint::AnyAttr => self.push(Inst::AnyAttr, true, false),
            Constraint::ExactType(ty) => self.push(Inst::ExactType(*ty), true, false),
            Constraint::BaseType { dialect, name } => {
                self.push(Inst::BaseType { dialect: *dialect, name: *name }, true, false)
            }
            Constraint::ParametricType { dialect, name, params } => {
                let (children, pure) = self.lower_list(params);
                self.push(
                    Inst::ParametricType { dialect: *dialect, name: *name, children },
                    pure,
                    true,
                )
            }
            Constraint::Class(class) => self.push(Inst::Class(*class), true, false),
            Constraint::ExactAttr(attr) => self.push(Inst::ExactAttr(*attr), true, false),
            Constraint::BaseAttr { dialect, name } => {
                self.push(Inst::BaseAttr { dialect: *dialect, name: *name }, true, false)
            }
            Constraint::ParametricAttr { dialect, name, params } => {
                let (children, pure) = self.lower_list(params);
                self.push(
                    Inst::ParametricAttr { dialect: *dialect, name: *name, children },
                    pure,
                    true,
                )
            }
            Constraint::Int(kind) => self.push(Inst::Int(*kind), true, false),
            Constraint::IntLiteral { value, kind } => {
                self.push(Inst::IntLiteral { value: *value, kind: *kind }, true, false)
            }
            Constraint::FloatAttr(kind) => self.push(Inst::FloatAttr(*kind), true, false),
            Constraint::StringAny => self.push(Inst::StringAny, true, false),
            Constraint::StringLiteral(s) => {
                self.push(Inst::StringLiteral(s.clone().into_boxed_str()), true, false)
            }
            Constraint::BoolAttr => self.push(Inst::BoolAttr, true, false),
            Constraint::UnitAttr => self.push(Inst::UnitAttr, true, false),
            Constraint::SymbolRefAttr => self.push(Inst::SymbolRefAttr, true, false),
            Constraint::LocationAttr => self.push(Inst::LocationAttr, true, false),
            Constraint::TypeIdAttr => self.push(Inst::TypeIdAttr, true, false),
            Constraint::ArrayAny => self.push(Inst::ArrayAny, true, false),
            Constraint::ArrayOf(inner) => {
                let child = self.lower(inner);
                let pure = self.pure[child as usize];
                self.push(Inst::ArrayOf(child), pure, true)
            }
            Constraint::ArrayExact(items) => {
                let (children, pure) = self.lower_list(items);
                self.push(Inst::ArrayExact(children), pure, true)
            }
            Constraint::EnumAny { dialect, name } => {
                self.push(Inst::EnumAny { dialect: *dialect, name: *name }, true, false)
            }
            Constraint::EnumVariant { dialect, name, variant } => self.push(
                Inst::EnumVariant { dialect: *dialect, name: *name, variant: *variant },
                true,
                false,
            ),
            Constraint::NativeParam { kind } => {
                self.push(Inst::NativeParam { kind: *kind }, true, false)
            }
            Constraint::AnyOf(choices) => {
                let (children, pure) = self.lower_list(choices);
                self.push(Inst::AnyOf(children), pure, true)
            }
            Constraint::And(parts) => {
                let (children, pure) = self.lower_list(parts);
                self.push(Inst::And(children), pure, true)
            }
            Constraint::Not(inner) => {
                let child = self.lower(inner);
                let pure = self.pure[child as usize];
                self.push(Inst::Not(child), pure, true)
            }
            // A variable's verdict depends on the binding environment;
            // a native predicate's on arbitrary host code. Neither may
            // ever be memoized (nor any ancestor).
            Constraint::Var(i) => self.push(Inst::Var(*i), false, false),
            Constraint::Native { pred, .. } => {
                self.push(Inst::Native(pred.clone()), false, false)
            }
        }
    }

    fn finish(self, ctx: &mut Context, var_roots: Vec<u32>) -> ConstraintProgram {
        let domain_base = ctx.reserve_verdict_domains(self.num_slots);
        ConstraintProgram {
            nodes: self.nodes,
            children: self.children,
            var_roots,
            domain_base,
            num_slots: self.num_slots,
        }
    }
}

// ---------------------------------------------------------------------------
// Scratch state
// ---------------------------------------------------------------------------

/// Reusable evaluation scratch: variable bindings with a rollback trail,
/// plus segment-resolution buffers. One instance serves any number of
/// verifications; nothing is reallocated once the buffers have grown to
/// their steady-state sizes.
#[derive(Default)]
pub struct EvalScratch {
    bindings: Vec<Option<CVal>>,
    /// Variables bound since the last mark, for `AnyOf`/`Not` rollback.
    trail: Vec<u32>,
    seg_sizes: Vec<usize>,
    seg_explicit: Vec<i64>,
}

impl EvalScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, num_vars: usize) {
        self.bindings.clear();
        self.bindings.resize(num_vars, None);
        self.trail.clear();
    }

    fn binding(&self, i: u32) -> Option<CVal> {
        self.bindings.get(i as usize).copied().flatten()
    }

    fn bind(&mut self, i: u32, val: CVal) {
        if i as usize >= self.bindings.len() {
            self.bindings.resize(i as usize + 1, None);
        }
        self.bindings[i as usize] = Some(val);
        self.trail.push(i);
    }

    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn rollback(&mut self, mark: usize) {
        // Variables only bind while unbound, so undoing is clearing.
        for &i in &self.trail[mark..] {
            self.bindings[i as usize] = None;
        }
        self.trail.truncate(mark);
    }
}

// ---------------------------------------------------------------------------
// Per-op programs
// ---------------------------------------------------------------------------

struct RegionProgram {
    /// Entry-block argument constraint roots (`None` = unconstrained).
    arg_roots: Option<Vec<u32>>,
    arg_variadicity: Vec<Variadicity>,
    terminator: Option<OpName>,
}

/// The fast-path form of a [`CompiledOp`]: every constraint lowered into
/// one [`ConstraintProgram`], with per-slot (operand/result/attribute/
/// region-argument) roots and pre-resolved variadicity tables.
pub struct OpProgram {
    program: ConstraintProgram,
    operand_roots: Vec<u32>,
    operand_variadicity: Vec<Variadicity>,
    result_roots: Vec<u32>,
    result_variadicity: Vec<Variadicity>,
    attr_roots: Vec<(Symbol, u32)>,
    regions: Vec<RegionProgram>,
    successors: Option<usize>,
    /// Pre-interned segment-attribute names, so the hot loop never hashes
    /// a string.
    operand_seg_sym: Symbol,
    result_seg_sym: Symbol,
    num_vars: usize,
}

impl OpProgram {
    /// Lowers `op` into its flat program, reserving verdict-cache domains
    /// from `ctx` for its pure subconstraints.
    pub fn build(ctx: &mut Context, op: &CompiledOp) -> OpProgram {
        let mut b = Builder::new();
        let var_roots: Vec<u32> = op.var_decls.iter().map(|d| b.lower(d)).collect();
        let operand_roots = op.operands.iter().map(|d| b.lower(&d.constraint)).collect();
        let result_roots = op.results.iter().map(|d| b.lower(&d.constraint)).collect();
        let attr_roots = op
            .attributes
            .iter()
            .map(|(key, c)| (*key, b.lower(c)))
            .collect();
        let regions = op
            .regions
            .iter()
            .map(|def: &CompiledRegion| RegionProgram {
                arg_roots: def
                    .args
                    .as_ref()
                    .map(|args| args.iter().map(|a| b.lower(&a.constraint)).collect()),
                arg_variadicity: def
                    .args
                    .as_deref()
                    .unwrap_or(&[])
                    .iter()
                    .map(|a| a.variadicity)
                    .collect(),
                terminator: def.terminator,
            })
            .collect();
        OpProgram {
            program: b.finish(ctx, var_roots),
            operand_roots,
            operand_variadicity: op.operands.iter().map(|d| d.variadicity).collect(),
            result_roots,
            result_variadicity: op.results.iter().map(|d| d.variadicity).collect(),
            attr_roots,
            regions,
            successors: op.successors,
            operand_seg_sym: ctx.symbol(OPERAND_SEGMENT_ATTR),
            result_seg_sym: ctx.symbol(RESULT_SEGMENT_ATTR),
            num_vars: op.var_decls.len(),
        }
    }

    /// Number of memoizable subconstraints (observability / tests).
    pub fn num_cache_slots(&self) -> u32 {
        self.program.num_cache_slots()
    }

    /// Fast verdict: `true` iff `op` satisfies every *declarative*
    /// invariant that [`CompiledOp::verify`] checks (constraints, counts,
    /// segments, regions, successors). Native verifiers are not consulted;
    /// the registered [`ProgramOpVerifier`] passes them in separately.
    /// Performs no heap allocation on the success path.
    pub fn check(&self, ctx: &Context, op: OpRef, scratch: &mut EvalScratch) -> bool {
        self.check_declarative(ctx, op, scratch, None)
    }

    /// [`OpProgram::check`] plus an optional native op verifier
    /// (taken from the retained [`CompiledOp`]).
    fn check_declarative(
        &self,
        ctx: &Context,
        op: OpRef,
        scratch: &mut EvalScratch,
        native: Option<&crate::native::NativeOpVerifier>,
    ) -> bool {
        scratch.reset(self.num_vars);

        // --- operands ----------------------------------------------------
        if !self.segments(
            ctx,
            op,
            op.num_operands(ctx),
            &self.operand_variadicity,
            self.operand_seg_sym,
            scratch,
        ) {
            return false;
        }
        let mut cursor = 0usize;
        for (slot, &root) in self.operand_roots.iter().enumerate() {
            let size = scratch.seg_sizes[slot];
            for k in 0..size {
                let ty = op.operands(ctx)[cursor + k].ty(ctx);
                if !self.program.eval(ctx, root, CVal::Type(ty), scratch) {
                    return false;
                }
            }
            cursor += size;
        }

        // --- results -----------------------------------------------------
        if !self.segments(
            ctx,
            op,
            op.num_results(ctx),
            &self.result_variadicity,
            self.result_seg_sym,
            scratch,
        ) {
            return false;
        }
        let mut cursor = 0usize;
        for (slot, &root) in self.result_roots.iter().enumerate() {
            let size = scratch.seg_sizes[slot];
            for k in 0..size {
                let ty = op.result_types(ctx)[cursor + k];
                if !self.program.eval(ctx, root, CVal::Type(ty), scratch) {
                    return false;
                }
            }
            cursor += size;
        }

        // --- attributes --------------------------------------------------
        for &(key, root) in &self.attr_roots {
            let Some(value) = op.attr_sym(ctx, key) else { return false };
            if !self.program.eval(ctx, root, CVal::from_attr(ctx, value), scratch) {
                return false;
            }
        }

        // --- regions -----------------------------------------------------
        if op.num_regions(ctx) != self.regions.len() {
            return false;
        }
        for (index, def) in self.regions.iter().enumerate() {
            if !self.check_region(ctx, op, index, def, scratch) {
                return false;
            }
        }

        // --- successors --------------------------------------------------
        let actual_succs = op.successors(ctx).len();
        match self.successors {
            Some(expected) if actual_succs != expected => return false,
            None if actual_succs != 0 => return false,
            _ => {}
        }

        // --- native global verifier --------------------------------------
        match native {
            Some(native) => native(ctx, op).is_ok(),
            None => true,
        }
    }

    fn check_region(
        &self,
        ctx: &Context,
        op: OpRef,
        index: usize,
        def: &RegionProgram,
        scratch: &mut EvalScratch,
    ) -> bool {
        let region = op.region(ctx, index);
        let entry = region.entry_block(ctx);
        if let Some(arg_roots) = &def.arg_roots {
            let num_args = entry.map_or(0, |b| b.arg_types(ctx).len());
            if resolve_segments_into(
                num_args,
                &def.arg_variadicity,
                None,
                &mut scratch.seg_sizes,
            )
            .is_err()
            {
                return false;
            }
            let mut cursor = 0usize;
            for (slot, &root) in arg_roots.iter().enumerate() {
                let size = scratch.seg_sizes[slot];
                for k in 0..size {
                    let ty = entry.expect("has args").arg_types(ctx)[cursor + k];
                    if !self.program.eval(ctx, root, CVal::Type(ty), scratch) {
                        return false;
                    }
                }
                cursor += size;
            }
        }
        if let Some(term) = def.terminator {
            let blocks = region.blocks(ctx);
            if blocks.len() != 1 {
                return false;
            }
            match blocks[0].last_op(ctx) {
                Some(last) => last.name(ctx) == term,
                None => false,
            }
        } else {
            true
        }
    }

    /// Resolves operand/result segment sizes into `scratch.seg_sizes`.
    /// Mirrors `CompiledOp::segments`, including reading a present
    /// segment-sizes attribute even when no definition is variadic.
    fn segments(
        &self,
        ctx: &Context,
        op: OpRef,
        total: usize,
        defs: &[Variadicity],
        seg_sym: Symbol,
        scratch: &mut EvalScratch,
    ) -> bool {
        let explicit = match op.attr_sym(ctx, seg_sym).and_then(|a| a.as_array(ctx)) {
            Some(items) => {
                scratch.seg_explicit.clear();
                scratch
                    .seg_explicit
                    .extend(items.iter().map(|a| a.as_int(ctx).unwrap_or(-1) as i64));
                true
            }
            None => false,
        };
        let explicit = explicit.then_some(scratch.seg_explicit.as_slice());
        resolve_segments_into(total, defs, explicit, &mut scratch.seg_sizes).is_ok()
    }
}

// ---------------------------------------------------------------------------
// Verifier adapters
// ---------------------------------------------------------------------------

/// The registered op verifier: flat-program fast path with lazy, tree-
/// rendered diagnostics.
///
/// The fast path computes a bare verdict with zero allocation; only when it
/// rejects does the adapter re-run the retained tree interpreter
/// ([`CompiledOp::verify`]) to produce the exact human-readable diagnostic
/// the tree path has always produced.
pub struct ProgramOpVerifier {
    compiled: Arc<CompiledOp>,
    program: OpProgram,
}

impl ProgramOpVerifier {
    /// Wraps a compiled op and its lowered program.
    pub fn new(compiled: Arc<CompiledOp>, program: OpProgram) -> Self {
        ProgramOpVerifier { compiled, program }
    }

    /// The lowered program (introspection / benchmarks).
    pub fn program(&self) -> &OpProgram {
        &self.program
    }
}

/// Runs `f` with the context's parked [`EvalScratch`], parking it again
/// afterwards so the buffers are reused across verifier runs.
///
/// The scratch lives on the [`Context`] (not the verifier) so verifier
/// objects stay stateless and shareable across threads. If the slot is
/// empty — first use, or a native verifier re-entered verification while a
/// run was in flight — a fresh scratch is used, which keeps nesting safe.
fn with_ctx_scratch<R>(ctx: &Context, f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    let mut scratch: Box<EvalScratch> = match ctx.take_eval_scratch() {
        Some(parked) => parked.downcast().unwrap_or_default(),
        None => Box::default(),
    };
    let result = f(&mut scratch);
    ctx.put_eval_scratch(scratch);
    result
}

impl irdl_ir::OpVerifier for ProgramOpVerifier {
    fn verify(&self, ctx: &Context, op: OpRef) -> Result<()> {
        let ok = with_ctx_scratch(ctx, |scratch| {
            self.program.check_declarative(
                ctx,
                op,
                scratch,
                self.compiled.native_verifier.as_ref(),
            )
        });
        if ok {
            return Ok(());
        }
        // Failure boundary: only now is a diagnostic rendered.
        match self.compiled.verify(ctx, op) {
            Err(diag) => Err(diag),
            // The two paths are semantically equivalent; this arm is
            // defensive so a divergence surfaces as an error, not a pass.
            Ok(()) => Err(Diagnostic::new(format!(
                "operation `{}` rejected by the verifier fast path",
                self.compiled.name.display(ctx)
            ))),
        }
    }
}

/// The registered type/attribute parameter verifier: fast path plus lazy
/// tree-rendered diagnostics, mirroring [`ProgramOpVerifier`].
pub struct ProgramParamsVerifier {
    compiled: Arc<CompiledParams>,
    program: ConstraintProgram,
    param_roots: Vec<u32>,
}

impl ProgramParamsVerifier {
    /// Lowers `compiled`'s parameter constraints into a flat program.
    pub fn build(ctx: &mut Context, compiled: Arc<CompiledParams>) -> Self {
        let mut b = Builder::new();
        let param_roots = compiled.constraints.iter().map(|c| b.lower(c)).collect();
        ProgramParamsVerifier {
            program: b.finish(ctx, Vec::new()),
            param_roots,
            compiled,
        }
    }

    fn check(&self, ctx: &Context, params: &[Attribute], scratch: &mut EvalScratch) -> bool {
        if params.len() != self.param_roots.len() {
            return false;
        }
        scratch.reset(0);
        for (&root, &param) in self.param_roots.iter().zip(params) {
            if !self.program.eval(ctx, root, CVal::from_attr(ctx, param), scratch) {
                return false;
            }
        }
        match &self.compiled.native_verifier {
            Some(native) => native(ctx, params).is_ok(),
            None => true,
        }
    }
}

impl irdl_ir::ParamsVerifier for ProgramParamsVerifier {
    fn verify(&self, ctx: &Context, params: &[Attribute]) -> Result<()> {
        let ok = with_ctx_scratch(ctx, |scratch| self.check(ctx, params, scratch));
        if ok {
            return Ok(());
        }
        match self.compiled.verify(ctx, params) {
            Err(diag) => Err(diag),
            Ok(()) => Err(Diagnostic::new(
                "parameter list rejected by the verifier fast path",
            )),
        }
    }
}
