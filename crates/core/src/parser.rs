//! Parser for the IRDL language.
//!
//! The concrete syntax follows the paper's listings: a `Dialect` block
//! containing `Type`, `Attribute`, `Alias`, `Enum`, `Constraint`,
//! `TypeOrAttrParam`, and `Operation` definitions. The token stream is the
//! same one used by the IR textual format ([`irdl_ir::lexer`]).

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::lexer::{lex, Spanned, Token};

use crate::ast::*;

/// Parses an IRDL source file.
///
/// # Errors
///
/// Returns a diagnostic carrying a byte offset into `source`.
///
/// # Example
///
/// ```
/// let file = irdl::parser::parse_irdl(
///     "Dialect cmath {\n  Type complex { Parameters (elementType: !AnyType) }\n}",
/// )?;
/// assert_eq!(file.dialects[0].name, "cmath");
/// # Ok::<(), irdl_ir::Diagnostic>(())
/// ```
pub fn parse_irdl(source: &str) -> Result<SourceFile> {
    let tokens = lex(source)?;
    let mut parser = IrdlParser { tokens, pos: 0 };
    let mut dialects = Vec::new();
    while parser.peek() != &Token::Eof {
        dialects.push(parser.parse_dialect()?);
    }
    Ok(SourceFile { dialects })
}

/// Parses a single constraint expression from `source` (e.g.
/// `"!complex<!AnyOf<!f32, !f64>>"`).
///
/// # Errors
///
/// Returns a diagnostic on malformed input or trailing tokens.
pub fn parse_constraint_expr_str(source: &str) -> Result<crate::ast::ConstraintExpr> {
    let tokens = lex(source)?;
    let mut parser = IrdlParser { tokens, pos: 0 };
    let expr = parser.parse_constraint_expr()?;
    match parser.peek() {
        Token::Eof => Ok(expr),
        other => Err(Diagnostic::at(
            parser.offset(),
            format!("unexpected trailing {}", other.describe()),
        )),
    }
}

struct IrdlParser<'s> {
    tokens: Vec<Spanned<'s>>,
    pos: usize,
}

impl<'s> IrdlParser<'s> {
    fn peek(&self) -> &Token<'s> {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].span.start
    }

    /// Takes the current token and advances (consumed slots are backfilled
    /// with `Eof` and never re-read).
    fn bump(&mut self) -> Token<'s> {
        let tok = std::mem::replace(&mut self.tokens[self.pos].token, Token::Eof);
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.offset(), message)
    }

    fn expect(&mut self, expected: &Token<'_>) -> Result<()> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                expected.describe(),
                self.peek().describe()
            )))
        }
    }

    fn consume_if(&mut self, expected: &Token<'_>) -> bool {
        if self.peek() == expected {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Token::Ident(s) => {
                let s = *s;
                self.bump();
                Ok(s.to_string())
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Token::Ident(s) if *s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if *s == kw)
    }

    /// Peeks the text of an identifier token, if one is next.
    fn peek_ident(&self) -> Option<&'s str> {
        match self.peek() {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn expect_string(&mut self) -> Result<String> {
        match self.peek() {
            Token::Str(_) => {
                let Token::Str(s) = self.bump() else { unreachable!() };
                Ok(s.into_owned())
            }
            other => {
                Err(self.error(format!("expected string literal, found {}", other.describe())))
            }
        }
    }

    // ----- dialect & items ---------------------------------------------------

    fn parse_dialect(&mut self) -> Result<DialectDef> {
        let span = self.offset();
        self.expect_keyword("Dialect")?;
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut summary = None;
        let mut items = Vec::new();
        while !self.consume_if(&Token::RBrace) {
            match self.peek_ident() {
                Some(kw) => match kw {
                    "Summary" => {
                        self.bump();
                        summary = Some(self.expect_string()?);
                    }
                    "Type" => items.push(Item::Type(self.parse_type_attr_def()?)),
                    "Attribute" => items.push(Item::Attribute(self.parse_type_attr_def()?)),
                    "Alias" => items.push(Item::Alias(self.parse_alias()?)),
                    "Enum" => items.push(Item::Enum(self.parse_enum()?)),
                    "Constraint" => items.push(Item::Constraint(self.parse_constraint_def()?)),
                    "TypeOrAttrParam" => {
                        items.push(Item::TypeOrAttrParam(self.parse_param_def()?))
                    }
                    "Operation" => items.push(Item::Operation(self.parse_op_def()?)),
                    other => {
                        return Err(self.error(format!("unknown dialect item `{other}`")));
                    }
                },
                None if self.peek() == &Token::Eof => {
                    return Err(self.error("unterminated dialect body"))
                }
                None => {
                    return Err(self.error(format!(
                        "expected dialect item, found {}",
                        self.peek().describe()
                    )))
                }
            }
        }
        Ok(DialectDef { name, summary, items, span })
    }

    fn parse_type_attr_def(&mut self) -> Result<TypeAttrDef> {
        let span = self.offset();
        self.bump(); // `Type` or `Attribute`
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut def = TypeAttrDef {
            name,
            parameters: Vec::new(),
            summary: None,
            native_verifier: None,
            format: None,
            span,
        };
        while !self.consume_if(&Token::RBrace) {
            match self.peek_ident() {
                Some(kw) => match kw {
                    "Parameters" => {
                        self.bump();
                        def.parameters = self.parse_named_constraint_list()?;
                    }
                    "Summary" => {
                        self.bump();
                        def.summary = Some(self.expect_string()?);
                    }
                    "NativeVerifier" => {
                        self.bump();
                        def.native_verifier = Some(self.expect_string()?);
                    }
                    "Format" => {
                        self.bump();
                        def.format = Some(self.expect_string()?);
                    }
                    other => return Err(self.error(format!("unknown directive `{other}`"))),
                },
                None => {
                    return Err(self.error(format!(
                        "expected directive, found {}",
                        self.peek().describe()
                    )))
                }
            }
        }
        Ok(def)
    }

    fn parse_alias(&mut self) -> Result<AliasDef> {
        let span = self.offset();
        self.expect_keyword("Alias")?;
        let name = match self.bump() {
            Token::Ident(s) | Token::TypeRef(s) | Token::AttrRef(s) => s.to_string(),
            other => {
                return Err(self.error(format!("expected alias name, found {}", other.describe())))
            }
        };
        let mut params = Vec::new();
        if self.consume_if(&Token::Lt) {
            loop {
                params.push(self.expect_ident()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::Gt)?;
        }
        self.expect(&Token::Equals)?;
        let body = self.parse_constraint_expr()?;
        Ok(AliasDef { name, params, body, span })
    }

    fn parse_enum(&mut self) -> Result<EnumDef> {
        let span = self.offset();
        self.expect_keyword("Enum")?;
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut variants = Vec::new();
        if !self.consume_if(&Token::RBrace) {
            loop {
                variants.push(self.expect_ident()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RBrace)?;
        }
        Ok(EnumDef { name, variants, span })
    }

    fn parse_constraint_def(&mut self) -> Result<ConstraintDef> {
        let span = self.offset();
        self.expect_keyword("Constraint")?;
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let base = self.parse_constraint_expr()?;
        let mut summary = None;
        let mut native = None;
        if self.consume_if(&Token::LBrace) {
            while !self.consume_if(&Token::RBrace) {
                match self.peek_ident() {
                    Some(kw) => match kw {
                        "Summary" => {
                            self.bump();
                            summary = Some(self.expect_string()?);
                        }
                        "NativeConstraint" => {
                            self.bump();
                            native = Some(self.expect_string()?);
                        }
                        other => return Err(self.error(format!("unknown directive `{other}`"))),
                    },
                    None => {
                        return Err(self.error(format!(
                            "expected directive, found {}",
                            self.peek().describe()
                        )))
                    }
                }
            }
        }
        Ok(ConstraintDef { name, base, summary, native, span })
    }

    fn parse_param_def(&mut self) -> Result<ParamDef> {
        let span = self.offset();
        self.expect_keyword("TypeOrAttrParam")?;
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut summary = None;
        let mut native_kind = None;
        while !self.consume_if(&Token::RBrace) {
            match self.peek_ident() {
                Some(kw) => match kw {
                    "Summary" => {
                        self.bump();
                        summary = Some(self.expect_string()?);
                    }
                    "NativeType" => {
                        self.bump();
                        native_kind = Some(self.expect_string()?);
                    }
                    other => return Err(self.error(format!("unknown directive `{other}`"))),
                },
                None => {
                    return Err(self.error(format!(
                        "expected directive, found {}",
                        self.peek().describe()
                    )))
                }
            }
        }
        let native_kind = native_kind
            .ok_or_else(|| Diagnostic::at(span, "TypeOrAttrParam requires a NativeType name"))?;
        Ok(ParamDef { name, summary, native_kind, span })
    }

    fn parse_op_def(&mut self) -> Result<OpDef> {
        let span = self.offset();
        self.expect_keyword("Operation")?;
        let name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut def = OpDef { name, span, ..Default::default() };
        while !self.consume_if(&Token::RBrace) {
            match self.peek_ident() {
                Some(kw) => match kw {
                    "ConstraintVar" | "ConstraintVars" => {
                        self.bump();
                        def.constraint_vars.extend(self.parse_named_constraint_list()?);
                    }
                    "Operands" => {
                        self.bump();
                        def.operands = self.parse_arg_def_list()?;
                    }
                    "Results" => {
                        self.bump();
                        def.results = self.parse_arg_def_list()?;
                    }
                    "Attributes" => {
                        self.bump();
                        def.attributes = self.parse_named_constraint_list()?;
                    }
                    "Region" => {
                        self.bump();
                        def.regions.push(self.parse_region_def()?);
                    }
                    "Successors" => {
                        self.bump();
                        self.expect(&Token::LParen)?;
                        let mut successors = Vec::new();
                        if !self.consume_if(&Token::RParen) {
                            loop {
                                successors.push(self.expect_ident()?);
                                if !self.consume_if(&Token::Comma) {
                                    break;
                                }
                            }
                            self.expect(&Token::RParen)?;
                        }
                        def.successors = Some(successors);
                    }
                    "Format" => {
                        self.bump();
                        def.format = Some(self.expect_string()?);
                    }
                    "Summary" => {
                        self.bump();
                        def.summary = Some(self.expect_string()?);
                    }
                    "NativeVerifier" => {
                        self.bump();
                        def.native_verifier = Some(self.expect_string()?);
                    }
                    other => return Err(self.error(format!("unknown directive `{other}`"))),
                },
                None => {
                    return Err(self.error(format!(
                        "expected directive, found {}",
                        self.peek().describe()
                    )))
                }
            }
        }
        Ok(def)
    }

    fn parse_region_def(&mut self) -> Result<RegionDef> {
        let span = self.offset();
        let name = self.expect_ident()?;
        let mut def = RegionDef { name, arguments: None, terminator: None, span };
        if self.consume_if(&Token::LBrace) {
            while !self.consume_if(&Token::RBrace) {
                match self.peek_ident() {
                    Some(kw) => match kw {
                        "Arguments" => {
                            self.bump();
                            def.arguments = Some(self.parse_arg_def_list()?);
                        }
                        "Terminator" => {
                            self.bump();
                            def.terminator = Some(self.expect_ident()?);
                        }
                        other => return Err(self.error(format!("unknown directive `{other}`"))),
                    },
                    None => {
                        return Err(self.error(format!(
                            "expected directive, found {}",
                            self.peek().describe()
                        )))
                    }
                }
            }
        }
        Ok(def)
    }

    // ----- shared pieces --------------------------------------------------------

    /// `(name: constraint, ...)`; names may carry a `!`/`#` sigil (the paper
    /// writes `ConstraintVar (!T: ...)`).
    fn parse_named_constraint_list(&mut self) -> Result<Vec<NamedConstraint>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        if !self.consume_if(&Token::RParen) {
            loop {
                let span = self.offset();
                let name = match self.bump() {
                    Token::Ident(s) | Token::TypeRef(s) | Token::AttrRef(s) => s.to_string(),
                    other => {
                        return Err(
                            self.error(format!("expected name, found {}", other.describe()))
                        )
                    }
                };
                self.expect(&Token::Colon)?;
                let constraint = self.parse_constraint_expr()?;
                out.push(NamedConstraint { name, constraint, span });
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(out)
    }

    /// `(name: constraint, ...)` where constraints may be wrapped in
    /// `Variadic<...>` / `Optional<...>`.
    fn parse_arg_def_list(&mut self) -> Result<Vec<ArgDef>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        if !self.consume_if(&Token::RParen) {
            loop {
                let span = self.offset();
                let name = match self.bump() {
                    Token::Ident(s) | Token::TypeRef(s) | Token::AttrRef(s) => s.to_string(),
                    other => {
                        return Err(
                            self.error(format!("expected name, found {}", other.describe()))
                        )
                    }
                };
                self.expect(&Token::Colon)?;
                let (constraint, variadicity) = self.parse_arg_constraint()?;
                out.push(ArgDef { name, constraint, variadicity, span });
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(out)
    }

    fn parse_arg_constraint(&mut self) -> Result<(ConstraintExpr, Variadicity)> {
        for (kw, variadicity) in
            [("Variadic", Variadicity::Variadic), ("Optional", Variadicity::Optional)]
        {
            if self.peek_keyword(kw) {
                self.bump();
                self.expect(&Token::Lt)?;
                let inner = self.parse_constraint_expr()?;
                self.expect(&Token::Gt)?;
                return Ok((inner, variadicity));
            }
        }
        Ok((self.parse_constraint_expr()?, Variadicity::Single))
    }

    // ----- constraint expressions -------------------------------------------------

    fn parse_constraint_expr(&mut self) -> Result<ConstraintExpr> {
        let span = self.offset();
        match self.peek() {
            Token::Integer { value, .. } => {
                let value = *value;
                self.bump();
                self.expect(&Token::Colon)?;
                let kw = self.expect_ident()?;
                let kind = IntKind::from_keyword(&kw).ok_or_else(|| {
                    Diagnostic::at(span, format!("`{kw}` is not an integer parameter kind"))
                })?;
                if !kind.fits(value) {
                    return Err(Diagnostic::at(
                        span,
                        format!("literal {value} does not fit in {}", kind.keyword()),
                    ));
                }
                Ok(ConstraintExpr::IntLiteral { value, kind })
            }
            Token::Str(_) => {
                let Token::Str(s) = self.bump() else { unreachable!() };
                Ok(ConstraintExpr::StringLiteral(s.into_owned()))
            }
            Token::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.consume_if(&Token::RBracket) {
                    loop {
                        items.push(self.parse_constraint_expr()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RBracket)?;
                }
                Ok(ConstraintExpr::ArrayExact(items))
            }
            Token::Ident(name) => {
                let name = *name;
                self.bump();
                self.finish_ref(Sigil::None, name, span)
            }
            Token::TypeRef(name) => {
                let name = *name;
                self.bump();
                self.finish_ref(Sigil::Type, name, span)
            }
            Token::AttrRef(name) => {
                let name = *name;
                self.bump();
                self.finish_ref(Sigil::Attr, name, span)
            }
            other => {
                Err(self.error(format!("expected constraint, found {}", other.describe())))
            }
        }
    }

    fn finish_ref(&mut self, sigil: Sigil, name: &str, span: Span) -> Result<ConstraintExpr> {
        // Keyword forms that are not ordinary references.
        match (sigil, name) {
            (Sigil::Type, "AnyType") | (Sigil::None, "AnyType") => {
                return Ok(ConstraintExpr::AnyType)
            }
            (Sigil::Attr, "AnyAttr") | (Sigil::None, "AnyAttr") => {
                return Ok(ConstraintExpr::AnyAttr)
            }
            (Sigil::None, "AnyParam") => return Ok(ConstraintExpr::AnyParam),
            (_, "AnyOf") => return Ok(ConstraintExpr::AnyOf(self.parse_angle_list()?)),
            (_, "And") => return Ok(ConstraintExpr::And(self.parse_angle_list()?)),
            (_, "Not") => {
                let mut items = self.parse_angle_list()?;
                if items.len() != 1 {
                    return Err(Diagnostic::at(span, "Not<> takes exactly one constraint"));
                }
                return Ok(ConstraintExpr::Not(Box::new(items.remove(0))));
            }
            (Sigil::None, "string") => return Ok(ConstraintExpr::StringAny),
            (Sigil::None, "array") => {
                if self.peek() == &Token::Lt {
                    let mut items = self.parse_angle_list()?;
                    if items.len() != 1 {
                        return Err(Diagnostic::at(span, "array<> takes exactly one constraint"));
                    }
                    return Ok(ConstraintExpr::ArrayOf(Box::new(items.remove(0))));
                }
                return Ok(ConstraintExpr::ArrayAny);
            }
            (Sigil::None, kw) => {
                if let Some(kind) = IntKind::from_keyword(kw) {
                    return Ok(ConstraintExpr::IntKind(kind));
                }
            }
            _ => {}
        }
        let path: Vec<String> = name.split('.').map(str::to_string).collect();
        if path.len() > 2 || path.iter().any(String::is_empty) {
            return Err(Diagnostic::at(span, format!("malformed reference `{name}`")));
        }
        let args = if self.peek() == &Token::Lt { self.parse_angle_list()? } else { Vec::new() };
        Ok(ConstraintExpr::Ref { sigil, path, args, span })
    }

    fn parse_angle_list(&mut self) -> Result<Vec<ConstraintExpr>> {
        self.expect(&Token::Lt)?;
        let mut items = Vec::new();
        if !self.consume_if(&Token::Gt) {
            loop {
                items.push(self.parse_constraint_expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::Gt)?;
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 3 of the paper: the self-contained cmath dialect.
    const CMATH: &str = r#"
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  Operation mul {
    ConstraintVar (!T: !complex<!FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }
}
"#;

    #[test]
    fn parse_listing3_cmath() {
        let file = parse_irdl(CMATH).unwrap();
        assert_eq!(file.dialects.len(), 1);
        let d = &file.dialects[0];
        assert_eq!(d.name, "cmath");
        assert_eq!(d.items.len(), 4);
        assert!(matches!(&d.items[0], Item::Alias(a) if a.name == "FloatType"));
        match &d.items[1] {
            Item::Type(t) => {
                assert_eq!(t.name, "complex");
                assert_eq!(t.parameters.len(), 1);
                assert_eq!(t.parameters[0].name, "elementType");
                assert_eq!(t.summary.as_deref(), Some("A complex number"));
            }
            other => panic!("expected type, got {other:?}"),
        }
        match &d.items[2] {
            Item::Operation(op) => {
                assert_eq!(op.name, "mul");
                assert_eq!(op.constraint_vars.len(), 1);
                assert_eq!(op.constraint_vars[0].name, "T");
                assert_eq!(op.operands.len(), 2);
                assert_eq!(op.results.len(), 1);
                assert_eq!(op.format.as_deref(), Some("$lhs, $rhs : $T.elementType"));
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing4_aliases() {
        let src = r#"
Dialect c {
  Alias !Complexf32 = !complex<!f32>
  Alias !ComplexOr<T> = AnyOf<!complex<!AnyType>, T>
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[1] {
            Item::Alias(a) => {
                assert_eq!(a.name, "ComplexOr");
                assert_eq!(a.params, vec!["T"]);
                assert!(matches!(&a.body, ConstraintExpr::AnyOf(items) if items.len() == 2));
            }
            other => panic!("expected alias, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing5_attributes() {
        let src = r#"
Dialect c {
  Operation create_constant {
    Results (res: !complex<!f32>)
    Attributes (re: #f32_attr, im: #f32_attr)
    Summary "Create a constant complex number"
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::Operation(op) => {
                assert_eq!(op.attributes.len(), 2);
                assert_eq!(op.attributes[0].name, "re");
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing6_optional() {
        let src = r#"
Dialect c {
  Operation log {
    Operands (c: !complex<!f32>, base: Optional<!f32>)
    Results (res: !complex<!f32>)
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::Operation(op) => {
                assert_eq!(op.operands[0].variadicity, Variadicity::Single);
                assert_eq!(op.operands[1].variadicity, Variadicity::Optional);
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing7_regions() {
        let src = r#"
Dialect c {
  Operation range_loop_terminator {}
  Operation range_loop {
    Operands (lower_bound: !i32, upper_bound: !i32, step: !i32)
    Region body {
      Arguments (induction_variable: !i32)
      Terminator range_loop_terminator
    }
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[1] {
            Item::Operation(op) => {
                assert_eq!(op.regions.len(), 1);
                let region = &op.regions[0];
                assert_eq!(region.name, "body");
                assert_eq!(region.arguments.as_ref().map(Vec::len), Some(1));
                assert_eq!(region.terminator.as_deref(), Some("range_loop_terminator"));
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing8_successors() {
        let src = r#"
Dialect c {
  Operation conditional_branch {
    Operands (condition: !i1)
    Successors (next_bb_true, next_bb_false)
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::Operation(op) => {
                assert_eq!(
                    op.successors,
                    Some(vec!["next_bb_true".to_string(), "next_bb_false".to_string()])
                );
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing9_enums() {
        let src = r#"
Dialect c {
  Enum signedness { Signless, Signed, Unsigned }
  Type integer {
    Parameters (bitwidth: uint32_t, signed: signedness)
  }
  Alias signed_integer = !integer<uint32_t, signedness.Signed>
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::Enum(e) => assert_eq!(e.variants, vec!["Signless", "Signed", "Unsigned"]),
            other => panic!("expected enum, got {other:?}"),
        }
        match &file.dialects[0].items[1] {
            Item::Type(t) => {
                assert_eq!(
                    t.parameters[0].constraint,
                    ConstraintExpr::IntKind(IntKind { width: 32, unsigned: true })
                );
                assert!(matches!(
                    &t.parameters[1].constraint,
                    ConstraintExpr::Ref { path, .. } if path == &vec!["signedness".to_string()]
                ));
            }
            other => panic!("expected type, got {other:?}"),
        }
        match &file.dialects[0].items[2] {
            Item::Alias(a) => match &a.body {
                ConstraintExpr::Ref { path, args, .. } => {
                    assert_eq!(path, &vec!["integer".to_string()]);
                    assert!(matches!(
                        &args[1],
                        ConstraintExpr::Ref { path, .. }
                            if path == &vec!["signedness".to_string(), "Signed".to_string()]
                    ));
                }
                other => panic!("expected ref, got {other:?}"),
            },
            other => panic!("expected alias, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing10_native_constraints() {
        let src = r#"
Dialect c {
  Constraint BoundedInteger : uint32_t {
    Summary "integer value between 0 and 32"
    NativeConstraint "bounded_u32"
  }
  Operation append_vector {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !vector<T, BoundedInteger>, rhs: !vector<T, BoundedInteger>)
    Results (res: !vector<T, BoundedInteger>)
    NativeVerifier "append_vector_sizes"
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::Constraint(c) => {
                assert_eq!(c.name, "BoundedInteger");
                assert_eq!(c.native.as_deref(), Some("bounded_u32"));
                assert_eq!(c.base, ConstraintExpr::IntKind(IntKind { width: 32, unsigned: true }));
            }
            other => panic!("expected constraint, got {other:?}"),
        }
        match &file.dialects[0].items[1] {
            Item::Operation(op) => {
                assert_eq!(op.native_verifier.as_deref(), Some("append_vector_sizes"));
            }
            other => panic!("expected operation, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing11_native_params() {
        let src = r#"
Dialect c {
  TypeOrAttrParam StringParam {
    Summary "A string parameter"
    NativeType "string_param"
  }
  Attribute StringAttr {
    Parameters (data: StringParam)
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        match &file.dialects[0].items[0] {
            Item::TypeOrAttrParam(p) => {
                assert_eq!(p.name, "StringParam");
                assert_eq!(p.native_kind, "string_param");
            }
            other => panic!("expected param def, got {other:?}"),
        }
        assert!(matches!(&file.dialects[0].items[1], Item::Attribute(a) if a.name == "StringAttr"));
    }

    #[test]
    fn parse_parameter_constraint_forms() {
        let src = r#"
Dialect c {
  Type t {
    Parameters (
      a: int32_t,
      b: 3 : int32_t,
      c: string,
      d: "foo",
      e: array,
      f: array<!AnyType>,
      g: [!AnyType, #AnyAttr],
      h: And<int32_t, Not<0 : int32_t>>,
      i: AnyParam
    )
  }
}
"#;
        let file = parse_irdl(src).unwrap();
        let Item::Type(t) = &file.dialects[0].items[0] else { panic!() };
        assert_eq!(t.parameters.len(), 9);
        assert_eq!(
            t.parameters[1].constraint,
            ConstraintExpr::IntLiteral { value: 3, kind: IntKind { width: 32, unsigned: false } }
        );
        assert_eq!(t.parameters[3].constraint, ConstraintExpr::StringLiteral("foo".into()));
        assert_eq!(t.parameters[4].constraint, ConstraintExpr::ArrayAny);
        assert!(matches!(&t.parameters[5].constraint, ConstraintExpr::ArrayOf(_)));
        assert!(matches!(&t.parameters[6].constraint, ConstraintExpr::ArrayExact(v) if v.len() == 2));
        assert!(matches!(&t.parameters[7].constraint, ConstraintExpr::And(v) if v.len() == 2));
        assert_eq!(t.parameters[8].constraint, ConstraintExpr::AnyParam);
    }

    #[test]
    fn literal_out_of_range_is_an_error() {
        let src = "Dialect c { Type t { Parameters (a: 300 : int8_t) } }";
        let err = parse_irdl(src).unwrap_err();
        assert!(err.message().contains("does not fit"), "{err}");
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let src = "Dialect c { Operation o { Typo \"x\" } }";
        let err = parse_irdl(src).unwrap_err();
        assert!(err.message().contains("unknown directive"), "{err}");
    }

    #[test]
    fn dialect_summary_parses() {
        let src = "Dialect c { Summary \"complex math\" }";
        let file = parse_irdl(src).unwrap();
        assert_eq!(file.dialects[0].summary.as_deref(), Some("complex math"));
    }
}
