//! Verifier synthesis: compiled operation and type/attribute verifiers.
//!
//! This module turns resolved IRDL definitions into the hook objects the IR
//! substrate evaluates — reproducing the paper's central claim that the
//! hand-written C++ verifier of Listing 2 is derivable from the declarative
//! specification of Listing 3.

use std::sync::Arc;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::{Attribute, Context, OpName, OpRef, Symbol};

use crate::ast::Variadicity;
use crate::constraint::{eval, BindingEnv, CVal, Constraint};
use crate::native::{NativeOpVerifier, NativeParamsVerifier};
use crate::variadic::{resolve_segments, OPERAND_SEGMENT_ATTR, RESULT_SEGMENT_ATTR};

/// A compiled operand/result definition.
#[derive(Debug, Clone)]
pub struct CompiledArg {
    /// Declared name (used by formats and diagnostics).
    pub name: String,
    /// Element constraint.
    pub constraint: Constraint,
    /// Single / variadic / optional.
    pub variadicity: Variadicity,
}

/// A compiled region definition.
#[derive(Debug, Clone)]
pub struct CompiledRegion {
    /// Declared name.
    pub name: String,
    /// Entry-block argument constraints (`None` = unconstrained).
    pub args: Option<Vec<CompiledArg>>,
    /// Required terminator (also forces a single block).
    pub terminator: Option<OpName>,
}

/// Everything derived from one `Operation` definition.
pub struct CompiledOp {
    /// `(dialect, op)` name pair.
    pub name: OpName,
    /// Constraint-variable names, for diagnostics and formats.
    pub var_names: Vec<String>,
    /// Declared constraint of each variable.
    pub var_decls: Vec<Constraint>,
    /// Operand definitions.
    pub operands: Vec<CompiledArg>,
    /// Result definitions.
    pub results: Vec<CompiledArg>,
    /// Attribute definitions (all required).
    pub attributes: Vec<(Symbol, Constraint)>,
    /// Region definitions.
    pub regions: Vec<CompiledRegion>,
    /// `Some(n)` when the op declares `Successors` with `n` names.
    pub successors: Option<usize>,
    /// Optional native (global) verifier.
    pub native_verifier: Option<NativeOpVerifier>,
}

impl std::fmt::Debug for CompiledOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledOp")
            .field("operands", &self.operands)
            .field("results", &self.results)
            .field("attributes", &self.attributes.len())
            .field("regions", &self.regions.len())
            .field("successors", &self.successors)
            .field("has_native_verifier", &self.native_verifier.is_some())
            .finish()
    }
}

impl CompiledOp {
    /// Verifies `op`, evaluating all declarative constraints under one
    /// shared binding environment plus the native verifier, if any.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn verify(&self, ctx: &Context, op: OpRef) -> Result<()> {
        let mut env = BindingEnv::new(self.var_decls.len());

        // --- operands ----------------------------------------------------
        let operand_segments = self.segments(
            ctx,
            op,
            op.num_operands(ctx),
            &self.operands,
            OPERAND_SEGMENT_ATTR,
            "operand",
        )?;
        let operands = op.operands(ctx);
        let mut cursor = 0usize;
        for (def, size) in self.operands.iter().zip(&operand_segments) {
            for k in 0..*size {
                let value = operands[cursor + k];
                let ty = value.ty(ctx);
                eval(ctx, &def.constraint, CVal::Type(ty), &mut env, &self.var_decls)
                    .map_err(|e| {
                        Diagnostic::new(format!("operand `{}` is invalid: {e}", def.name))
                    })?;
            }
            cursor += size;
        }

        // --- results -----------------------------------------------------
        let result_segments = self.segments(
            ctx,
            op,
            op.num_results(ctx),
            &self.results,
            RESULT_SEGMENT_ATTR,
            "result",
        )?;
        let result_types = op.result_types(ctx);
        let mut cursor = 0usize;
        for (def, size) in self.results.iter().zip(&result_segments) {
            for k in 0..*size {
                let ty = result_types[cursor + k];
                eval(ctx, &def.constraint, CVal::Type(ty), &mut env, &self.var_decls)
                    .map_err(|e| {
                        Diagnostic::new(format!("result `{}` is invalid: {e}", def.name))
                    })?;
            }
            cursor += size;
        }

        // --- attributes ----------------------------------------------------
        for (key, constraint) in &self.attributes {
            let value = op.attr_sym(ctx, *key).ok_or_else(|| {
                Diagnostic::new(format!(
                    "missing required attribute `{}`",
                    ctx.symbol_str(*key)
                ))
            })?;
            eval(ctx, constraint, CVal::from_attr(ctx, value), &mut env, &self.var_decls)
                .map_err(|e| {
                    Diagnostic::new(format!(
                        "attribute `{}` is invalid: {e}",
                        ctx.symbol_str(*key)
                    ))
                })?;
        }

        // --- regions -------------------------------------------------------
        if op.num_regions(ctx) != self.regions.len() {
            return Err(Diagnostic::new(format!(
                "expected {} region(s), got {}",
                self.regions.len(),
                op.num_regions(ctx)
            )));
        }
        for (index, def) in self.regions.iter().enumerate() {
            self.verify_region(ctx, op, index, def, &mut env)?;
        }

        // --- successors ------------------------------------------------------
        match self.successors {
            Some(expected) => {
                if op.successors(ctx).len() != expected {
                    return Err(Diagnostic::new(format!(
                        "expected {expected} successor(s), got {}",
                        op.successors(ctx).len()
                    )));
                }
            }
            None => {
                if !op.successors(ctx).is_empty() {
                    return Err(Diagnostic::new(
                        "operation declares no successors but has some",
                    ));
                }
            }
        }

        // --- native global verifier -------------------------------------------
        if let Some(native) = &self.native_verifier {
            native(ctx, op)?;
        }
        Ok(())
    }

    fn segments(
        &self,
        ctx: &Context,
        op: OpRef,
        total: usize,
        defs: &[CompiledArg],
        attr_name: &str,
        what: &str,
    ) -> Result<Vec<usize>> {
        let variadicities: Vec<Variadicity> = defs.iter().map(|d| d.variadicity).collect();
        let explicit: Option<Vec<i64>> = op.attr(ctx, attr_name).and_then(|attr| {
            attr.as_array(ctx).map(|items| {
                items.iter().map(|a| a.as_int(ctx).unwrap_or(-1) as i64).collect()
            })
        });
        resolve_segments(total, &variadicities, explicit.as_deref())
            .map_err(|e| Diagnostic::new(format!("{what} count mismatch: {e}")))
    }

    fn verify_region(
        &self,
        ctx: &Context,
        op: OpRef,
        index: usize,
        def: &CompiledRegion,
        env: &mut BindingEnv,
    ) -> Result<()> {
        let region = op.region(ctx, index);
        let entry = region.entry_block(ctx);
        // Entry-block arguments.
        let arg_types: &[irdl_ir::Type] = match entry {
            Some(block) => block.arg_types(ctx),
            None => &[],
        };
        let args = def.args.as_deref().unwrap_or(&[]);
        let variadicities: Vec<Variadicity> = args.iter().map(|a| a.variadicity).collect();
        let segments = if def.args.is_some() {
            resolve_segments(arg_types.len(), &variadicities, None).map_err(|e| {
                Diagnostic::new(format!("region `{}` argument mismatch: {e}", def.name))
            })?
        } else {
            Vec::new()
        };
        let mut cursor = 0usize;
        for (arg, size) in args.iter().zip(&segments) {
            for k in 0..*size {
                let ty = arg_types[cursor + k];
                eval(ctx, &arg.constraint, CVal::Type(ty), env, &self.var_decls).map_err(
                    |e| {
                        Diagnostic::new(format!(
                            "region `{}` argument `{}` is invalid: {e}",
                            def.name, arg.name
                        ))
                    },
                )?;
            }
            cursor += size;
        }
        // Terminator requirement implies a single block.
        if let Some(term) = def.terminator {
            let blocks = region.blocks(ctx);
            if blocks.len() != 1 {
                return Err(Diagnostic::new(format!(
                    "region `{}` must consist of a single block, got {}",
                    def.name,
                    blocks.len()
                )));
            }
            let last = blocks[0].last_op(ctx).ok_or_else(|| {
                Diagnostic::new(format!(
                    "region `{}` must end with `{}`",
                    def.name,
                    term.display(ctx)
                ))
            })?;
            if last.name(ctx) != term {
                return Err(Diagnostic::new(format!(
                    "region `{}` must end with `{}`, found `{}`",
                    def.name,
                    term.display(ctx),
                    last.name(ctx).display(ctx)
                )));
            }
        }
        Ok(())
    }
}

/// Adapter: [`CompiledOp`] as an [`irdl_ir::OpVerifier`].
pub struct CompiledOpVerifier(pub Arc<CompiledOp>);

impl irdl_ir::OpVerifier for CompiledOpVerifier {
    fn verify(&self, ctx: &Context, op: OpRef) -> Result<()> {
        self.0.verify(ctx, op)
    }
}

/// A compiled type/attribute definition: parameter constraints plus an
/// optional native verifier.
pub struct CompiledParams {
    /// Parameter names, in order.
    pub names: Vec<String>,
    /// Per-parameter constraints.
    pub constraints: Vec<Constraint>,
    /// Optional native verifier over the whole parameter list.
    pub native_verifier: Option<NativeParamsVerifier>,
}

impl std::fmt::Debug for CompiledParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledParams")
            .field("names", &self.names)
            .field("constraints", &self.constraints)
            .field("has_native_verifier", &self.native_verifier.is_some())
            .finish()
    }
}

impl CompiledParams {
    /// Verifies a parameter list.
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint.
    pub fn verify(&self, ctx: &Context, params: &[Attribute]) -> Result<()> {
        if params.len() != self.constraints.len() {
            return Err(Diagnostic::new(format!(
                "expected {} parameter(s), got {}",
                self.constraints.len(),
                params.len()
            )));
        }
        let mut env = BindingEnv::new(0);
        for ((param, constraint), name) in
            params.iter().zip(&self.constraints).zip(&self.names)
        {
            eval(ctx, constraint, CVal::from_attr(ctx, *param), &mut env, &[])
                .map_err(|e| Diagnostic::new(format!("parameter `{name}` is invalid: {e}")))?;
        }
        if let Some(native) = &self.native_verifier {
            native(ctx, params)?;
        }
        Ok(())
    }
}

/// Adapter: [`CompiledParams`] as an [`irdl_ir::ParamsVerifier`].
pub struct CompiledParamsVerifier(pub Arc<CompiledParams>);

impl irdl_ir::ParamsVerifier for CompiledParamsVerifier {
    fn verify(&self, ctx: &Context, params: &[Attribute]) -> Result<()> {
        self.0.verify(ctx, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::OperationState;

    /// Hand-builds the compiled form of cmath.mul (Listing 3) and checks it
    /// against valid and invalid operations — the behavior of Listing 2's
    /// hand-written verifier.
    #[test]
    fn mul_verifier_equivalent_to_listing2() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f64 = ctx.f64_type();
        let cmath = ctx.symbol("cmath");
        let complex = ctx.symbol("complex");
        let f32a = ctx.type_attr(f32);
        let f64a = ctx.type_attr(f64);
        let complex_f32 = ctx.parametric_type_syms(cmath, complex, vec![f32a]).unwrap();
        let complex_f64 = ctx.parametric_type_syms(cmath, complex, vec![f64a]).unwrap();

        let float_ty = Constraint::AnyOf(vec![
            Constraint::ExactType(f32),
            Constraint::ExactType(f64),
        ]);
        let t_decl = Constraint::ParametricType {
            dialect: cmath,
            name: complex,
            params: vec![float_ty],
        };
        let compiled = CompiledOp {
            name: ctx.op_name("cmath", "mul"),
            var_names: vec!["T".into()],
            var_decls: vec![t_decl],
            operands: vec![
                CompiledArg {
                    name: "lhs".into(),
                    constraint: Constraint::Var(0),
                    variadicity: Variadicity::Single,
                },
                CompiledArg {
                    name: "rhs".into(),
                    constraint: Constraint::Var(0),
                    variadicity: Variadicity::Single,
                },
            ],
            results: vec![CompiledArg {
                name: "res".into(),
                constraint: Constraint::Var(0),
                variadicity: Variadicity::Single,
            }],
            attributes: vec![],
            regions: vec![],
            successors: None,
            native_verifier: None,
        };

        let mk = |ctx: &mut Context, tys: [irdl_ir::Type; 2], res: irdl_ir::Type| {
            let mk_name = ctx.op_name("test", "val");
            let a = ctx.create_op(OperationState::new(mk_name).add_result_types([tys[0]]));
            let b = ctx.create_op(OperationState::new(mk_name).add_result_types([tys[1]]));
            let name = ctx.op_name("cmath", "mul");
            let va = a.result(ctx, 0);
            let vb = b.result(ctx, 0);
            ctx.create_op(
                OperationState::new(name).add_operands([va, vb]).add_result_types([res]),
            )
        };

        // Valid: both operands and result are complex<f32>.
        let good = mk(&mut ctx, [complex_f32, complex_f32], complex_f32);
        assert!(compiled.verify(&ctx, good).is_ok());

        // Invalid: mixed element types.
        let mixed = mk(&mut ctx, [complex_f32, complex_f64], complex_f32);
        let err = compiled.verify(&ctx, mixed).unwrap_err();
        assert!(err.message().contains("rhs"), "{err}");

        // Invalid: result type differs.
        let bad_res = mk(&mut ctx, [complex_f32, complex_f32], complex_f64);
        assert!(compiled.verify(&ctx, bad_res).is_err());

        // Invalid: operand is not complex at all.
        let not_complex = mk(&mut ctx, [f32, f32], f32);
        assert!(compiled.verify(&ctx, not_complex).is_err());

        // Invalid: wrong operand count.
        let name = ctx.op_name("cmath", "mul");
        let one_operand = {
            let mk_name = ctx.op_name("test", "val");
            let a = ctx.create_op(OperationState::new(mk_name).add_result_types([complex_f32]));
            let va = a.result(&ctx, 0);
            ctx.create_op(
                OperationState::new(name).add_operands([va]).add_result_types([complex_f32]),
            )
        };
        let err = compiled.verify(&ctx, one_operand).unwrap_err();
        assert!(err.message().contains("operand count"), "{err}");
    }

    #[test]
    fn missing_attribute_is_reported() {
        let mut ctx = Context::new();
        let key = ctx.symbol("re");
        let compiled = CompiledOp {
            name: ctx.op_name("cmath", "create_constant"),
            var_names: vec![],
            var_decls: vec![],
            operands: vec![],
            results: vec![],
            attributes: vec![(key, Constraint::FloatAttr(Some(irdl_ir::FloatKind::F32)))],
            regions: vec![],
            successors: None,
            native_verifier: None,
        };
        let name = ctx.op_name("cmath", "create_constant");
        let without = ctx.create_op(OperationState::new(name));
        let err = compiled.verify(&ctx, without).unwrap_err();
        assert!(err.message().contains("missing required attribute"), "{err}");
        let value = ctx.f32_attr(1.0);
        let with = ctx.create_op(OperationState::new(name).add_attribute(key, value));
        assert!(compiled.verify(&ctx, with).is_ok());
        let wrong = ctx.string_attr("oops");
        let bad = ctx.create_op(OperationState::new(name).add_attribute(key, wrong));
        assert!(compiled.verify(&ctx, bad).is_err());
    }

    #[test]
    fn compiled_params_check_count_and_constraints() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f64 = ctx.f64_type();
        let compiled = CompiledParams {
            names: vec!["elementType".into()],
            constraints: vec![Constraint::AnyOf(vec![
                Constraint::ExactType(f32),
                Constraint::ExactType(f64),
            ])],
            native_verifier: None,
        };
        let f32a = ctx.type_attr(f32);
        assert!(compiled.verify(&ctx, &[f32a]).is_ok());
        let i32 = ctx.i32_type();
        let i32a = ctx.type_attr(i32);
        let err = compiled.verify(&ctx, &[i32a]).unwrap_err();
        assert!(err.message().contains("elementType"), "{err}");
        assert!(compiled.verify(&ctx, &[]).is_err());
    }
}
