//! Declarative assembly formats (paper §4.7).
//!
//! An operation may declare `Format "$lhs, $rhs : $T.elementType"`; this
//! module compiles such strings into a parser/printer pair. Directives
//! reference operands, declared attributes, or constraint variables —
//! optionally navigating into a parameter of the variable's value. Parsing
//! reconstructs operand and result types by solving the operation's
//! constraints under the bindings gathered from the format, which is how
//! `%r = cmath.mul %p, %q : f32` round-trips without spelling out
//! `!cmath.complex<f32>` anywhere.

use std::sync::Arc;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::lexer::TokenBuf;
use irdl_ir::parse::OpParser;
use irdl_ir::print::Printer;
use irdl_ir::{Context, OperationState, OpRef, Symbol};

use crate::ast::Variadicity;
use crate::constraint::{concretize, eval, BindingEnv, CVal};
use crate::verifier::CompiledOp;

/// One element of a compiled format.
#[derive(Debug, Clone)]
enum FormatElem {
    /// Pre-lexed literal text (printed verbatim, matched token-by-token
    /// when parsing).
    Literal(TokenBuf),
    /// `$name` where `name` is the i-th operand definition.
    Operand(usize),
    /// `$name` where `name` is the i-th declared attribute.
    Attr(usize),
    /// `$T` / `$T.param` where `T` is a constraint variable.
    VarPath {
        var: u32,
        path: Vec<String>,
    },
}

/// A compiled declarative format; implements [`irdl_ir::OpSyntax`].
pub struct FormatSpec {
    elems: Vec<FormatElem>,
    op: Arc<CompiledOp>,
}

impl std::fmt::Debug for FormatSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FormatSpec").field("elems", &self.elems).finish()
    }
}

impl FormatSpec {
    /// Compiles a format string against a compiled operation.
    ///
    /// # Errors
    ///
    /// Rejects unknown directive names, directives for variadic
    /// definitions, and formats that do not cover every operand.
    pub fn compile(ctx: &Context, format: &str, op: Arc<CompiledOp>) -> Result<FormatSpec> {
        // Regions and successors have no format directives; an op declaring
        // them cannot round-trip through a declarative format.
        if !op.regions.is_empty() {
            return Err(Diagnostic::new(
                "operations with regions cannot use a declarative format",
            ));
        }
        if op.successors.is_some() {
            return Err(Diagnostic::new(
                "terminator operations cannot use a declarative format",
            ));
        }
        for def in &op.results {
            if !matches!(def.variadicity, Variadicity::Single) {
                return Err(Diagnostic::new(format!(
                    "result `{}` is variadic; declarative formats support only \
                     single results",
                    def.name
                )));
            }
        }
        let mut elems = Vec::new();
        let mut literal = String::new();
        let mut chars = format.char_indices().peekable();
        let mut covered_operands = vec![false; op.operands.len()];
        while let Some((pos, ch)) = chars.next() {
            if ch != '$' {
                literal.push(ch);
                continue;
            }
            if !literal.is_empty() {
                elems.push(lex_literal(std::mem::take(&mut literal))?);
            }
            // Read `ident(.ident)*`.
            let mut name = String::new();
            while let Some((_, c)) = chars.peek() {
                if c.is_ascii_alphanumeric() || *c == '_' {
                    name.push(*c);
                    chars.next();
                } else {
                    break;
                }
            }
            if name.is_empty() {
                return Err(Diagnostic::new(format!(
                    "format has a bare `$` at offset {pos}"
                )));
            }
            let mut path = Vec::new();
            while matches!(chars.peek(), Some((_, '.'))) {
                chars.next();
                let mut seg = String::new();
                while let Some((_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || *c == '_' {
                        seg.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if seg.is_empty() {
                    return Err(Diagnostic::new("format has a trailing `.` in a directive"));
                }
                path.push(seg);
            }
            // Resolve the directive name.
            if let Some(i) = op.operands.iter().position(|a| a.name == name) {
                if !path.is_empty() {
                    return Err(Diagnostic::new(format!(
                        "operand directive `${name}` cannot have a parameter path"
                    )));
                }
                if !matches!(op.operands[i].variadicity, Variadicity::Single) {
                    return Err(Diagnostic::new(format!(
                        "operand `${name}` is variadic; declarative formats support only \
                         single operands"
                    )));
                }
                covered_operands[i] = true;
                elems.push(FormatElem::Operand(i));
            } else if let Some(i) =
                op.attributes.iter().position(|(k, _)| ctx.symbol_str(*k) == name)
            {
                if !path.is_empty() {
                    return Err(Diagnostic::new(format!(
                        "attribute directive `${name}` cannot have a parameter path"
                    )));
                }
                elems.push(FormatElem::Attr(i));
            } else if let Some(v) = op.var_names.iter().position(|n| *n == name) {
                elems.push(FormatElem::VarPath { var: v as u32, path });
            } else {
                return Err(Diagnostic::new(format!(
                    "format directive `${name}` names no operand, attribute, or \
                     constraint variable"
                )));
            }
        }
        if !literal.is_empty() {
            elems.push(lex_literal(literal)?);
        }
        if let Some(i) = covered_operands.iter().position(|c| !c) {
            return Err(Diagnostic::new(format!(
                "format does not cover operand `{}`; its value could not be parsed back",
                op.operands[i].name
            )));
        }
        Ok(FormatSpec { elems, op })
    }

    /// Builds the binding environment implied by an existing operation, by
    /// evaluating all declarative constraints against its actual types.
    fn env_for(&self, ctx: &Context, op: OpRef) -> BindingEnv {
        let mut env = BindingEnv::new(self.op.var_decls.len());
        for (def, value) in self.op.operands.iter().zip(op.operands(ctx)) {
            let ty = value.ty(ctx);
            let _ = eval(ctx, &def.constraint, CVal::Type(ty), &mut env, &self.op.var_decls);
        }
        for (def, ty) in self.op.results.iter().zip(op.result_types(ctx)) {
            let _ = eval(ctx, &def.constraint, CVal::Type(*ty), &mut env, &self.op.var_decls);
        }
        for (key, constraint) in &self.op.attributes {
            if let Some(value) = op.attr_sym(ctx, *key) {
                let _ = eval(
                    ctx,
                    constraint,
                    CVal::from_attr(ctx, value),
                    &mut env,
                    &self.op.var_decls,
                );
            }
        }
        env
    }

    fn navigate(
        &self,
        ctx: &Context,
        mut val: CVal,
        path: &[String],
    ) -> Result<CVal> {
        for segment in path {
            let (params, index) = match val {
                CVal::Type(ty) => {
                    let (dialect, name) = ty.parametric_name(ctx).ok_or_else(|| {
                        Diagnostic::new(format!(
                            "cannot navigate `.{segment}`: {} has no parameters",
                            val.display(ctx)
                        ))
                    })?;
                    (ty.params(ctx).to_vec(), param_index(ctx, dialect, name, true, segment))
                }
                CVal::Attr(attr) => {
                    let (dialect, name) = attr.parametric_name(ctx).ok_or_else(|| {
                        Diagnostic::new(format!(
                            "cannot navigate `.{segment}`: {} has no parameters",
                            val.display(ctx)
                        ))
                    })?;
                    let params = match ctx.attr_data(attr) {
                        irdl_ir::AttrData::Parametric { params, .. } => params.clone(),
                        _ => Vec::new(),
                    };
                    (params, param_index(ctx, dialect, name, false, segment))
                }
            };
            let index = index.ok_or_else(|| {
                Diagnostic::new(format!(
                    "{} has no parameter named `{segment}`",
                    val.display(ctx)
                ))
            })?;
            val = CVal::from_attr(ctx, params[index]);
        }
        Ok(val)
    }
}

fn param_index(
    ctx: &Context,
    dialect: Symbol,
    name: Symbol,
    is_type: bool,
    param: &str,
) -> Option<usize> {
    let names = if is_type {
        &ctx.registry().type_def(dialect, name)?.param_names
    } else {
        &ctx.registry().attr_def(dialect, name)?.param_names
    };
    names.iter().position(|n| ctx.symbol_str(*n) == param)
}

impl irdl_ir::OpSyntax for FormatSpec {
    fn print(&self, ctx: &Context, op: OpRef, printer: &mut Printer<'_>) {
        let env = self.env_for(ctx, op);
        printer.token(" ");
        for elem in &self.elems {
            match elem {
                FormatElem::Literal(buf) => printer.token(buf.text()),
                FormatElem::Operand(i) => {
                    let value = op.operand(ctx, *i);
                    printer.print_value(ctx, value);
                }
                FormatElem::Attr(i) => {
                    let (key, _) = self.op.attributes[*i];
                    if let Some(value) = op.attr_sym(ctx, key) {
                        printer.print_attribute(ctx, value);
                    }
                }
                FormatElem::VarPath { var, path } => {
                    let Some(bound) = env.binding(*var) else {
                        printer.token("<unbound>");
                        continue;
                    };
                    match self.navigate(ctx, bound, path) {
                        Ok(CVal::Type(ty)) => printer.print_type(ctx, ty),
                        Ok(CVal::Attr(attr)) => printer.print_attribute(ctx, attr),
                        Err(_) => printer.token("<unnavigable>"),
                    }
                }
            }
        }
        // Attributes not covered by the format are printed as a trailing
        // dictionary.
        let covered: Vec<Symbol> = self
            .elems
            .iter()
            .filter_map(|e| match e {
                FormatElem::Attr(i) => Some(self.op.attributes[*i].0),
                _ => None,
            })
            .collect();
        let extra: Vec<(Symbol, irdl_ir::Attribute)> = op
            .attributes(ctx)
            .iter()
            .filter(|(k, _)| !covered.contains(k))
            .copied()
            .collect();
        if !extra.is_empty() {
            printer.token(" {");
            for (i, (key, value)) in extra.iter().enumerate() {
                if i > 0 {
                    printer.token(", ");
                }
                printer.token(ctx.symbol_str(*key));
                printer.token(" = ");
                printer.print_attribute(ctx, *value);
            }
            printer.token("}");
        }
    }

    fn parse(&self, parser: &mut OpParser<'_, '_, '_>) -> Result<OperationState> {
        let name = parser.op_name();
        // Inline buffers: parsing a typical declarative-format op performs
        // no heap allocation on this path.
        let mut operands: irdl_ir::InlineVec<Option<irdl_ir::Value>, 4> =
            (0..self.op.operands.len()).map(|_| None).collect();
        let mut attrs: irdl_ir::AttrList = irdl_ir::AttrList::new();
        let mut direct: irdl_ir::InlineVec<(u32, CVal), 4> = irdl_ir::InlineVec::new();
        let mut paths: Vec<(u32, Vec<String>, CVal)> = Vec::new();

        for elem in &self.elems {
            match elem {
                FormatElem::Literal(buf) => {
                    for token in buf.iter() {
                        parser.expect(&token)?;
                    }
                }
                FormatElem::Operand(i) => {
                    operands[*i] = Some(parser.parse_operand()?);
                }
                FormatElem::Attr(i) => {
                    let value = parser.parse_attribute()?;
                    attrs.push((self.op.attributes[*i].0, value));
                }
                FormatElem::VarPath { var, path } => {
                    let attr = parser.parse_attribute()?;
                    let val = CVal::from_attr(parser.ctx_ref(), attr);
                    if path.is_empty() {
                        direct.push((*var, val));
                    } else {
                        paths.push((*var, path.clone(), val));
                    }
                }
            }
        }

        // Optional trailing attribute dictionary.
        let mut state = OperationState::new(name);
        parser.parse_optional_attr_dict(&mut state)?;

        // --- solve for constraint variables -------------------------------
        let mut env = BindingEnv::new(self.op.var_decls.len());
        for (var, val) in &direct {
            if let Some(existing) = env.binding(*var) {
                if existing != *val {
                    return Err(parser.error(format!(
                        "conflicting values for constraint variable `{}`",
                        self.op.var_names[*var as usize]
                    )));
                }
            }
            env.bind(*var, *val);
        }
        // Bind through the operand constraints (operand types are known).
        for operand in operands.iter() {
            let value = operand.expect("format compile guarantees operand coverage");
            state.operands.push(value);
        }
        for (def, value) in self.op.operands.iter().zip(state.operands.iter()) {
            let ty = value.ty(parser.ctx_ref());
            eval(
                parser.ctx_ref(),
                &def.constraint,
                CVal::Type(ty),
                &mut env,
                &self.op.var_decls,
            )
            .map_err(|e| parser.error(format!("operand `{}`: {e}", def.name)))?;
        }
        // Solve parameter-path assignments.
        for (var, path, val) in &paths {
            self.solve_path(parser.ctx(), *var, path, *val, &mut env)
                .map_err(|d| d.or_offset(parser.offset()))?;
        }

        // --- infer result types ----------------------------------------------
        for def in &self.op.results {
            match concretize(parser.ctx(), &def.constraint, &env) {
                Some(CVal::Type(ty)) => state.result_types.push(ty),
                _ => {
                    return Err(parser.error(format!(
                        "cannot infer the type of result `{}` from the format",
                        def.name
                    )))
                }
            }
        }

        for &(key, value) in attrs.iter() {
            state.attributes.push((key, value));
        }
        Ok(state)
    }
}

/// Pre-lexes a literal chunk so parsing never re-tokenizes format text.
fn lex_literal_tokens(text: &str) -> Result<TokenBuf> {
    TokenBuf::lex(text)
        .map_err(|e| Diagnostic::new(format!("invalid format literal `{text}`: {e}")))
}

fn lex_literal(text: String) -> Result<FormatElem> {
    Ok(FormatElem::Literal(lex_literal_tokens(&text)?))
}

/// A declarative format for type/attribute parameter lists (paper §4.7:
/// "operations and types can define a custom declarative format").
///
/// Directives reference parameters by name; everything else is literal
/// text matched token-by-token. The `!dialect.name<` ... `>` shell is
/// handled by the framework, so a format like `"$width x $signed"` prints
/// `!ints.integer<32 : i32 x #ints.signedness<Signed>>`.
pub struct ParamsFormatSpec {
    elems: Vec<ParamsFormatElem>,
    num_params: usize,
}

#[derive(Debug, Clone)]
enum ParamsFormatElem {
    Literal(TokenBuf),
    Param(usize),
}

impl std::fmt::Debug for ParamsFormatSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamsFormatSpec").field("elems", &self.elems).finish()
    }
}

impl ParamsFormatSpec {
    /// Compiles a parameter-format string against the declared parameter
    /// names.
    ///
    /// # Errors
    ///
    /// Rejects unknown directives and formats that do not cover every
    /// parameter (an uncovered parameter could not be parsed back).
    pub fn compile(format: &str, param_names: &[String]) -> Result<ParamsFormatSpec> {
        let mut elems = Vec::new();
        let mut literal = String::new();
        let mut covered = vec![false; param_names.len()];
        let mut chars = format.chars().peekable();
        while let Some(ch) = chars.next() {
            if ch != '$' {
                literal.push(ch);
                continue;
            }
            if !literal.is_empty() {
                let text = std::mem::take(&mut literal);
                elems.push(ParamsFormatElem::Literal(lex_literal_tokens(&text)?));
            }
            let mut name = String::new();
            while let Some(c) = chars.peek() {
                if c.is_ascii_alphanumeric() || *c == '_' {
                    name.push(*c);
                    chars.next();
                } else {
                    break;
                }
            }
            let index = param_names.iter().position(|p| *p == name).ok_or_else(|| {
                Diagnostic::new(format!("format directive `${name}` names no parameter"))
            })?;
            covered[index] = true;
            elems.push(ParamsFormatElem::Param(index));
        }
        if !literal.is_empty() {
            elems.push(ParamsFormatElem::Literal(lex_literal_tokens(&literal)?));
        }
        if let Some(i) = covered.iter().position(|c| !c) {
            return Err(Diagnostic::new(format!(
                "format does not cover parameter `{}`",
                param_names[i]
            )));
        }
        Ok(ParamsFormatSpec { elems, num_params: param_names.len() })
    }
}

impl irdl_ir::dialect::ParamsSyntax for ParamsFormatSpec {
    fn print(&self, ctx: &Context, params: &[irdl_ir::Attribute], printer: &mut Printer<'_>) {
        for elem in &self.elems {
            match elem {
                ParamsFormatElem::Literal(buf) => printer.token(buf.text()),
                ParamsFormatElem::Param(i) => {
                    if let Some(param) = params.get(*i) {
                        printer.print_attribute(ctx, *param);
                    }
                }
            }
        }
    }

    fn parse(
        &self,
        parser: &mut irdl_ir::parse::ParamParser<'_, '_, '_>,
    ) -> Result<Vec<irdl_ir::Attribute>> {
        let mut params: Vec<Option<irdl_ir::Attribute>> = vec![None; self.num_params];
        for elem in &self.elems {
            match elem {
                ParamsFormatElem::Literal(buf) => {
                    for token in buf.iter() {
                        parser.expect(&token)?;
                    }
                }
                ParamsFormatElem::Param(i) => {
                    params[*i] = Some(parser.parse_attribute()?);
                }
            }
        }
        Ok(params
            .into_iter()
            .map(|p| p.expect("compile guarantees parameter coverage"))
            .collect())
    }
}

impl FormatSpec {
    /// Solves `$T.param = value`: either checks it against an existing
    /// binding of `T`, or reconstructs `T` from its declared parametric
    /// constraint with the parameter pinned to `value`.
    fn solve_path(
        &self,
        ctx: &mut Context,
        var: u32,
        path: &[String],
        val: CVal,
        env: &mut BindingEnv,
    ) -> Result<()> {
        if let Some(bound) = env.binding(var) {
            // Already known (e.g. from an operand): check consistency.
            let navigated = self.navigate(ctx, bound, path)?;
            if navigated != val {
                return Err(Diagnostic::new(format!(
                    "`${}.{}` is {} but the bound value implies {}",
                    self.op.var_names[var as usize],
                    path.join("."),
                    val.display(ctx),
                    navigated.display(ctx)
                )));
            }
            return Ok(());
        }
        if path.len() != 1 {
            return Err(Diagnostic::new(
                "only single-level parameter paths can drive type inference",
            ));
        }
        let decl = &self.op.var_decls[var as usize];
        let crate::constraint::Constraint::ParametricType { dialect, name, params } = decl
        else {
            return Err(Diagnostic::new(format!(
                "constraint variable `{}` is not declared with a parametric type; \
                 `$var.param` cannot reconstruct it",
                self.op.var_names[var as usize]
            )));
        };
        let (dialect, name, params) = (*dialect, *name, params.clone());
        let target =
            param_index(ctx, dialect, name, true, &path[0]).ok_or_else(|| {
                Diagnostic::new(format!(
                    "type {}.{} has no parameter named `{}`",
                    ctx.symbol_str(dialect),
                    ctx.symbol_str(name),
                    path[0]
                ))
            })?;
        let mut args = Vec::with_capacity(params.len());
        for (i, pc) in params.iter().enumerate() {
            let v = if i == target {
                val
            } else {
                concretize(ctx, pc, env).ok_or_else(|| {
                    Diagnostic::new(format!(
                        "cannot infer parameter #{i} of `${}`",
                        self.op.var_names[var as usize]
                    ))
                })?
            };
            args.push(v.into_attr(ctx));
        }
        let ty = ctx
            .parametric_type_syms(dialect, name, args)
            .map_err(|d| d.with_note("while reconstructing a format type"))?;
        // The reconstructed value must satisfy the variable's declaration.
        eval(ctx, decl, CVal::Type(ty), env, &self.op.var_decls)
            .map_err(Diagnostic::new)?;
        env.bind(var, CVal::Type(ty));
        Ok(())
    }
}
