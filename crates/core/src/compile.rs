//! Compiling IRDL definitions into registered dialects.
//!
//! [`register_dialects`] is the main entry point: parse → collect scope →
//! register enums and native parameter kinds → register type/attribute
//! definitions (with synthesized parameter verifiers) → register operations
//! (with synthesized operation verifiers and declarative formats). After it
//! returns, the dialect is live on the [`Context`]: IR using it parses,
//! prints, and verifies with no host-language code generation — the paper's
//! "register a new dialect by providing an IRDL specification file instead
//! of writing, compiling, and linking several complex C++ files" (§3).
//!
//! Compilation is split into two halves:
//!
//! 1. **Resolution** (frontend): the AST is resolved against the dialect
//!    scope into a [`DialectRecipe`] — names, resolved constraints, format
//!    strings, native hook names.
//! 2. **Registration** ([`register_recipe`] and the helpers it shares with
//!    the compile path): a recipe is lowered onto a context — constraint
//!    programs, format specs, and verifier objects are built and added to
//!    the registry.
//!
//! The registration half has no dependency on the frontend, which is what
//! makes persisted dialect artifacts possible: a recipe decoded from a
//! bundle file ([`crate::artifact`]) registers through exactly the same
//! code path as one freshly compiled from source.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::dialect::{DialectInfo, EnumInfo, OpDeclStats, OpInfo, ParamKind, TypeDefInfo};
use irdl_ir::{Context, OpName, Symbol};

use crate::artifact::{ArgRecipe, DialectRecipe, OpRecipe, RegionRecipe, TypeOrAttrRecipe};
use crate::ast::*;
use crate::constraint::Constraint;
use crate::format::FormatSpec;
use crate::native::NativeRegistry;
use crate::parser::parse_irdl;
use crate::program::{OpProgram, ProgramOpVerifier, ProgramParamsVerifier};
use crate::resolve::{DialectScope, Resolver};
use crate::verifier::{CompiledArg, CompiledOp, CompiledParams, CompiledRegion};

/// Parses `source` and registers every dialect it defines, using the stock
/// native registry ([`NativeRegistry::with_std`]).
///
/// Returns the names of the registered dialects.
///
/// # Errors
///
/// Returns the first parse or compile diagnostic.
pub fn register_dialects(ctx: &mut Context, source: &str) -> Result<Vec<String>> {
    let natives = NativeRegistry::with_std();
    register_dialects_with(ctx, source, &natives)
}

/// Like [`register_dialects`], with caller-provided native hooks.
///
/// # Errors
///
/// Returns the first parse or compile diagnostic.
pub fn register_dialects_with(
    ctx: &mut Context,
    source: &str,
    natives: &NativeRegistry,
) -> Result<Vec<String>> {
    let file = parse_irdl(source)?;
    let mut names = Vec::with_capacity(file.dialects.len());
    for dialect in &file.dialects {
        compile_dialect(ctx, dialect, natives)?;
        names.push(dialect.name.clone());
    }
    Ok(names)
}

/// Compiles one dialect definition into the context registry.
///
/// If a dialect with the same name already exists (e.g. `builtin`), the new
/// definitions are merged into it.
///
/// # Errors
///
/// Returns the first resolution or compilation diagnostic.
pub fn compile_dialect(
    ctx: &mut Context,
    dialect: &DialectDef,
    natives: &NativeRegistry,
) -> Result<()> {
    compile_dialect_collecting(ctx, dialect, natives).map(|_| ())
}

/// Process-wide count of dialect compilations, for asserting that sharing
/// actually shares: a batch run over N workers must compile each dialect
/// exactly once, so this counter must not move after setup. Registering a
/// persisted recipe ([`register_recipe`]) is *not* a compilation and does
/// not move it either.
static DIALECT_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of dialect compilations performed by this process so far.
pub fn dialect_compile_count() -> u64 {
    DIALECT_COMPILES.load(Ordering::Relaxed)
}

/// Like [`compile_dialect`], additionally returning the compiled form of
/// every operation — the structured artifact consumed by IR generation
/// ([`crate::genir`]) and other tooling.
///
/// # Errors
///
/// Returns the first resolution or compilation diagnostic.
pub fn compile_dialect_collecting(
    ctx: &mut Context,
    dialect: &DialectDef,
    natives: &NativeRegistry,
) -> Result<Vec<Arc<CompiledOp>>> {
    compile_dialect_to_recipe(ctx, dialect, natives).map(|(_, ops)| ops)
}

/// Like [`compile_dialect_collecting`], additionally returning the
/// [`DialectRecipe`] — the serializable description consumed by
/// [`crate::DialectBundle::save`].
///
/// # Errors
///
/// Returns the first resolution or compilation diagnostic.
pub fn compile_dialect_to_recipe(
    ctx: &mut Context,
    dialect: &DialectDef,
    natives: &NativeRegistry,
) -> Result<(DialectRecipe, Vec<Arc<CompiledOp>>)> {
    DIALECT_COMPILES.fetch_add(1, Ordering::Relaxed);
    let scope = DialectScope::from_ast(dialect)?;
    let dialect_sym = ctx.symbol(&dialect.name);
    ensure_dialect(ctx, dialect_sym, dialect.summary.as_deref());

    let mut recipe = DialectRecipe {
        name: dialect.name.clone(),
        summary: dialect.summary.clone(),
        enums: Vec::new(),
        param_kinds: Vec::new(),
        typedefs: Vec::new(),
        attrdefs: Vec::new(),
        ops: Vec::new(),
    };

    // Pass 1: enums, native parameter kinds, and type/attribute stubs, so
    // every in-dialect reference resolves regardless of declaration order.
    for item in &dialect.items {
        match item {
            Item::Enum(def) => {
                register_enum(ctx, dialect_sym, &def.name, &def.variants);
                recipe.enums.push((def.name.clone(), def.variants.clone()));
            }
            Item::TypeOrAttrParam(def) => {
                register_param_kind(ctx, natives, &def.name, &def.native_kind)
                    .map_err(|d| d.or_offset(def.span))?;
                recipe.param_kinds.push((def.name.clone(), def.native_kind.clone()));
            }
            Item::Type(def) | Item::Attribute(def) => {
                let param_names: Vec<String> =
                    def.parameters.iter().map(|p| p.name.clone()).collect();
                register_stub(
                    ctx,
                    dialect_sym,
                    &def.name,
                    def.summary.as_deref().unwrap_or_default(),
                    &param_names,
                    matches!(item, Item::Type(_)),
                );
            }
            _ => {}
        }
    }

    // Pass 2: compile type/attribute parameter constraints and verifiers.
    for item in &dialect.items {
        let (def, is_type) = match item {
            Item::Type(def) => (def, true),
            Item::Attribute(def) => (def, false),
            _ => continue,
        };
        let mut resolver = Resolver::new(ctx, natives, &scope, &[]);
        let mut params = Vec::with_capacity(def.parameters.len());
        for param in &def.parameters {
            let constraint = resolver.resolve(&param.constraint).map_err(|d| {
                d.with_note(format!("in parameter `{}` of `{}`", param.name, def.name))
            })?;
            params.push((param.name.clone(), constraint));
        }
        let def_recipe = TypeOrAttrRecipe {
            name: def.name.clone(),
            summary: def.summary.clone().unwrap_or_default(),
            params,
            native_verifier: def.native_verifier.clone(),
            format: def.format.clone(),
        };
        register_typedef(ctx, dialect_sym, &def_recipe, is_type, natives)
            .map_err(|d| d.or_offset(def.span))?;
        if is_type {
            recipe.typedefs.push(def_recipe);
        } else {
            recipe.attrdefs.push(def_recipe);
        }
    }

    // Pass 3: compile operations.
    let mut compiled_ops = Vec::new();
    for item in &dialect.items {
        let Item::Operation(def) = item else { continue };
        let note = || format!("in operation `{}.{}`", dialect.name, def.name);
        let op_recipe = compile_op_recipe(ctx, &dialect.name, &scope, def, natives)
            .map_err(|d| d.with_note(note()))?;
        let compiled = register_op(ctx, dialect_sym, &op_recipe, natives)
            .map_err(|d| d.or_offset(def.span).with_note(note()))?;
        recipe.ops.push(op_recipe);
        compiled_ops.push(compiled);
    }
    Ok((recipe, compiled_ops))
}

/// Registers a persisted [`DialectRecipe`] on `ctx` — the frontend-free
/// cold-start path. No IRDL parsing or constraint resolution happens;
/// native hooks are re-resolved from `natives` by name, and constraint /
/// format programs are lowered against `ctx` exactly as they are when
/// compiling from source.
///
/// # Errors
///
/// Returns a diagnostic when a native hook the recipe names is not
/// registered, or when a persisted format string fails to compile.
pub fn register_recipe(
    ctx: &mut Context,
    recipe: &DialectRecipe,
    natives: &NativeRegistry,
) -> Result<Vec<Arc<CompiledOp>>> {
    let dialect_sym = ctx.symbol(&recipe.name);
    ensure_dialect(ctx, dialect_sym, recipe.summary.as_deref());

    for (name, variants) in &recipe.enums {
        register_enum(ctx, dialect_sym, name, variants);
    }
    for (item, kind) in &recipe.param_kinds {
        register_param_kind(ctx, natives, item, kind)?;
    }
    for (defs, is_type) in [(&recipe.typedefs, true), (&recipe.attrdefs, false)] {
        for def in defs.iter() {
            let param_names: Vec<String> =
                def.params.iter().map(|(name, _)| name.clone()).collect();
            register_stub(ctx, dialect_sym, &def.name, &def.summary, &param_names, is_type);
        }
    }
    for (defs, is_type) in [(&recipe.typedefs, true), (&recipe.attrdefs, false)] {
        for def in defs.iter() {
            register_typedef(ctx, dialect_sym, def, is_type, natives)
                .map_err(|d| d.with_note(format!("in definition `{}.{}`", recipe.name, def.name)))?;
        }
    }
    let mut compiled_ops = Vec::with_capacity(recipe.ops.len());
    for op in &recipe.ops {
        let compiled = register_op(ctx, dialect_sym, op, natives).map_err(|d| {
            d.with_note(format!("in operation `{}.{}`", recipe.name, op.name))
        })?;
        compiled_ops.push(compiled);
    }
    Ok(compiled_ops)
}

/// Ensures the dialect exists in the registry, updating its summary.
fn ensure_dialect(ctx: &mut Context, dialect_sym: Symbol, summary: Option<&str>) {
    if ctx.registry().dialect(dialect_sym).is_none() {
        ctx.register_dialect(DialectInfo::new(dialect_sym));
    }
    if let Some(summary) = summary {
        if let Some(info) = ctx.registry_mut().dialect_mut(dialect_sym) {
            info.summary = summary.to_string();
        }
    }
}

fn register_enum(ctx: &mut Context, dialect_sym: Symbol, name: &str, variants: &[String]) {
    let name = ctx.symbol(name);
    let variants = variants.iter().map(|v| ctx.symbol(v)).collect();
    let info = EnumInfo { name, variants };
    ctx.registry_mut()
        .dialect_mut(dialect_sym)
        .expect("registered above")
        .add_enum(info);
}

fn register_param_kind(
    ctx: &mut Context,
    natives: &NativeRegistry,
    item_name: &str,
    kind_name: &str,
) -> Result<()> {
    let handler = natives.param_kind(kind_name).ok_or_else(|| {
        Diagnostic::new(format!(
            "native parameter kind `{kind_name}` is not registered \
             (required by TypeOrAttrParam `{item_name}`)"
        ))
    })?;
    let kind = ctx.symbol(kind_name);
    ctx.registry_mut().register_native_param(kind, handler);
    Ok(())
}

fn register_stub(
    ctx: &mut Context,
    dialect_sym: Symbol,
    name: &str,
    summary: &str,
    param_names: &[String],
    is_type: bool,
) {
    let name = ctx.symbol(name);
    let param_names = param_names.iter().map(|p| ctx.symbol(p)).collect();
    let stub = TypeDefInfo {
        name,
        summary: summary.to_string(),
        param_names,
        param_kinds: Vec::new(),
        verifier: None,
        syntax: None,
        has_native_verifier: false,
    };
    let info = ctx.registry_mut().dialect_mut(dialect_sym).expect("registered");
    if is_type {
        info.add_type(stub);
    } else {
        info.add_attr(stub);
    }
}

/// Registers one resolved type/attribute definition: builds the compiled
/// parameter record, the flat verifier program, and the optional
/// declarative format, and adds the full [`TypeDefInfo`].
fn register_typedef(
    ctx: &mut Context,
    dialect_sym: Symbol,
    def: &TypeOrAttrRecipe,
    is_type: bool,
    natives: &NativeRegistry,
) -> Result<()> {
    let native_verifier = match &def.native_verifier {
        Some(name) => Some(natives.params_verifier(name).ok_or_else(|| {
            Diagnostic::new(format!(
                "native verifier `{name}` is not registered (required by `{}`)",
                def.name
            ))
        })?),
        None => None,
    };
    let uses_native_constraint = def.params.iter().any(|(_, c)| contains_native(c));
    let param_kinds: Vec<ParamKind> =
        def.params.iter().map(|(_, c)| classify_param(c)).collect();
    let has_native_verifier = native_verifier.is_some() || uses_native_constraint;
    let param_name_strs: Vec<String> =
        def.params.iter().map(|(name, _)| name.clone()).collect();
    let compiled = Arc::new(CompiledParams {
        names: param_name_strs.clone(),
        constraints: def.params.iter().map(|(_, c)| c.clone()).collect(),
        native_verifier,
    });
    let name = ctx.symbol(&def.name);
    let param_names = def.params.iter().map(|(p, _)| ctx.symbol(p)).collect();
    let syntax = match &def.format {
        Some(format) => {
            Some(Arc::new(crate::format::ParamsFormatSpec::compile(format, &param_name_strs)?)
                as Arc<dyn irdl_ir::dialect::ParamsSyntax>)
        }
        None => None,
    };
    // Register the flat-program fast path; the tree form is retained
    // inside the adapter for lazy diagnostic rendering.
    let verifier = Arc::new(ProgramParamsVerifier::build(ctx, compiled));
    let info = TypeDefInfo {
        name,
        summary: def.summary.clone(),
        param_names,
        param_kinds,
        verifier: Some(verifier),
        syntax,
        has_native_verifier,
    };
    let dinfo = ctx.registry_mut().dialect_mut(dialect_sym).expect("registered");
    if is_type {
        dinfo.add_type(info);
    } else {
        dinfo.add_attr(info);
    }
    Ok(())
}

/// Resolves one operation definition into its recipe form (everything
/// registration needs, with no remaining AST references).
fn compile_op_recipe(
    ctx: &mut Context,
    dialect_name: &str,
    scope: &DialectScope,
    def: &OpDef,
    natives: &NativeRegistry,
) -> Result<OpRecipe> {
    let var_names: Vec<String> = def.constraint_vars.iter().map(|v| v.name.clone()).collect();

    let mut resolver = Resolver::new(ctx, natives, scope, &var_names);
    let mut var_decls = Vec::with_capacity(def.constraint_vars.len());
    for var in &def.constraint_vars {
        var_decls.push(resolver.resolve(&var.constraint).map_err(|d| {
            d.with_note(format!("in constraint variable `{}`", var.name))
        })?);
    }
    let resolve_args = |resolver: &mut Resolver<'_>, args: &[ArgDef]| -> Result<Vec<ArgRecipe>> {
        args.iter()
            .map(|arg| {
                Ok(ArgRecipe {
                    name: arg.name.clone(),
                    constraint: resolver.resolve(&arg.constraint).map_err(|d| {
                        d.with_note(format!("in definition `{}`", arg.name))
                    })?,
                    variadicity: arg.variadicity,
                })
            })
            .collect()
    };
    let operands = resolve_args(&mut resolver, &def.operands)?;
    let results = resolve_args(&mut resolver, &def.results)?;

    let mut attributes = Vec::with_capacity(def.attributes.len());
    for attr in &def.attributes {
        let constraint = resolver.resolve(&attr.constraint).map_err(|d| {
            d.with_note(format!("in attribute `{}`", attr.name))
        })?;
        attributes.push((attr.name.clone(), constraint));
    }

    let mut regions = Vec::with_capacity(def.regions.len());
    for region in &def.regions {
        let args = match &region.arguments {
            Some(arguments) => {
                // Region arguments have no segment-sizes attribute to
                // disambiguate several variadic groups (unlike operands and
                // results, paper §4.6).
                let variadic = arguments
                    .iter()
                    .filter(|a| !matches!(a.variadicity, Variadicity::Single))
                    .count();
                if variadic > 1 {
                    return Err(Diagnostic::at(
                        region.span,
                        format!(
                            "region `{}` declares {variadic} variadic arguments; at \
                             most one is supported",
                            region.name
                        ),
                    ));
                }
                Some(resolve_args(&mut resolver, arguments)?)
            }
            None => None,
        };
        // Terminator references resolve to `dialect.name` here; persisted
        // recipes carry the resolved pair.
        let terminator = region.terminator.as_ref().map(|name| match name.split_once('.') {
            Some((d, n)) => (d.to_string(), n.to_string()),
            None => (dialect_name.to_string(), name.clone()),
        });
        regions.push(RegionRecipe { name: region.name.clone(), args, terminator });
    }

    Ok(OpRecipe {
        name: def.name.clone(),
        summary: def.summary.clone().unwrap_or_default(),
        var_names,
        var_decls,
        operands,
        results,
        attributes,
        regions,
        successors: def.successors.as_ref().map(Vec::len),
        native_verifier: def.native_verifier.clone(),
        format: def.format.clone(),
    })
}

fn compiled_args(args: &[ArgRecipe]) -> Vec<CompiledArg> {
    args.iter()
        .map(|arg| CompiledArg {
            name: arg.name.clone(),
            constraint: arg.constraint.clone(),
            variadicity: arg.variadicity,
        })
        .collect()
}

/// Registers one resolved operation definition: builds the [`CompiledOp`],
/// its flat verifier program, the optional declarative format, and the
/// Figure 11/12 declaration statistics, and adds the [`OpInfo`].
fn register_op(
    ctx: &mut Context,
    dialect_sym: Symbol,
    def: &OpRecipe,
    natives: &NativeRegistry,
) -> Result<Arc<CompiledOp>> {
    let attributes: Vec<(Symbol, Constraint)> = def
        .attributes
        .iter()
        .map(|(key, constraint)| (ctx.symbol(key), constraint.clone()))
        .collect();

    let regions: Vec<CompiledRegion> = def
        .regions
        .iter()
        .map(|region| CompiledRegion {
            name: region.name.clone(),
            args: region.args.as_deref().map(compiled_args),
            terminator: region.terminator.as_ref().map(|(dialect, name)| {
                let dialect = ctx.symbol(dialect);
                let name = ctx.symbol(name);
                OpName { dialect, name }
            }),
        })
        .collect();

    let native_verifier = match &def.native_verifier {
        Some(name) => Some(natives.op_verifier(name).ok_or_else(|| {
            Diagnostic::new(format!("native op verifier `{name}` is not registered"))
        })?),
        None => None,
    };

    // Figure 11/12 statistics.
    let mut native_local = Vec::new();
    for c in def
        .operands
        .iter()
        .map(|a| &a.constraint)
        .chain(def.results.iter().map(|a| &a.constraint))
        .chain(def.attributes.iter().map(|(_, c)| c))
        .chain(def.regions.iter().flat_map(|r| r.args.iter().flatten().map(|a| &a.constraint)))
        .chain(def.var_decls.iter())
    {
        collect_native_names(c, &mut native_local);
    }
    native_local.sort();
    native_local.dedup();

    let decl = OpDeclStats {
        operand_defs: def.operands.len() as u32,
        variadic_operands: def
            .operands
            .iter()
            .filter(|a| !matches!(a.variadicity, Variadicity::Single))
            .count() as u32,
        result_defs: def.results.len() as u32,
        variadic_results: def
            .results
            .iter()
            .filter(|a| !matches!(a.variadicity, Variadicity::Single))
            .count() as u32,
        attr_defs: def.attributes.len() as u32,
        region_defs: def.regions.len() as u32,
        successor_defs: def.successors.unwrap_or(0) as u32,
        native_local_constraints: native_local,
        has_native_verifier: def.native_verifier.is_some(),
    };

    let name_sym = ctx.symbol(&def.name);
    let compiled = Arc::new(CompiledOp {
        name: OpName { dialect: dialect_sym, name: name_sym },
        var_names: def.var_names.clone(),
        var_decls: def.var_decls.clone(),
        operands: compiled_args(&def.operands),
        results: compiled_args(&def.results),
        attributes,
        regions,
        successors: def.successors,
        native_verifier,
    });

    let syntax = match &def.format {
        Some(format) => Some(Arc::new(FormatSpec::compile(ctx, format, compiled.clone())?)
            as Arc<dyn irdl_ir::OpSyntax>),
        None => None,
    };

    // Lower the constraints into the flat fast-path program at
    // registration time; verification dispatches over it and falls back to
    // the retained tree interpreter only to render a failure.
    let program = OpProgram::build(ctx, &compiled);
    let info = OpInfo {
        name: name_sym,
        summary: def.summary.clone(),
        is_terminator: def.successors.is_some(),
        verifier: Some(Arc::new(ProgramOpVerifier::new(compiled.clone(), program))),
        syntax,
        decl,
    };
    ctx.registry_mut()
        .dialect_mut(dialect_sym)
        .expect("registered")
        .add_op(info);
    Ok(compiled)
}

/// Classifies a parameter constraint for the Figure 8 analysis.
pub fn classify_param(constraint: &Constraint) -> ParamKind {
    match constraint {
        Constraint::AnyType
        | Constraint::ExactType(_)
        | Constraint::BaseType { .. }
        | Constraint::ParametricType { .. }
        | Constraint::Class(_) => ParamKind::Type,
        Constraint::Int(_) | Constraint::IntLiteral { .. } => ParamKind::Integer,
        Constraint::FloatAttr(_) => ParamKind::Float,
        Constraint::StringAny | Constraint::StringLiteral(_) => ParamKind::String,
        Constraint::EnumAny { .. } | Constraint::EnumVariant { .. } => ParamKind::Enum,
        Constraint::LocationAttr => ParamKind::Location,
        Constraint::TypeIdAttr => ParamKind::TypeId,
        Constraint::ArrayAny | Constraint::ArrayOf(_) | Constraint::ArrayExact(_) => {
            ParamKind::Array
        }
        Constraint::NativeParam { .. } => ParamKind::Native("native-param".to_string()),
        Constraint::And(parts) => parts
            .iter()
            .find(|p| !matches!(p, Constraint::Native { .. }))
            .map(classify_param)
            .unwrap_or(ParamKind::Attr),
        Constraint::AnyOf(parts) => {
            let kinds: Vec<ParamKind> = parts.iter().map(classify_param).collect();
            match kinds.first() {
                Some(first) if kinds.iter().all(|k| k == first) => first.clone(),
                _ => ParamKind::Attr,
            }
        }
        Constraint::Not(inner) => classify_param(inner),
        _ => ParamKind::Attr,
    }
}

/// Collects the names of native predicates used inside `constraint`
/// (Figure 12's census of C++-requiring local constraints).
pub fn collect_native_names(constraint: &Constraint, out: &mut Vec<String>) {
    match constraint {
        Constraint::Native { name, .. } => out.push(name.clone()),
        Constraint::AnyOf(parts) | Constraint::And(parts) | Constraint::ArrayExact(parts) => {
            for p in parts {
                collect_native_names(p, out);
            }
        }
        Constraint::Not(inner) | Constraint::ArrayOf(inner) => {
            collect_native_names(inner, out)
        }
        Constraint::ParametricType { params, .. } | Constraint::ParametricAttr { params, .. } => {
            for p in params {
                collect_native_names(p, out);
            }
        }
        _ => {}
    }
}

fn contains_native(constraint: &Constraint) -> bool {
    let mut names = Vec::new();
    collect_native_names(constraint, &mut names);
    !names.is_empty()
}
