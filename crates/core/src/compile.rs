//! Compiling IRDL definitions into registered dialects.
//!
//! [`register_dialects`] is the main entry point: parse → collect scope →
//! register enums and native parameter kinds → register type/attribute
//! definitions (with synthesized parameter verifiers) → register operations
//! (with synthesized operation verifiers and declarative formats). After it
//! returns, the dialect is live on the [`Context`]: IR using it parses,
//! prints, and verifies with no host-language code generation — the paper's
//! "register a new dialect by providing an IRDL specification file instead
//! of writing, compiling, and linking several complex C++ files" (§3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::dialect::{DialectInfo, EnumInfo, OpDeclStats, OpInfo, ParamKind, TypeDefInfo};
use irdl_ir::{Context, OpName, Symbol};

use crate::ast::*;
use crate::constraint::Constraint;
use crate::format::FormatSpec;
use crate::native::NativeRegistry;
use crate::parser::parse_irdl;
use crate::program::{OpProgram, ProgramOpVerifier, ProgramParamsVerifier};
use crate::resolve::{DialectScope, Resolver};
use crate::verifier::{CompiledArg, CompiledOp, CompiledParams, CompiledRegion};

/// Parses `source` and registers every dialect it defines, using the stock
/// native registry ([`NativeRegistry::with_std`]).
///
/// Returns the names of the registered dialects.
///
/// # Errors
///
/// Returns the first parse or compile diagnostic.
pub fn register_dialects(ctx: &mut Context, source: &str) -> Result<Vec<String>> {
    let natives = NativeRegistry::with_std();
    register_dialects_with(ctx, source, &natives)
}

/// Like [`register_dialects`], with caller-provided native hooks.
///
/// # Errors
///
/// Returns the first parse or compile diagnostic.
pub fn register_dialects_with(
    ctx: &mut Context,
    source: &str,
    natives: &NativeRegistry,
) -> Result<Vec<String>> {
    let file = parse_irdl(source)?;
    let mut names = Vec::with_capacity(file.dialects.len());
    for dialect in &file.dialects {
        compile_dialect(ctx, dialect, natives)?;
        names.push(dialect.name.clone());
    }
    Ok(names)
}

/// Compiles one dialect definition into the context registry.
///
/// If a dialect with the same name already exists (e.g. `builtin`), the new
/// definitions are merged into it.
///
/// # Errors
///
/// Returns the first resolution or compilation diagnostic.
pub fn compile_dialect(
    ctx: &mut Context,
    dialect: &DialectDef,
    natives: &NativeRegistry,
) -> Result<()> {
    compile_dialect_collecting(ctx, dialect, natives).map(|_| ())
}

/// Process-wide count of dialect compilations, for asserting that sharing
/// actually shares: a batch run over N workers must compile each dialect
/// exactly once, so this counter must not move after setup.
static DIALECT_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of dialect compilations performed by this process so far.
pub fn dialect_compile_count() -> u64 {
    DIALECT_COMPILES.load(Ordering::Relaxed)
}

/// Like [`compile_dialect`], additionally returning the compiled form of
/// every operation — the structured artifact consumed by IR generation
/// ([`crate::genir`]) and other tooling.
///
/// # Errors
///
/// Returns the first resolution or compilation diagnostic.
pub fn compile_dialect_collecting(
    ctx: &mut Context,
    dialect: &DialectDef,
    natives: &NativeRegistry,
) -> Result<Vec<Arc<CompiledOp>>> {
    DIALECT_COMPILES.fetch_add(1, Ordering::Relaxed);
    let scope = DialectScope::from_ast(dialect)?;
    let dialect_sym = ctx.symbol(&dialect.name);

    if ctx.registry().dialect(dialect_sym).is_none() {
        ctx.register_dialect(DialectInfo::new(dialect_sym));
    }
    if let Some(summary) = &dialect.summary {
        if let Some(info) = ctx.registry_mut().dialect_mut(dialect_sym) {
            info.summary = summary.clone();
        }
    }

    // Pass 1: enums, native parameter kinds, and type/attribute stubs, so
    // every in-dialect reference resolves regardless of declaration order.
    for item in &dialect.items {
        match item {
            Item::Enum(def) => {
                let name = ctx.symbol(&def.name);
                let variants = def.variants.iter().map(|v| ctx.symbol(v)).collect();
                let info = EnumInfo { name, variants };
                ctx.registry_mut()
                    .dialect_mut(dialect_sym)
                    .expect("registered above")
                    .add_enum(info);
            }
            Item::TypeOrAttrParam(def) => {
                let handler = natives.param_kind(&def.native_kind).ok_or_else(|| {
                    Diagnostic::at(
                        def.span,
                        format!(
                            "native parameter kind `{}` is not registered \
                             (required by TypeOrAttrParam `{}`)",
                            def.native_kind, def.name
                        ),
                    )
                })?;
                let kind = ctx.symbol(&def.native_kind);
                ctx.registry_mut().register_native_param(kind, handler);
            }
            Item::Type(def) | Item::Attribute(def) => {
                let name = ctx.symbol(&def.name);
                let param_names = def.parameters.iter().map(|p| ctx.symbol(&p.name)).collect();
                let stub = TypeDefInfo {
                    name,
                    summary: def.summary.clone().unwrap_or_default(),
                    param_names,
                    param_kinds: Vec::new(),
                    verifier: None,
                    syntax: None,
                    has_native_verifier: false,
                };
                let info = ctx.registry_mut().dialect_mut(dialect_sym).expect("registered");
                if matches!(item, Item::Type(_)) {
                    info.add_type(stub);
                } else {
                    info.add_attr(stub);
                }
            }
            _ => {}
        }
    }

    // Pass 2: compile type/attribute parameter constraints and verifiers.
    for item in &dialect.items {
        let (def, is_type) = match item {
            Item::Type(def) => (def, true),
            Item::Attribute(def) => (def, false),
            _ => continue,
        };
        let mut resolver = Resolver::new(ctx, natives, &scope, &[]);
        let mut constraints = Vec::with_capacity(def.parameters.len());
        for param in &def.parameters {
            constraints.push(resolver.resolve(&param.constraint).map_err(|d| {
                d.with_note(format!("in parameter `{}` of `{}`", param.name, def.name))
            })?);
        }
        let native_verifier = match &def.native_verifier {
            Some(name) => Some(natives.params_verifier(name).ok_or_else(|| {
                Diagnostic::at(
                    def.span,
                    format!("native verifier `{name}` is not registered (required by `{}`)", def.name),
                )
            })?),
            None => None,
        };
        let uses_native_constraint = constraints.iter().any(contains_native);
        let param_kinds: Vec<ParamKind> = constraints.iter().map(classify_param).collect();
        let has_native_verifier = native_verifier.is_some() || uses_native_constraint;
        let compiled = Arc::new(CompiledParams {
            names: def.parameters.iter().map(|p| p.name.clone()).collect(),
            constraints,
            native_verifier,
        });
        let name = ctx.symbol(&def.name);
        let param_names = def.parameters.iter().map(|p| ctx.symbol(&p.name)).collect();
        let syntax = match &def.format {
            Some(format) => Some(Arc::new(crate::format::ParamsFormatSpec::compile(
                format,
                &def.parameters.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
            )
            .map_err(|d| d.or_offset(def.span))?)
                as Arc<dyn irdl_ir::dialect::ParamsSyntax>),
            None => None,
        };
        // Register the flat-program fast path; the tree form is retained
        // inside the adapter for lazy diagnostic rendering.
        let verifier = Arc::new(ProgramParamsVerifier::build(ctx, compiled));
        let info = TypeDefInfo {
            name,
            summary: def.summary.clone().unwrap_or_default(),
            param_names,
            param_kinds,
            verifier: Some(verifier),
            syntax,
            has_native_verifier,
        };
        let dinfo = ctx.registry_mut().dialect_mut(dialect_sym).expect("registered");
        if is_type {
            dinfo.add_type(info);
        } else {
            dinfo.add_attr(info);
        }
    }

    // Pass 3: compile operations.
    let mut compiled_ops = Vec::new();
    for item in &dialect.items {
        let Item::Operation(def) = item else { continue };
        let compiled = compile_op(ctx, dialect_sym, &scope, def, natives)
            .map_err(|d| d.with_note(format!("in operation `{}.{}`", dialect.name, def.name)))?;
        compiled_ops.push(compiled);
    }
    Ok(compiled_ops)
}

fn compile_op(
    ctx: &mut Context,
    dialect_sym: Symbol,
    scope: &DialectScope,
    def: &OpDef,
    natives: &NativeRegistry,
) -> Result<Arc<CompiledOp>> {
    let var_names: Vec<String> = def.constraint_vars.iter().map(|v| v.name.clone()).collect();

    let mut resolver = Resolver::new(ctx, natives, scope, &var_names);
    let mut var_decls = Vec::with_capacity(def.constraint_vars.len());
    for var in &def.constraint_vars {
        var_decls.push(resolver.resolve(&var.constraint).map_err(|d| {
            d.with_note(format!("in constraint variable `{}`", var.name))
        })?);
    }
    let resolve_args = |resolver: &mut Resolver<'_, >, args: &[ArgDef]| -> Result<Vec<CompiledArg>> {
        args.iter()
            .map(|arg| {
                Ok(CompiledArg {
                    name: arg.name.clone(),
                    constraint: resolver.resolve(&arg.constraint).map_err(|d| {
                        d.with_note(format!("in definition `{}`", arg.name))
                    })?,
                    variadicity: arg.variadicity,
                })
            })
            .collect()
    };
    let operands = resolve_args(&mut resolver, &def.operands)?;
    let results = resolve_args(&mut resolver, &def.results)?;

    let mut attributes = Vec::with_capacity(def.attributes.len());
    let mut attr_constraints = Vec::new();
    for attr in &def.attributes {
        let constraint = resolver.resolve(&attr.constraint).map_err(|d| {
            d.with_note(format!("in attribute `{}`", attr.name))
        })?;
        attr_constraints.push(constraint.clone());
        let key = resolver.ctx.symbol(&attr.name);
        attributes.push((key, constraint));
    }

    let mut regions = Vec::with_capacity(def.regions.len());
    for region in &def.regions {
        let args = match &region.arguments {
            Some(arguments) => {
                // Region arguments have no segment-sizes attribute to
                // disambiguate several variadic groups (unlike operands and
                // results, paper §4.6).
                let variadic = arguments
                    .iter()
                    .filter(|a| !matches!(a.variadicity, Variadicity::Single))
                    .count();
                if variadic > 1 {
                    return Err(Diagnostic::at(
                        region.span,
                        format!(
                            "region `{}` declares {variadic} variadic arguments; at \
                             most one is supported",
                            region.name
                        ),
                    ));
                }
                Some(resolve_args(&mut resolver, arguments)?)
            }
            None => None,
        };
        let terminator = match &region.terminator {
            Some(name) => Some(resolve_op_name(resolver.ctx, dialect_sym, name)),
            None => None,
        };
        regions.push(CompiledRegion { name: region.name.clone(), args, terminator });
    }

    let native_verifier = match &def.native_verifier {
        Some(name) => Some(natives.op_verifier(name).ok_or_else(|| {
            Diagnostic::at(
                def.span,
                format!("native op verifier `{name}` is not registered"),
            )
        })?),
        None => None,
    };

    // Figure 11/12 statistics.
    let mut native_local = Vec::new();
    for c in operands
        .iter()
        .map(|a| &a.constraint)
        .chain(results.iter().map(|a| &a.constraint))
        .chain(attr_constraints.iter())
        .chain(regions.iter().flat_map(|r| r.args.iter().flatten().map(|a| &a.constraint)))
        .chain(var_decls.iter())
    {
        collect_native_names(c, &mut native_local);
    }
    native_local.sort();
    native_local.dedup();

    let decl = OpDeclStats {
        operand_defs: def.operands.len() as u32,
        variadic_operands: def
            .operands
            .iter()
            .filter(|a| !matches!(a.variadicity, Variadicity::Single))
            .count() as u32,
        result_defs: def.results.len() as u32,
        variadic_results: def
            .results
            .iter()
            .filter(|a| !matches!(a.variadicity, Variadicity::Single))
            .count() as u32,
        attr_defs: def.attributes.len() as u32,
        region_defs: def.regions.len() as u32,
        successor_defs: def.successors.as_ref().map_or(0, |s| s.len()) as u32,
        native_local_constraints: native_local,
        has_native_verifier: def.native_verifier.is_some(),
    };

    let name_sym = ctx.symbol(&def.name);
    let compiled = Arc::new(CompiledOp {
        name: OpName { dialect: dialect_sym, name: name_sym },
        var_names,
        var_decls,
        operands,
        results,
        attributes,
        regions,
        successors: def.successors.as_ref().map(Vec::len),
        native_verifier,
    });

    let syntax = match &def.format {
        Some(format) => Some(Arc::new(FormatSpec::compile(ctx, format, compiled.clone())
            .map_err(|d| d.or_offset(def.span))?)
            as Arc<dyn irdl_ir::OpSyntax>),
        None => None,
    };

    // Lower the constraints into the flat fast-path program at
    // registration time; verification dispatches over it and falls back to
    // the retained tree interpreter only to render a failure.
    let program = OpProgram::build(ctx, &compiled);
    let info = OpInfo {
        name: name_sym,
        summary: def.summary.clone().unwrap_or_default(),
        is_terminator: def.successors.is_some(),
        verifier: Some(Arc::new(ProgramOpVerifier::new(compiled.clone(), program))),
        syntax,
        decl,
    };
    ctx.registry_mut()
        .dialect_mut(dialect_sym)
        .expect("registered")
        .add_op(info);
    Ok(compiled)
}

/// Resolves a terminator reference: `name` in the same dialect, or a
/// qualified `other.name`.
fn resolve_op_name(ctx: &mut Context, dialect: Symbol, name: &str) -> OpName {
    match name.split_once('.') {
        Some((d, n)) => {
            let dialect = ctx.symbol(d);
            let name = ctx.symbol(n);
            OpName { dialect, name }
        }
        None => {
            let name = ctx.symbol(name);
            OpName { dialect, name }
        }
    }
}

/// Classifies a parameter constraint for the Figure 8 analysis.
pub fn classify_param(constraint: &Constraint) -> ParamKind {
    match constraint {
        Constraint::AnyType
        | Constraint::ExactType(_)
        | Constraint::BaseType { .. }
        | Constraint::ParametricType { .. }
        | Constraint::Class(_) => ParamKind::Type,
        Constraint::Int(_) | Constraint::IntLiteral { .. } => ParamKind::Integer,
        Constraint::FloatAttr(_) => ParamKind::Float,
        Constraint::StringAny | Constraint::StringLiteral(_) => ParamKind::String,
        Constraint::EnumAny { .. } | Constraint::EnumVariant { .. } => ParamKind::Enum,
        Constraint::LocationAttr => ParamKind::Location,
        Constraint::TypeIdAttr => ParamKind::TypeId,
        Constraint::ArrayAny | Constraint::ArrayOf(_) | Constraint::ArrayExact(_) => {
            ParamKind::Array
        }
        Constraint::NativeParam { .. } => ParamKind::Native("native-param".to_string()),
        Constraint::And(parts) => parts
            .iter()
            .find(|p| !matches!(p, Constraint::Native { .. }))
            .map(classify_param)
            .unwrap_or(ParamKind::Attr),
        Constraint::AnyOf(parts) => {
            let kinds: Vec<ParamKind> = parts.iter().map(classify_param).collect();
            match kinds.first() {
                Some(first) if kinds.iter().all(|k| k == first) => first.clone(),
                _ => ParamKind::Attr,
            }
        }
        Constraint::Not(inner) => classify_param(inner),
        _ => ParamKind::Attr,
    }
}

/// Collects the names of native predicates used inside `constraint`
/// (Figure 12's census of C++-requiring local constraints).
pub fn collect_native_names(constraint: &Constraint, out: &mut Vec<String>) {
    match constraint {
        Constraint::Native { name, .. } => out.push(name.clone()),
        Constraint::AnyOf(parts) | Constraint::And(parts) | Constraint::ArrayExact(parts) => {
            for p in parts {
                collect_native_names(p, out);
            }
        }
        Constraint::Not(inner) | Constraint::ArrayOf(inner) => {
            collect_native_names(inner, out)
        }
        Constraint::ParametricType { params, .. } | Constraint::ParametricAttr { params, .. } => {
            for p in params {
                collect_native_names(p, out);
            }
        }
        _ => {}
    }
}

fn contains_native(constraint: &Constraint) -> bool {
    let mut names = Vec::new();
    collect_native_names(constraint, &mut names);
    !names.is_empty()
}
