//! Persisted compiled-dialect artifacts.
//!
//! A [`DialectRecipe`] is the frontend-free description of one compiled
//! dialect: every name, resolved [`Constraint`], format string, and native
//! hook *name* needed to register the dialect on a fresh [`Context`]
//! without parsing IRDL source or running the resolver. Recipes are what
//! [`crate::DialectBundle::save`] persists (magic `IRDB`) and what
//! [`crate::DialectBundle::load`] rehydrates — the cold-start path skips
//! the frontend entirely and goes straight to registration
//! ([`crate::compile::register_recipe`]), which re-lowers the constraint
//! programs against the new context.
//!
//! Native hooks (predicates, verifiers, parameter kinds) are closures and
//! cannot be serialized; recipes store their registered *names* and
//! [`decode_bundle`] re-resolves them from the caller's
//! [`NativeRegistry`], failing with a diagnostic when a hook the artifact
//! needs is not registered.
//!
//! The wire format reuses the `irdl-ir` bytecode primitives: a string
//! table + type/attribute constant pool (encoded against the bundle's
//! template context), then one `RECIPES` section. See the crate-level
//! docs of [`irdl_ir::bytecode`] for the framing and versioning rules.

use irdl_ir::bytecode::{ByteReader, ByteWriter, DecodedPool, Pool, VERSION};
use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::{Context, FloatKind};

use crate::ast::{IntKind, Variadicity};
use crate::constraint::{Constraint, TypeClass};
use crate::native::NativeRegistry;

/// Magic bytes of a dialect-artifact bundle file (`.irdlbc`).
pub const BUNDLE_MAGIC: [u8; 4] = *b"IRDB";
/// Section tag of the recipes payload.
pub const SECTION_RECIPES: u8 = 4;

/// Returns `true` when `bytes` starts with the bundle artifact magic.
pub fn is_bundle_bytecode(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BUNDLE_MAGIC
}

/// Everything needed to register one compiled dialect without the IRDL
/// frontend. Constraints are fully resolved; native hooks appear by name.
#[derive(Debug, Clone)]
pub struct DialectRecipe {
    /// Dialect name.
    pub name: String,
    /// Documentation summary, if any.
    pub summary: Option<String>,
    /// Enum definitions: `(name, variants)`.
    pub enums: Vec<(String, Vec<String>)>,
    /// `TypeOrAttrParam` items: `(item name, native kind name)`.
    pub param_kinds: Vec<(String, String)>,
    /// Type definitions.
    pub typedefs: Vec<TypeOrAttrRecipe>,
    /// Attribute definitions.
    pub attrdefs: Vec<TypeOrAttrRecipe>,
    /// Operation definitions.
    pub ops: Vec<OpRecipe>,
}

/// A compiled type or attribute definition.
#[derive(Debug, Clone)]
pub struct TypeOrAttrRecipe {
    /// Definition name within the dialect.
    pub name: String,
    /// Documentation summary (empty when absent).
    pub summary: String,
    /// Named, resolved parameter constraints.
    pub params: Vec<(String, Constraint)>,
    /// Registered name of the native params verifier, if any.
    pub native_verifier: Option<String>,
    /// Declarative parameter format source, if any.
    pub format: Option<String>,
}

/// A compiled operand/result/region-argument definition.
#[derive(Debug, Clone)]
pub struct ArgRecipe {
    /// Declared name.
    pub name: String,
    /// Resolved element constraint.
    pub constraint: Constraint,
    /// Single, variadic, or optional.
    pub variadicity: Variadicity,
}

/// A compiled region definition.
#[derive(Debug, Clone)]
pub struct RegionRecipe {
    /// Region name.
    pub name: String,
    /// Entry-block argument constraints (`None` = unconstrained).
    pub args: Option<Vec<ArgRecipe>>,
    /// Required terminator as `(dialect, op name)`, already resolved.
    pub terminator: Option<(String, String)>,
}

/// A compiled operation definition.
#[derive(Debug, Clone)]
pub struct OpRecipe {
    /// Operation name within the dialect.
    pub name: String,
    /// Documentation summary (empty when absent).
    pub summary: String,
    /// Constraint variable names.
    pub var_names: Vec<String>,
    /// Constraint variable declarations (parallel to `var_names`).
    pub var_decls: Vec<Constraint>,
    /// Operand definitions.
    pub operands: Vec<ArgRecipe>,
    /// Result definitions.
    pub results: Vec<ArgRecipe>,
    /// Attribute definitions: `(key, constraint)`.
    pub attributes: Vec<(String, Constraint)>,
    /// Region definitions.
    pub regions: Vec<RegionRecipe>,
    /// Successor count; `Some` also marks the op a terminator.
    pub successors: Option<usize>,
    /// Registered name of the native op verifier, if any.
    pub native_verifier: Option<String>,
    /// Declarative assembly format source, if any.
    pub format: Option<String>,
}

// ---------------------------------------------------------------------------
// Constraint codec
// ---------------------------------------------------------------------------

const C_ANY: u8 = 0;
const C_ANY_TYPE: u8 = 1;
const C_ANY_ATTR: u8 = 2;
const C_EXACT_TYPE: u8 = 3;
const C_BASE_TYPE: u8 = 4;
const C_PARAMETRIC_TYPE: u8 = 5;
const C_CLASS: u8 = 6;
const C_EXACT_ATTR: u8 = 7;
const C_BASE_ATTR: u8 = 8;
const C_PARAMETRIC_ATTR: u8 = 9;
const C_INT: u8 = 10;
const C_INT_LITERAL: u8 = 11;
const C_FLOAT_ATTR: u8 = 12;
const C_STRING_ANY: u8 = 13;
const C_STRING_LITERAL: u8 = 14;
const C_BOOL_ATTR: u8 = 15;
const C_UNIT_ATTR: u8 = 16;
const C_SYMBOL_REF_ATTR: u8 = 17;
const C_LOCATION_ATTR: u8 = 18;
const C_TYPE_ID_ATTR: u8 = 19;
const C_ARRAY_ANY: u8 = 20;
const C_ARRAY_OF: u8 = 21;
const C_ARRAY_EXACT: u8 = 22;
const C_ENUM_ANY: u8 = 23;
const C_ENUM_VARIANT: u8 = 24;
const C_NATIVE_PARAM: u8 = 25;
const C_ANY_OF: u8 = 26;
const C_AND: u8 = 27;
const C_NOT: u8 = 28;
const C_VAR: u8 = 29;
const C_NATIVE: u8 = 30;

/// Nesting bound for constraint decoding: real constraints are shallow;
/// anything deeper is corrupt input trying to exhaust the stack.
const MAX_CONSTRAINT_DEPTH: u32 = 256;

fn class_tag(class: TypeClass) -> u8 {
    match class {
        TypeClass::AnyInteger => 0,
        TypeClass::AnyFloat => 1,
        TypeClass::Index => 2,
        TypeClass::AnyVector => 3,
        TypeClass::AnyTensor => 4,
        TypeClass::AnyMemRef => 5,
        TypeClass::AnyFunction => 6,
    }
}

fn class_from(tag: u8) -> Option<TypeClass> {
    match tag {
        0 => Some(TypeClass::AnyInteger),
        1 => Some(TypeClass::AnyFloat),
        2 => Some(TypeClass::Index),
        3 => Some(TypeClass::AnyVector),
        4 => Some(TypeClass::AnyTensor),
        5 => Some(TypeClass::AnyMemRef),
        6 => Some(TypeClass::AnyFunction),
        _ => None,
    }
}

fn float_kind_tag(kind: FloatKind) -> u8 {
    match kind {
        FloatKind::BF16 => 0,
        FloatKind::F16 => 1,
        FloatKind::F32 => 2,
        FloatKind::F64 => 3,
    }
}

fn float_kind_from(tag: u8) -> Option<FloatKind> {
    match tag {
        0 => Some(FloatKind::BF16),
        1 => Some(FloatKind::F16),
        2 => Some(FloatKind::F32),
        3 => Some(FloatKind::F64),
        _ => None,
    }
}

fn write_int_kind(w: &mut ByteWriter, kind: IntKind) {
    w.varint(u64::from(kind.width));
    w.u8(u8::from(kind.unsigned));
}

fn read_int_kind(r: &mut ByteReader<'_>) -> Result<IntKind> {
    let width = r.varint()? as u32;
    let unsigned = r.u8()? != 0;
    if !matches!(width, 8 | 16 | 32 | 64) {
        return Err(r.error(format!("invalid integer parameter width {width}")));
    }
    Ok(IntKind { width, unsigned })
}

/// Encodes one resolved constraint against `pool`.
pub fn encode_constraint(ctx: &Context, pool: &mut Pool, w: &mut ByteWriter, c: &Constraint) {
    match c {
        Constraint::Any => w.u8(C_ANY),
        Constraint::AnyType => w.u8(C_ANY_TYPE),
        Constraint::AnyAttr => w.u8(C_ANY_ATTR),
        Constraint::ExactType(ty) => {
            w.u8(C_EXACT_TYPE);
            let id = pool.type_id(ctx, *ty);
            w.varint(u64::from(id));
        }
        Constraint::BaseType { dialect, name } => {
            w.u8(C_BASE_TYPE);
            let d = pool.symbol_id(ctx, *dialect);
            let n = pool.symbol_id(ctx, *name);
            w.varint(u64::from(d));
            w.varint(u64::from(n));
        }
        Constraint::ParametricType { dialect, name, params } => {
            w.u8(C_PARAMETRIC_TYPE);
            let d = pool.symbol_id(ctx, *dialect);
            let n = pool.symbol_id(ctx, *name);
            w.varint(u64::from(d));
            w.varint(u64::from(n));
            w.varint(params.len() as u64);
            for p in params {
                encode_constraint(ctx, pool, w, p);
            }
        }
        Constraint::Class(class) => {
            w.u8(C_CLASS);
            w.u8(class_tag(*class));
        }
        Constraint::ExactAttr(attr) => {
            w.u8(C_EXACT_ATTR);
            let id = pool.attr_id(ctx, *attr);
            w.varint(u64::from(id));
        }
        Constraint::BaseAttr { dialect, name } => {
            w.u8(C_BASE_ATTR);
            let d = pool.symbol_id(ctx, *dialect);
            let n = pool.symbol_id(ctx, *name);
            w.varint(u64::from(d));
            w.varint(u64::from(n));
        }
        Constraint::ParametricAttr { dialect, name, params } => {
            w.u8(C_PARAMETRIC_ATTR);
            let d = pool.symbol_id(ctx, *dialect);
            let n = pool.symbol_id(ctx, *name);
            w.varint(u64::from(d));
            w.varint(u64::from(n));
            w.varint(params.len() as u64);
            for p in params {
                encode_constraint(ctx, pool, w, p);
            }
        }
        Constraint::Int(kind) => {
            w.u8(C_INT);
            write_int_kind(w, *kind);
        }
        Constraint::IntLiteral { value, kind } => {
            w.u8(C_INT_LITERAL);
            w.zigzag128(*value);
            write_int_kind(w, *kind);
        }
        Constraint::FloatAttr(kind) => {
            w.u8(C_FLOAT_ATTR);
            match kind {
                Some(kind) => {
                    w.u8(1);
                    w.u8(float_kind_tag(*kind));
                }
                None => w.u8(0),
            }
        }
        Constraint::StringAny => w.u8(C_STRING_ANY),
        Constraint::StringLiteral(s) => {
            w.u8(C_STRING_LITERAL);
            let id = pool.str_id(s);
            w.varint(u64::from(id));
        }
        Constraint::BoolAttr => w.u8(C_BOOL_ATTR),
        Constraint::UnitAttr => w.u8(C_UNIT_ATTR),
        Constraint::SymbolRefAttr => w.u8(C_SYMBOL_REF_ATTR),
        Constraint::LocationAttr => w.u8(C_LOCATION_ATTR),
        Constraint::TypeIdAttr => w.u8(C_TYPE_ID_ATTR),
        Constraint::ArrayAny => w.u8(C_ARRAY_ANY),
        Constraint::ArrayOf(inner) => {
            w.u8(C_ARRAY_OF);
            encode_constraint(ctx, pool, w, inner);
        }
        Constraint::ArrayExact(items) => {
            w.u8(C_ARRAY_EXACT);
            w.varint(items.len() as u64);
            for item in items {
                encode_constraint(ctx, pool, w, item);
            }
        }
        Constraint::EnumAny { dialect, name } => {
            w.u8(C_ENUM_ANY);
            let d = pool.symbol_id(ctx, *dialect);
            let n = pool.symbol_id(ctx, *name);
            w.varint(u64::from(d));
            w.varint(u64::from(n));
        }
        Constraint::EnumVariant { dialect, name, variant } => {
            w.u8(C_ENUM_VARIANT);
            for sym in [dialect, name, variant] {
                let id = pool.symbol_id(ctx, *sym);
                w.varint(u64::from(id));
            }
        }
        Constraint::NativeParam { kind } => {
            w.u8(C_NATIVE_PARAM);
            let id = pool.symbol_id(ctx, *kind);
            w.varint(u64::from(id));
        }
        Constraint::AnyOf(parts) => {
            w.u8(C_ANY_OF);
            w.varint(parts.len() as u64);
            for p in parts {
                encode_constraint(ctx, pool, w, p);
            }
        }
        Constraint::And(parts) => {
            w.u8(C_AND);
            w.varint(parts.len() as u64);
            for p in parts {
                encode_constraint(ctx, pool, w, p);
            }
        }
        Constraint::Not(inner) => {
            w.u8(C_NOT);
            encode_constraint(ctx, pool, w, inner);
        }
        Constraint::Var(index) => {
            w.u8(C_VAR);
            w.varint(u64::from(*index));
        }
        Constraint::Native { name, .. } => {
            // The predicate is a closure: persist the registered name, let
            // the loader re-resolve it.
            w.u8(C_NATIVE);
            let id = pool.str_id(name);
            w.varint(u64::from(id));
        }
    }
}

/// Decodes one constraint, re-resolving native predicates by name from
/// `natives`.
pub fn decode_constraint(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    natives: &NativeRegistry,
    r: &mut ByteReader<'_>,
) -> Result<Constraint> {
    decode_constraint_at(ctx, pool, natives, r, 0)
}

fn decode_constraint_list(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    natives: &NativeRegistry,
    r: &mut ByteReader<'_>,
    depth: u32,
) -> Result<Vec<Constraint>> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_constraint_at(ctx, pool, natives, r, depth)?);
    }
    Ok(out)
}

fn decode_constraint_at(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    natives: &NativeRegistry,
    r: &mut ByteReader<'_>,
    depth: u32,
) -> Result<Constraint> {
    if depth > MAX_CONSTRAINT_DEPTH {
        return Err(r.error("constraint nesting exceeds the decoder limit"));
    }
    let depth = depth + 1;
    Ok(match r.u8()? {
        C_ANY => Constraint::Any,
        C_ANY_TYPE => Constraint::AnyType,
        C_ANY_ATTR => Constraint::AnyAttr,
        C_EXACT_TYPE => Constraint::ExactType(pool.body_type(r)?),
        C_BASE_TYPE => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            Constraint::BaseType { dialect, name }
        }
        C_PARAMETRIC_TYPE => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            let params = decode_constraint_list(ctx, pool, natives, r, depth)?;
            Constraint::ParametricType { dialect, name, params }
        }
        C_CLASS => Constraint::Class(
            class_from(r.u8()?).ok_or_else(|| r.error("invalid type class tag"))?,
        ),
        C_EXACT_ATTR => Constraint::ExactAttr(pool.body_attr(r)?),
        C_BASE_ATTR => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            Constraint::BaseAttr { dialect, name }
        }
        C_PARAMETRIC_ATTR => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            let params = decode_constraint_list(ctx, pool, natives, r, depth)?;
            Constraint::ParametricAttr { dialect, name, params }
        }
        C_INT => Constraint::Int(read_int_kind(r)?),
        C_INT_LITERAL => {
            let value = r.zigzag128()?;
            let kind = read_int_kind(r)?;
            Constraint::IntLiteral { value, kind }
        }
        C_FLOAT_ATTR => {
            let kind = match r.u8()? {
                0 => None,
                1 => Some(
                    float_kind_from(r.u8()?).ok_or_else(|| r.error("invalid float kind tag"))?,
                ),
                _ => return Err(r.error("invalid option tag")),
            };
            Constraint::FloatAttr(kind)
        }
        C_STRING_ANY => Constraint::StringAny,
        C_STRING_LITERAL => Constraint::StringLiteral(pool.string(r)?.to_string()),
        C_BOOL_ATTR => Constraint::BoolAttr,
        C_UNIT_ATTR => Constraint::UnitAttr,
        C_SYMBOL_REF_ATTR => Constraint::SymbolRefAttr,
        C_LOCATION_ATTR => Constraint::LocationAttr,
        C_TYPE_ID_ATTR => Constraint::TypeIdAttr,
        C_ARRAY_ANY => Constraint::ArrayAny,
        C_ARRAY_OF => {
            Constraint::ArrayOf(Box::new(decode_constraint_at(ctx, pool, natives, r, depth)?))
        }
        C_ARRAY_EXACT => {
            Constraint::ArrayExact(decode_constraint_list(ctx, pool, natives, r, depth)?)
        }
        C_ENUM_ANY => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            Constraint::EnumAny { dialect, name }
        }
        C_ENUM_VARIANT => {
            let dialect = pool.symbol(ctx, r)?;
            let name = pool.symbol(ctx, r)?;
            let variant = pool.symbol(ctx, r)?;
            Constraint::EnumVariant { dialect, name, variant }
        }
        C_NATIVE_PARAM => Constraint::NativeParam { kind: pool.symbol(ctx, r)? },
        C_ANY_OF => Constraint::AnyOf(decode_constraint_list(ctx, pool, natives, r, depth)?),
        C_AND => Constraint::And(decode_constraint_list(ctx, pool, natives, r, depth)?),
        C_NOT => Constraint::Not(Box::new(decode_constraint_at(ctx, pool, natives, r, depth)?)),
        C_VAR => Constraint::Var(r.varint()? as u32),
        C_NATIVE => {
            let name = pool.string(r)?;
            let pred = natives.constraint(name).ok_or_else(|| {
                Diagnostic::new(format!(
                    "artifact requires native predicate `{name}`, which is not registered"
                ))
            })?;
            Constraint::Native { name: name.to_string(), pred }
        }
        other => return Err(r.error(format!("unknown constraint tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Recipe codec
// ---------------------------------------------------------------------------

fn write_opt_str(pool: &mut Pool, w: &mut ByteWriter, s: Option<&str>) {
    match s {
        Some(s) => {
            w.u8(1);
            let id = pool.str_id(s);
            w.varint(u64::from(id));
        }
        None => w.u8(0),
    }
}

fn read_opt_string(pool: &DecodedPool<'_>, r: &mut ByteReader<'_>) -> Result<Option<String>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(pool.string(r)?.to_string())),
        _ => Err(r.error("invalid option tag")),
    }
}

fn write_str(pool: &mut Pool, w: &mut ByteWriter, s: &str) {
    let id = pool.str_id(s);
    w.varint(u64::from(id));
}

fn variadicity_tag(v: Variadicity) -> u8 {
    match v {
        Variadicity::Single => 0,
        Variadicity::Variadic => 1,
        Variadicity::Optional => 2,
    }
}

fn variadicity_from(tag: u8) -> Option<Variadicity> {
    match tag {
        0 => Some(Variadicity::Single),
        1 => Some(Variadicity::Variadic),
        2 => Some(Variadicity::Optional),
        _ => None,
    }
}

fn encode_args(ctx: &Context, pool: &mut Pool, w: &mut ByteWriter, args: &[ArgRecipe]) {
    w.varint(args.len() as u64);
    for arg in args {
        write_str(pool, w, &arg.name);
        encode_constraint(ctx, pool, w, &arg.constraint);
        w.u8(variadicity_tag(arg.variadicity));
    }
}

fn decode_args(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    natives: &NativeRegistry,
    r: &mut ByteReader<'_>,
) -> Result<Vec<ArgRecipe>> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = pool.string(r)?.to_string();
        let constraint = decode_constraint(ctx, pool, natives, r)?;
        let variadicity = variadicity_from(r.u8()?)
            .ok_or_else(|| r.error("invalid variadicity tag"))?;
        out.push(ArgRecipe { name, constraint, variadicity });
    }
    Ok(out)
}

fn encode_recipe(ctx: &Context, pool: &mut Pool, w: &mut ByteWriter, recipe: &DialectRecipe) {
    write_str(pool, w, &recipe.name);
    write_opt_str(pool, w, recipe.summary.as_deref());

    w.varint(recipe.enums.len() as u64);
    for (name, variants) in &recipe.enums {
        write_str(pool, w, name);
        w.varint(variants.len() as u64);
        for variant in variants {
            write_str(pool, w, variant);
        }
    }

    w.varint(recipe.param_kinds.len() as u64);
    for (item, kind) in &recipe.param_kinds {
        write_str(pool, w, item);
        write_str(pool, w, kind);
    }

    for defs in [&recipe.typedefs, &recipe.attrdefs] {
        w.varint(defs.len() as u64);
        for def in defs.iter() {
            write_str(pool, w, &def.name);
            write_str(pool, w, &def.summary);
            w.varint(def.params.len() as u64);
            for (name, constraint) in &def.params {
                write_str(pool, w, name);
                encode_constraint(ctx, pool, w, constraint);
            }
            write_opt_str(pool, w, def.native_verifier.as_deref());
            write_opt_str(pool, w, def.format.as_deref());
        }
    }

    w.varint(recipe.ops.len() as u64);
    for op in &recipe.ops {
        write_str(pool, w, &op.name);
        write_str(pool, w, &op.summary);
        w.varint(op.var_names.len() as u64);
        for name in &op.var_names {
            write_str(pool, w, name);
        }
        for decl in &op.var_decls {
            encode_constraint(ctx, pool, w, decl);
        }
        encode_args(ctx, pool, w, &op.operands);
        encode_args(ctx, pool, w, &op.results);
        w.varint(op.attributes.len() as u64);
        for (key, constraint) in &op.attributes {
            write_str(pool, w, key);
            encode_constraint(ctx, pool, w, constraint);
        }
        w.varint(op.regions.len() as u64);
        for region in &op.regions {
            write_str(pool, w, &region.name);
            match &region.args {
                Some(args) => {
                    w.u8(1);
                    encode_args(ctx, pool, w, args);
                }
                None => w.u8(0),
            }
            match &region.terminator {
                Some((dialect, name)) => {
                    w.u8(1);
                    write_str(pool, w, dialect);
                    write_str(pool, w, name);
                }
                None => w.u8(0),
            }
        }
        match op.successors {
            Some(count) => {
                w.u8(1);
                w.varint(count as u64);
            }
            None => w.u8(0),
        }
        write_opt_str(pool, w, op.native_verifier.as_deref());
        write_opt_str(pool, w, op.format.as_deref());
    }
}

fn decode_recipe(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    natives: &NativeRegistry,
    r: &mut ByteReader<'_>,
) -> Result<DialectRecipe> {
    let name = pool.string(r)?.to_string();
    let summary = read_opt_string(pool, r)?;

    let n_enums = r.count(1)?;
    let mut enums = Vec::with_capacity(n_enums);
    for _ in 0..n_enums {
        let name = pool.string(r)?.to_string();
        let n_variants = r.count(1)?;
        let mut variants = Vec::with_capacity(n_variants);
        for _ in 0..n_variants {
            variants.push(pool.string(r)?.to_string());
        }
        enums.push((name, variants));
    }

    let n_kinds = r.count(1)?;
    let mut param_kinds = Vec::with_capacity(n_kinds);
    for _ in 0..n_kinds {
        let item = pool.string(r)?.to_string();
        let kind = pool.string(r)?.to_string();
        param_kinds.push((item, kind));
    }

    let mut def_lists = Vec::with_capacity(2);
    for _ in 0..2 {
        let n_defs = r.count(1)?;
        let mut defs = Vec::with_capacity(n_defs);
        for _ in 0..n_defs {
            let name = pool.string(r)?.to_string();
            let summary = pool.string(r)?.to_string();
            let n_params = r.count(1)?;
            let mut params = Vec::with_capacity(n_params);
            for _ in 0..n_params {
                let name = pool.string(r)?.to_string();
                let constraint = decode_constraint(ctx, pool, natives, r)?;
                params.push((name, constraint));
            }
            let native_verifier = read_opt_string(pool, r)?;
            let format = read_opt_string(pool, r)?;
            defs.push(TypeOrAttrRecipe { name, summary, params, native_verifier, format });
        }
        def_lists.push(defs);
    }
    let attrdefs = def_lists.pop().expect("two lists");
    let typedefs = def_lists.pop().expect("two lists");

    let n_ops = r.count(1)?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let name = pool.string(r)?.to_string();
        let summary = pool.string(r)?.to_string();
        let n_vars = r.count(1)?;
        let mut var_names = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            var_names.push(pool.string(r)?.to_string());
        }
        let mut var_decls = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            var_decls.push(decode_constraint(ctx, pool, natives, r)?);
        }
        let operands = decode_args(ctx, pool, natives, r)?;
        let results = decode_args(ctx, pool, natives, r)?;
        let n_attrs = r.count(1)?;
        let mut attributes = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let key = pool.string(r)?.to_string();
            let constraint = decode_constraint(ctx, pool, natives, r)?;
            attributes.push((key, constraint));
        }
        let n_regions = r.count(1)?;
        let mut regions = Vec::with_capacity(n_regions);
        for _ in 0..n_regions {
            let name = pool.string(r)?.to_string();
            let args = match r.u8()? {
                0 => None,
                1 => Some(decode_args(ctx, pool, natives, r)?),
                _ => return Err(r.error("invalid option tag")),
            };
            let terminator = match r.u8()? {
                0 => None,
                1 => {
                    let dialect = pool.string(r)?.to_string();
                    let op = pool.string(r)?.to_string();
                    Some((dialect, op))
                }
                _ => return Err(r.error("invalid option tag")),
            };
            regions.push(RegionRecipe { name, args, terminator });
        }
        let successors = match r.u8()? {
            0 => None,
            1 => Some(r.varint()? as usize),
            _ => return Err(r.error("invalid option tag")),
        };
        let native_verifier = read_opt_string(pool, r)?;
        let format = read_opt_string(pool, r)?;
        ops.push(OpRecipe {
            name,
            summary,
            var_names,
            var_decls,
            operands,
            results,
            attributes,
            regions,
            successors,
            native_verifier,
            format,
        });
    }

    Ok(DialectRecipe { name, summary, enums, param_kinds, typedefs, attrdefs, ops })
}

// ---------------------------------------------------------------------------
// Bundle file
// ---------------------------------------------------------------------------

/// Encodes `recipes` (resolved against `ctx`, the bundle template) into a
/// bundle artifact file.
pub fn encode_bundle(ctx: &Context, recipes: &[DialectRecipe]) -> Vec<u8> {
    let mut pool = Pool::new();
    let mut body = ByteWriter::new();
    body.varint(recipes.len() as u64);
    for recipe in recipes {
        encode_recipe(ctx, &mut pool, &mut body, recipe);
    }

    let mut out = ByteWriter::new();
    out.bytes(&BUNDLE_MAGIC);
    out.u8(VERSION);
    pool.emit_sections(&mut out);
    out.section(SECTION_RECIPES, &body);
    out.into_vec()
}

/// Decodes a bundle artifact into recipes bound to `ctx`, re-resolving
/// native hooks from `natives`.
///
/// # Errors
///
/// Returns a diagnostic (never panics) on bad magic, an unsupported
/// version, truncated or malformed sections, or a native predicate the
/// artifact needs that `natives` does not register.
pub fn decode_bundle(
    ctx: &mut Context,
    bytes: &[u8],
    natives: &NativeRegistry,
) -> Result<Vec<DialectRecipe>> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4).map_err(|_| Diagnostic::new("bytecode: input shorter than magic"))?;
    if magic != BUNDLE_MAGIC {
        return Err(Diagnostic::new(format!(
            "bytecode: bad magic {magic:?} (expected {BUNDLE_MAGIC:?}; not a dialect bundle file)"
        )));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(Diagnostic::new(format!(
            "bytecode: unsupported version {version} (this reader supports {VERSION})"
        )));
    }

    let mut pool = DecodedPool::empty();
    let mut seen_strings = false;
    let mut seen_pool = false;
    let mut recipes = None;
    while !r.is_empty() {
        let tag = r.u8()?;
        let mut section = r.sub_reader()?;
        match tag {
            irdl_ir::bytecode::SECTION_STRINGS => {
                pool.read_strings(ctx, &mut section)?;
                seen_strings = true;
            }
            irdl_ir::bytecode::SECTION_POOL => {
                if !seen_strings {
                    return Err(section.error("pool section precedes strings section"));
                }
                pool.read_pool(ctx, &mut section)?;
                seen_pool = true;
            }
            SECTION_RECIPES => {
                if !seen_pool {
                    return Err(section.error("recipes section precedes pool section"));
                }
                let count = section.count(1)?;
                let mut out = Vec::with_capacity(count);
                for _ in 0..count {
                    out.push(decode_recipe(ctx, &mut pool, natives, &mut section)?);
                }
                if !section.is_empty() {
                    return Err(section.error("trailing bytes after recipes"));
                }
                recipes = Some(out);
            }
            _ => {}
        }
    }
    recipes.ok_or_else(|| Diagnostic::new("bytecode: no recipes section"))
}
