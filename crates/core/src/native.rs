//! IRDL-Rust: the native escape hatch (the paper's IRDL-C++, §5).
//!
//! The paper embeds C++ snippets (`CppConstraint "$_self <= 32"`) that are
//! compiled together with the dialect. A Rust reproduction cannot compile
//! source strings at runtime, so IRDL-Rust references *named* hooks instead:
//! a specification says `NativeConstraint "bounded_u32"` and the host
//! program registers a closure under that name before compiling the
//! dialect. The measured property — which definitions need an escape to a
//! general-purpose language, and how many (paper Figures 9-12) — is
//! preserved: each native reference is visible in the registry metadata.

use std::collections::HashMap;
use std::sync::Arc;

use irdl_ir::dialect::NativeParamHandler;
use irdl_ir::{Attribute, Context, OpRef};

use crate::constraint::{CVal, NativePred};

/// A native verifier over a whole operation (op-level `CppConstraint`).
pub type NativeOpVerifier = Arc<dyn Fn(&Context, OpRef) -> irdl_ir::Result<()> + Send + Sync>;

/// A native verifier over a type/attribute parameter list.
pub type NativeParamsVerifier = Arc<dyn Fn(&Context, &[Attribute]) -> irdl_ir::Result<()> + Send + Sync>;

/// The registry of named native hooks available to the IRDL compiler.
#[derive(Default, Clone)]
pub struct NativeRegistry {
    constraints: HashMap<String, NativePred>,
    op_verifiers: HashMap<String, NativeOpVerifier>,
    params_verifiers: HashMap<String, NativeParamsVerifier>,
    param_kinds: HashMap<String, Arc<dyn NativeParamHandler>>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("constraints", &self.constraints.keys().collect::<Vec<_>>())
            .field("op_verifiers", &self.op_verifiers.keys().collect::<Vec<_>>())
            .field("params_verifiers", &self.params_verifiers.keys().collect::<Vec<_>>())
            .field("param_kinds", &self.param_kinds.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl NativeRegistry {
    /// An empty registry: purely declarative dialects only.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the stock predicates used across the
    /// evaluation corpus — one per category of C++-only local constraint
    /// the paper found in MLIR (Figure 12):
    ///
    /// | name | paper category |
    /// |---|---|
    /// | `integer_inequality` | integer attributes restricted to a range |
    /// | `stride_check` | strided memory access validation |
    /// | `struct_opacity` | LLVM struct opacity checks |
    ///
    /// plus `bounded_u32` (Listing 10's `BoundedInteger`).
    pub fn with_std() -> Self {
        let mut registry = Self::new();
        registry.register_constraint(
            "integer_inequality",
            Arc::new(|ctx: &Context, val: &CVal| match val {
                CVal::Attr(attr) => match attr.as_int(ctx) {
                    Some(v) if v >= 0 => Ok(()),
                    Some(v) => Err(format!("integer inequality violated: {v} < 0")),
                    None => Err("expected an integer parameter".to_string()),
                },
                CVal::Type(_) => Err("expected an integer parameter".to_string()),
            }),
        );
        registry.register_constraint(
            "bounded_u32",
            Arc::new(|ctx: &Context, val: &CVal| match val {
                CVal::Attr(attr) => match attr.as_int(ctx) {
                    Some(v) if (0..=32).contains(&v) => Ok(()),
                    Some(v) => Err(format!("integer value {v} is not between 0 and 32")),
                    None => Err("expected an integer parameter".to_string()),
                },
                CVal::Type(_) => Err("expected an integer parameter".to_string()),
            }),
        );
        registry.register_constraint(
            "stride_check",
            Arc::new(|ctx: &Context, val: &CVal| match val {
                // Strides are arrays of integers where each stride must be
                // non-zero (a zero stride aliases every element).
                CVal::Attr(attr) => match attr.as_array(ctx) {
                    Some(items) => {
                        for item in items {
                            match item.as_int(ctx) {
                                Some(0) => return Err("stride must be non-zero".to_string()),
                                Some(_) => {}
                                None => return Err("stride must be an integer".to_string()),
                            }
                        }
                        Ok(())
                    }
                    None => Err("expected a stride array".to_string()),
                },
                CVal::Type(_) => Err("expected a stride array".to_string()),
            }),
        );
        registry.register_constraint(
            "struct_opacity",
            Arc::new(|ctx: &Context, val: &CVal| match val {
                // An opaque struct has no body: model as the empty string
                // body being the only rejected value.
                CVal::Attr(attr) => match attr.as_str(ctx) {
                    Some(body) if !body.is_empty() => Ok(()),
                    Some(_) => Err("struct body must not be opaque here".to_string()),
                    None => Err("expected a struct body string".to_string()),
                },
                CVal::Type(_) => Err("expected a struct body string".to_string()),
            }),
        );
        registry.register_param_kind(
            "string_param",
            Arc::new(|_text: &str| Ok(())),
        );
        registry.register_param_kind(
            "affine_map",
            Arc::new(|text: &str| {
                if text.starts_with('(') && text.contains("->") {
                    Ok(())
                } else {
                    Err(irdl_ir::Diagnostic::new(format!(
                        "`{text}` is not an affine map (expected `(dims) -> (exprs)`)"
                    )))
                }
            }),
        );
        registry.register_param_kind(
            "llvm_struct_body",
            Arc::new(|_text: &str| Ok(())),
        );
        registry
    }

    /// Registers a value-level native constraint (paper §5.1).
    pub fn register_constraint(&mut self, name: impl Into<String>, pred: NativePred) {
        self.constraints.insert(name.into(), pred);
    }

    /// Registers an operation-level native verifier (op `CppConstraint`).
    pub fn register_op_verifier(&mut self, name: impl Into<String>, hook: NativeOpVerifier) {
        self.op_verifiers.insert(name.into(), hook);
    }

    /// Registers a native verifier for type/attribute parameter lists.
    pub fn register_params_verifier(
        &mut self,
        name: impl Into<String>,
        hook: NativeParamsVerifier,
    ) {
        self.params_verifiers.insert(name.into(), hook);
    }

    /// Registers a native parameter kind (paper §5.2, `TypeOrAttrParam`).
    pub fn register_param_kind(
        &mut self,
        name: impl Into<String>,
        handler: Arc<dyn NativeParamHandler>,
    ) {
        self.param_kinds.insert(name.into(), handler);
    }

    /// Looks up a value-level constraint predicate.
    pub fn constraint(&self, name: &str) -> Option<NativePred> {
        self.constraints.get(name).cloned()
    }

    /// Looks up an operation verifier.
    pub fn op_verifier(&self, name: &str) -> Option<NativeOpVerifier> {
        self.op_verifiers.get(name).cloned()
    }

    /// Looks up a parameter-list verifier.
    pub fn params_verifier(&self, name: &str) -> Option<NativeParamsVerifier> {
        self.params_verifiers.get(name).cloned()
    }

    /// Looks up a native parameter kind handler.
    pub fn param_kind(&self, name: &str) -> Option<Arc<dyn NativeParamHandler>> {
        self.param_kinds.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_registry_has_figure12_categories() {
        let registry = NativeRegistry::with_std();
        for name in ["integer_inequality", "stride_check", "struct_opacity", "bounded_u32"] {
            assert!(registry.constraint(name).is_some(), "missing {name}");
        }
        assert!(registry.param_kind("affine_map").is_some());
    }

    #[test]
    fn stride_check_semantics() {
        let registry = NativeRegistry::with_std();
        let pred = registry.constraint("stride_check").unwrap();
        let mut ctx = Context::new();
        let one = ctx.i64_attr(1);
        let zero = ctx.i64_attr(0);
        let good = ctx.array_attr([one]);
        let bad = ctx.array_attr([one, zero]);
        assert!(pred(&ctx, &CVal::Attr(good)).is_ok());
        assert!(pred(&ctx, &CVal::Attr(bad)).is_err());
    }
}
