//! A programmatic builder for IRDL dialects.
//!
//! Most users write IRDL text, but tooling that *generates* dialects (like
//! the corpus generator, or a frontend emitting domain-specific IRs on the
//! fly — the paper's "clang could generate IRs on the fly" scenario, §3)
//! benefits from building the AST directly. The builder produces the same
//! [`DialectDef`] the parser produces, so everything downstream —
//! resolution, verifier synthesis, formats — is shared.
//!
//! ```
//! use irdl::builder::{expr, DialectBuilder};
//! use irdl_ir::Context;
//!
//! let dialect = DialectBuilder::new("cmath")
//!     .summary("Complex arithmetic")
//!     .type_def("complex", |t| {
//!         t.param("elementType", expr::any_of([expr::ty("f32"), expr::ty("f64")]))
//!             .summary("A complex number")
//!     })
//!     .operation("norm", |op| {
//!         op.constraint_var("T", expr::any_of([expr::ty("f32"), expr::ty("f64")]))
//!             .operand("c", expr::ty_args("complex", [expr::ty("T")]))
//!             .result("res", expr::ty("T"))
//!     })
//!     .build();
//!
//! let mut ctx = Context::new();
//! irdl::compile::compile_dialect(&mut ctx, &dialect, &irdl::NativeRegistry::new())?;
//! # Ok::<(), irdl_ir::Diagnostic>(())
//! ```

use crate::ast::*;

/// Builds a [`DialectDef`] programmatically.
#[derive(Debug, Clone)]
pub struct DialectBuilder {
    def: DialectDef,
}

impl DialectBuilder {
    /// Starts a dialect named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DialectBuilder {
            def: DialectDef { name: name.into(), summary: None, items: Vec::new(), span: 0 },
        }
    }

    /// Sets the documentation summary.
    pub fn summary(mut self, summary: impl Into<String>) -> Self {
        self.def.summary = Some(summary.into());
        self
    }

    /// Adds a type definition.
    pub fn type_def(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(TypeAttrBuilder) -> TypeAttrBuilder,
    ) -> Self {
        let builder = f(TypeAttrBuilder::new(name));
        self.def.items.push(Item::Type(builder.def));
        self
    }

    /// Adds an attribute definition.
    pub fn attr_def(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(TypeAttrBuilder) -> TypeAttrBuilder,
    ) -> Self {
        let builder = f(TypeAttrBuilder::new(name));
        self.def.items.push(Item::Attribute(builder.def));
        self
    }

    /// Adds an alias.
    pub fn alias(mut self, name: impl Into<String>, body: ConstraintExpr) -> Self {
        self.def.items.push(Item::Alias(AliasDef {
            name: name.into(),
            params: Vec::new(),
            body,
            span: 0,
        }));
        self
    }

    /// Adds a parametric alias.
    pub fn parametric_alias(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = String>,
        body: ConstraintExpr,
    ) -> Self {
        self.def.items.push(Item::Alias(AliasDef {
            name: name.into(),
            params: params.into_iter().collect(),
            body,
            span: 0,
        }));
        self
    }

    /// Adds an enum definition.
    pub fn enum_def<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        variants: impl IntoIterator<Item = S>,
    ) -> Self {
        self.def.items.push(Item::Enum(EnumDef {
            name: name.into(),
            variants: variants.into_iter().map(Into::into).collect(),
            span: 0,
        }));
        self
    }

    /// Adds a named (optionally native) constraint definition.
    pub fn constraint_def(
        mut self,
        name: impl Into<String>,
        base: ConstraintExpr,
        native: Option<&str>,
    ) -> Self {
        self.def.items.push(Item::Constraint(ConstraintDef {
            name: name.into(),
            base,
            summary: None,
            native: native.map(str::to_string),
            span: 0,
        }));
        self
    }

    /// Adds a native parameter kind (paper §5.2).
    pub fn native_param(
        mut self,
        name: impl Into<String>,
        native_kind: impl Into<String>,
    ) -> Self {
        self.def.items.push(Item::TypeOrAttrParam(ParamDef {
            name: name.into(),
            summary: None,
            native_kind: native_kind.into(),
            span: 0,
        }));
        self
    }

    /// Adds an operation definition.
    pub fn operation(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(OpBuilder) -> OpBuilder,
    ) -> Self {
        let builder = f(OpBuilder::new(name));
        self.def.items.push(Item::Operation(builder.def));
        self
    }

    /// Finishes the dialect.
    pub fn build(self) -> DialectDef {
        self.def
    }
}

/// Builds a type or attribute definition.
#[derive(Debug, Clone)]
pub struct TypeAttrBuilder {
    def: TypeAttrDef,
}

impl TypeAttrBuilder {
    fn new(name: impl Into<String>) -> Self {
        TypeAttrBuilder {
            def: TypeAttrDef {
                name: name.into(),
                parameters: Vec::new(),
                summary: None,
                native_verifier: None,
                format: None,
                span: 0,
            },
        }
    }

    /// Adds a constrained parameter.
    pub fn param(mut self, name: impl Into<String>, constraint: ConstraintExpr) -> Self {
        self.def.parameters.push(NamedConstraint {
            name: name.into(),
            constraint,
            span: 0,
        });
        self
    }

    /// Sets the documentation summary.
    pub fn summary(mut self, summary: impl Into<String>) -> Self {
        self.def.summary = Some(summary.into());
        self
    }

    /// References a named native parameter-list verifier.
    pub fn native_verifier(mut self, name: impl Into<String>) -> Self {
        self.def.native_verifier = Some(name.into());
        self
    }

    /// Sets the declarative parameter format (paper §4.7).
    pub fn format(mut self, format: impl Into<String>) -> Self {
        self.def.format = Some(format.into());
        self
    }
}

/// Builds an operation definition.
#[derive(Debug, Clone)]
pub struct OpBuilder {
    def: OpDef,
}

impl OpBuilder {
    fn new(name: impl Into<String>) -> Self {
        OpBuilder { def: OpDef { name: name.into(), ..Default::default() } }
    }

    /// Declares a constraint variable (paper §4.6).
    pub fn constraint_var(mut self, name: impl Into<String>, constraint: ConstraintExpr) -> Self {
        self.def.constraint_vars.push(NamedConstraint {
            name: name.into(),
            constraint,
            span: 0,
        });
        self
    }

    /// Adds a single operand.
    pub fn operand(self, name: impl Into<String>, constraint: ConstraintExpr) -> Self {
        self.operand_with(name, constraint, Variadicity::Single)
    }

    /// Adds an operand with explicit variadicity.
    pub fn operand_with(
        mut self,
        name: impl Into<String>,
        constraint: ConstraintExpr,
        variadicity: Variadicity,
    ) -> Self {
        self.def.operands.push(ArgDef { name: name.into(), constraint, variadicity, span: 0 });
        self
    }

    /// Adds a single result.
    pub fn result(self, name: impl Into<String>, constraint: ConstraintExpr) -> Self {
        self.result_with(name, constraint, Variadicity::Single)
    }

    /// Adds a result with explicit variadicity.
    pub fn result_with(
        mut self,
        name: impl Into<String>,
        constraint: ConstraintExpr,
        variadicity: Variadicity,
    ) -> Self {
        self.def.results.push(ArgDef { name: name.into(), constraint, variadicity, span: 0 });
        self
    }

    /// Adds a required attribute.
    pub fn attribute(mut self, name: impl Into<String>, constraint: ConstraintExpr) -> Self {
        self.def.attributes.push(NamedConstraint { name: name.into(), constraint, span: 0 });
        self
    }

    /// Adds a region with optional argument constraints and terminator.
    pub fn region(
        mut self,
        name: impl Into<String>,
        arguments: Option<Vec<ArgDef>>,
        terminator: Option<&str>,
    ) -> Self {
        self.def.regions.push(RegionDef {
            name: name.into(),
            arguments,
            terminator: terminator.map(str::to_string),
            span: 0,
        });
        self
    }

    /// Declares successors, marking the operation a terminator.
    pub fn successors<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        self.def.successors = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the declarative assembly format (paper §4.7).
    pub fn format(mut self, format: impl Into<String>) -> Self {
        self.def.format = Some(format.into());
        self
    }

    /// Sets the documentation summary.
    pub fn summary(mut self, summary: impl Into<String>) -> Self {
        self.def.summary = Some(summary.into());
        self
    }

    /// References a named native (global) verifier.
    pub fn native_verifier(mut self, name: impl Into<String>) -> Self {
        self.def.native_verifier = Some(name.into());
        self
    }
}

/// Shorthand constructors for constraint expressions.
pub mod expr {
    use crate::ast::{ConstraintExpr, IntKind, Sigil};

    /// `!AnyType`.
    pub fn any_type() -> ConstraintExpr {
        ConstraintExpr::AnyType
    }

    /// `#AnyAttr`.
    pub fn any_attr() -> ConstraintExpr {
        ConstraintExpr::AnyAttr
    }

    /// `AnyParam`.
    pub fn any_param() -> ConstraintExpr {
        ConstraintExpr::AnyParam
    }

    /// A type-namespace reference (`!name`).
    pub fn ty(name: &str) -> ConstraintExpr {
        ConstraintExpr::Ref {
            sigil: Sigil::Type,
            path: name.split('.').map(str::to_string).collect(),
            args: Vec::new(),
            span: 0,
        }
    }

    /// A parameterized type reference (`!name<args>`).
    pub fn ty_args(
        name: &str,
        args: impl IntoIterator<Item = ConstraintExpr>,
    ) -> ConstraintExpr {
        ConstraintExpr::Ref {
            sigil: Sigil::Type,
            path: name.split('.').map(str::to_string).collect(),
            args: args.into_iter().collect(),
            span: 0,
        }
    }

    /// An attribute-namespace reference (`#name`).
    pub fn attr(name: &str) -> ConstraintExpr {
        ConstraintExpr::Ref {
            sigil: Sigil::Attr,
            path: name.split('.').map(str::to_string).collect(),
            args: Vec::new(),
            span: 0,
        }
    }

    /// A bare reference (enums, aliases, parameter kinds).
    pub fn bare(name: &str) -> ConstraintExpr {
        ConstraintExpr::Ref {
            sigil: Sigil::None,
            path: name.split('.').map(str::to_string).collect(),
            args: Vec::new(),
            span: 0,
        }
    }

    /// `intN_t` / `uintN_t`.
    pub fn int_kind(width: u32, unsigned: bool) -> ConstraintExpr {
        ConstraintExpr::IntKind(IntKind { width, unsigned })
    }

    /// An exact integer literal constraint.
    pub fn int_literal(value: i128, width: u32, unsigned: bool) -> ConstraintExpr {
        ConstraintExpr::IntLiteral { value, kind: IntKind { width, unsigned } }
    }

    /// `string`.
    pub fn string() -> ConstraintExpr {
        ConstraintExpr::StringAny
    }

    /// An exact string literal.
    pub fn string_literal(value: &str) -> ConstraintExpr {
        ConstraintExpr::StringLiteral(value.to_string())
    }

    /// `array<inner>`.
    pub fn array_of(inner: ConstraintExpr) -> ConstraintExpr {
        ConstraintExpr::ArrayOf(Box::new(inner))
    }

    /// `AnyOf<...>`.
    pub fn any_of(items: impl IntoIterator<Item = ConstraintExpr>) -> ConstraintExpr {
        ConstraintExpr::AnyOf(items.into_iter().collect())
    }

    /// `And<...>`.
    pub fn all_of(items: impl IntoIterator<Item = ConstraintExpr>) -> ConstraintExpr {
        ConstraintExpr::And(items.into_iter().collect())
    }

    /// `Not<inner>`.
    pub fn not(inner: ConstraintExpr) -> ConstraintExpr {
        ConstraintExpr::Not(Box::new(inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::Context;

    #[test]
    fn builder_matches_parsed_equivalent() {
        let built = DialectBuilder::new("cmath")
            .summary("Complex arithmetic")
            .type_def("complex", |t| {
                t.param("elementType", expr::any_of([expr::ty("f32"), expr::ty("f64")]))
                    .summary("A complex number")
            })
            .operation("mul", |op| {
                op.constraint_var(
                    "T",
                    expr::ty_args(
                        "complex",
                        [expr::any_of([expr::ty("f32"), expr::ty("f64")])],
                    ),
                )
                .operand("lhs", expr::bare("T"))
                .operand("rhs", expr::bare("T"))
                .result("res", expr::bare("T"))
                .format("$lhs, $rhs : $T.elementType")
                .summary("Multiply two complex numbers")
            })
            .build();

        // The built dialect compiles and behaves like the parsed one.
        let mut ctx = Context::new();
        crate::compile::compile_dialect(&mut ctx, &built, &crate::NativeRegistry::new())
            .unwrap();
        let f32 = ctx.f32_type();
        let good = ctx.type_attr(f32);
        assert!(ctx.parametric_type("cmath", "complex", [good]).is_ok());
        let i32 = ctx.i32_type();
        let bad = ctx.type_attr(i32);
        assert!(ctx.parametric_type("cmath", "complex", [bad]).is_err());
    }

    #[test]
    fn builder_output_pretty_prints_and_reparses() {
        let built = DialectBuilder::new("toy")
            .enum_def("mode", ["A", "B"])
            .constraint_def(
                "Nonzero",
                expr::all_of([
                    expr::int_kind(32, false),
                    expr::not(expr::int_literal(0, 32, false)),
                ]),
                None,
            )
            .operation("terminate", |op| op.successors(["next"]))
            .operation("pick", |op| {
                op.operand_with("items", expr::any_type(), Variadicity::Variadic)
                    .result("out", expr::any_type())
                    .attribute("which", expr::bare("Nonzero"))
            })
            .build();
        let printed = crate::printer::print_dialect(&built);
        let reparsed = crate::parser::parse_irdl(&printed).unwrap();
        assert_eq!(reparsed.dialects[0].name, "toy");
        assert_eq!(reparsed.dialects[0].items.len(), 4);
        let mut ctx = Context::new();
        crate::compile::compile_dialect(
            &mut ctx,
            &reparsed.dialects[0],
            &crate::NativeRegistry::new(),
        )
        .unwrap();
    }
}
