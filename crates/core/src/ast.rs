//! The abstract syntax tree of the IRDL language.
//!
//! An IRDL source file contains one or more [`DialectDef`]s; each dialect
//! groups type, attribute, alias, enum, constraint, native-parameter, and
//! operation definitions (paper §4.1). The AST is deliberately close to the
//! concrete syntax: resolution and constraint compilation happen in
//! [`crate::resolve`] and [`crate::compile`].

/// Byte offset into the source, attached to definitions for diagnostics.
pub type Span = usize;

/// A parsed IRDL source file.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// The dialects defined in the file, in order.
    pub dialects: Vec<DialectDef>,
}

/// A `Dialect name { ... }` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectDef {
    /// Dialect namespace (e.g. `cmath`).
    pub name: String,
    /// Optional `Summary` documentation string.
    pub summary: Option<String>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
    /// Source offset of the definition.
    pub span: Span,
}

/// One item in a dialect body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `Type name { Parameters (...) ... }`
    Type(TypeAttrDef),
    /// `Attribute name { Parameters (...) ... }`
    Attribute(TypeAttrDef),
    /// `Alias !Name = <constraint>` or `Alias !Name<T> = ...`
    Alias(AliasDef),
    /// `Enum name { A, B, C }`
    Enum(EnumDef),
    /// `Constraint name : <base> { ... }` (IRDL-Rust escape hatch)
    Constraint(ConstraintDef),
    /// `TypeOrAttrParam name { NativeType "kind" ... }` (IRDL-Rust)
    TypeOrAttrParam(ParamDef),
    /// `Operation name { ... }`
    Operation(OpDef),
}

impl Item {
    /// The declared name of the item.
    pub fn name(&self) -> &str {
        match self {
            Item::Type(d) | Item::Attribute(d) => &d.name,
            Item::Alias(d) => &d.name,
            Item::Enum(d) => &d.name,
            Item::Constraint(d) => &d.name,
            Item::TypeOrAttrParam(d) => &d.name,
            Item::Operation(d) => &d.name,
        }
    }
}

/// A type or attribute definition ("Besides the keyword, type and attribute
/// definitions are identical in IRDL", paper §4.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeAttrDef {
    /// Definition name within the dialect.
    pub name: String,
    /// Named, constrained parameters.
    pub parameters: Vec<NamedConstraint>,
    /// Optional documentation summary.
    pub summary: Option<String>,
    /// Optional named native verifier (IRDL-C++ `CppConstraint` analog).
    pub native_verifier: Option<String>,
    /// Optional declarative parameter format (paper §4.7 allows custom
    /// formats on types as well as operations).
    pub format: Option<String>,
    /// Source offset.
    pub span: Span,
}

/// A `name: constraint` pair (parameters, operands, results, attributes).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedConstraint {
    /// The declared name.
    pub name: String,
    /// The constraint expression.
    pub constraint: ConstraintExpr,
    /// Source offset.
    pub span: Span,
}

/// An `Alias` definition, possibly parametric (paper §4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasDef {
    /// Alias name (without sigil).
    pub name: String,
    /// Formal parameters for parametric aliases (`Alias !ComplexOr<T> = ...`).
    pub params: Vec<String>,
    /// The aliased constraint expression.
    pub body: ConstraintExpr,
    /// Source offset.
    pub span: Span,
}

/// An `Enum` definition (paper §4.8).
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Constructor names in declaration order.
    pub variants: Vec<String>,
    /// Source offset.
    pub span: Span,
}

/// A named constraint with a native escape hatch (paper §5.1).
///
/// The paper writes inline C++ (`CppConstraint "$_self <= 32"`); the Rust
/// reproduction references a *named* native predicate registered in a
/// [`crate::native::NativeRegistry`] (`NativeConstraint "bounded_u32"`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDef {
    /// Constraint name.
    pub name: String,
    /// The declarative base constraint that must also hold.
    pub base: ConstraintExpr,
    /// Optional documentation summary.
    pub summary: Option<String>,
    /// Name of the native predicate (absent = purely declarative alias).
    pub native: Option<String>,
    /// Source offset.
    pub span: Span,
}

/// A native parameter kind (paper §5.2, `TypeOrAttrParam`).
///
/// `CppClassName`/`CppParser`/`CppPrinter` become a single `NativeType`
/// name, resolved to Rust validation/printing hooks at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Parameter-kind name.
    pub name: String,
    /// Optional documentation summary.
    pub summary: Option<String>,
    /// Registered native kind implementing parse/print/validate.
    pub native_kind: String,
    /// Source offset.
    pub span: Span,
}

/// Variadicity of an operand, result, or region-argument definition
/// (paper §4.6: `Variadic` / `Optional` top-level constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variadicity {
    /// Exactly one.
    Single,
    /// Zero or more.
    Variadic,
    /// Zero or one.
    Optional,
}

/// An operand/result/region-argument definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgDef {
    /// Declared name.
    pub name: String,
    /// The element constraint (inside any `Variadic`/`Optional` wrapper).
    pub constraint: ConstraintExpr,
    /// Single, variadic, or optional.
    pub variadicity: Variadicity,
    /// Source offset.
    pub span: Span,
}

/// A `Region` definition attached to an operation (paper §4.6).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDef {
    /// Region name.
    pub name: String,
    /// Entry-block argument constraints; `None` leaves the arguments
    /// unconstrained, `Some(vec![])` requires exactly zero arguments.
    pub arguments: Option<Vec<ArgDef>>,
    /// Terminator operation name; presence also requires a single block.
    pub terminator: Option<String>,
    /// Source offset.
    pub span: Span,
}

/// An `Operation` definition (paper §4.6).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpDef {
    /// Operation name within the dialect.
    pub name: String,
    /// Optional documentation summary.
    pub summary: Option<String>,
    /// Constraint variables shared across operand/result/attribute
    /// constraints (paper: `ConstraintVars`).
    pub constraint_vars: Vec<NamedConstraint>,
    /// Operand definitions.
    pub operands: Vec<ArgDef>,
    /// Result definitions.
    pub results: Vec<ArgDef>,
    /// Attribute definitions.
    pub attributes: Vec<NamedConstraint>,
    /// Region definitions.
    pub regions: Vec<RegionDef>,
    /// Successor names; `Some(vec![])` still marks the op a terminator.
    pub successors: Option<Vec<String>>,
    /// Declarative assembly format (paper §4.7).
    pub format: Option<String>,
    /// Named native (global) verifier — the op-level `CppConstraint`.
    pub native_verifier: Option<String>,
    /// Source offset.
    pub span: Span,
}

/// The sigil a reference was written with, used during resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sigil {
    /// `!name` — type namespace.
    Type,
    /// `#name` — attribute namespace.
    Attr,
    /// Bare `name` — parameter/enum/alias namespace.
    None,
}

/// A constraint expression, mirroring Figure 2 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintExpr {
    /// `!AnyType`.
    AnyType,
    /// `#AnyAttr`.
    AnyAttr,
    /// `AnyParam`.
    AnyParam,
    /// A (possibly dialect-qualified, possibly parameterized) reference:
    /// `!f32`, `!complex<!T>`, `signedness.Signed`, `ComplexOr<!f32>`, ...
    Ref {
        /// The sigil it was written with.
        sigil: Sigil,
        /// Dot-separated path (1 or 2 segments).
        path: Vec<String>,
        /// Angle-bracket arguments, if any.
        args: Vec<ConstraintExpr>,
        /// Source offset.
        span: Span,
    },
    /// `int8_t`, `uint32_t`, ... — any integer of that width/signedness.
    IntKind(IntKind),
    /// `3 : int32_t` — exactly this integer value.
    IntLiteral {
        /// The literal value.
        value: i128,
        /// The required encoding.
        kind: IntKind,
    },
    /// `string` — any string parameter.
    StringAny,
    /// `"foo"` — exactly this string.
    StringLiteral(String),
    /// `array` — any array parameter.
    ArrayAny,
    /// `array<pc>` — an array whose elements all satisfy `pc`.
    ArrayOf(Box<ConstraintExpr>),
    /// `[pc1, ..., pcN]` — an array of exactly N constrained elements.
    ArrayExact(Vec<ConstraintExpr>),
    /// `AnyOf<c1, ..., cN>`.
    AnyOf(Vec<ConstraintExpr>),
    /// `And<c1, ..., cN>`.
    And(Vec<ConstraintExpr>),
    /// `Not<c>`.
    Not(Box<ConstraintExpr>),
}

/// Builtin integer parameter kinds (paper Figure 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntKind {
    /// Bit width: 8, 16, 32, or 64.
    pub width: u32,
    /// Whether the `u`-prefixed keyword was used.
    pub unsigned: bool,
}

impl IntKind {
    /// Parses `int8_t`/`uint64_t`-style keywords.
    pub fn from_keyword(kw: &str) -> Option<IntKind> {
        let (unsigned, rest) = match kw.strip_prefix("uint") {
            Some(rest) => (true, rest),
            None => (false, kw.strip_prefix("int")?),
        };
        let width: u32 = rest.strip_suffix("_t")?.parse().ok()?;
        matches!(width, 8 | 16 | 32 | 64).then_some(IntKind { width, unsigned })
    }

    /// The `int32_t`-style keyword for this kind.
    pub fn keyword(self) -> String {
        format!("{}int{}_t", if self.unsigned { "u" } else { "" }, self.width)
    }

    /// Returns `true` when `value` fits the kind's range.
    pub fn fits(self, value: i128) -> bool {
        if self.unsigned {
            value >= 0 && value < (1i128 << self.width)
        } else {
            let bound = 1i128 << (self.width - 1);
            value >= -bound && value < bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_kind_keywords() {
        assert_eq!(IntKind::from_keyword("int32_t"), Some(IntKind { width: 32, unsigned: false }));
        assert_eq!(IntKind::from_keyword("uint8_t"), Some(IntKind { width: 8, unsigned: true }));
        assert_eq!(IntKind::from_keyword("int7_t"), None);
        assert_eq!(IntKind::from_keyword("int32"), None);
        assert_eq!(IntKind::from_keyword("float"), None);
        assert_eq!(IntKind { width: 16, unsigned: true }.keyword(), "uint16_t");
    }

    #[test]
    fn int_kind_ranges() {
        let i8 = IntKind { width: 8, unsigned: false };
        assert!(i8.fits(127));
        assert!(i8.fits(-128));
        assert!(!i8.fits(128));
        let u8 = IntKind { width: 8, unsigned: true };
        assert!(u8.fits(255));
        assert!(!u8.fits(-1));
        assert!(!u8.fits(256));
    }
}
